//! End-to-end integration: train → persist → reload → deploy → evaluate,
//! across all crates, at toy scale.

use dosco::core::eval::{evaluate, evaluate_seeds};
use dosco::core::policy::CoordinationPolicy;
use dosco::core::train::{train_distributed, Algorithm, TrainConfig};
use dosco::core::DistributedAgents;
use dosco::simnet::{ScenarioConfig, Simulation};
use dosco::traffic::ArrivalPattern;
use dosco_rl::a2c::A2cConfig;

fn toy_train_config() -> TrainConfig {
    TrainConfig {
        algorithm: Algorithm::A2c, // cheapest algorithm for CI-scale tests
        total_steps: 1_500,
        n_envs: 2,
        seeds: vec![0, 1],
        a2c: A2cConfig {
            hidden: [12, 12],
            ..A2cConfig::default()
        },
        eval_horizon: 400.0,
        checkpoints: 2,
        ..TrainConfig::default()
    }
}

#[test]
fn train_save_load_deploy_round_trip() {
    let scenario = ScenarioConfig::paper_base(2)
        .with_pattern(ArrivalPattern::paper_poisson())
        .with_horizon(500.0);
    let trained = train_distributed(&scenario, &toy_train_config());

    // Persist and reload the policy artifact.
    let path = std::env::temp_dir().join("dosco-e2e-policy.json");
    trained.policy.save(&path).unwrap();
    let reloaded = CoordinationPolicy::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    // The reloaded policy drives the exact same simulation outcome.
    let a = evaluate(&trained.policy, &scenario, 77);
    let b = evaluate(&reloaded, &scenario, 77);
    assert_eq!(a, b);
    assert!(a.arrived > 0);
}

#[test]
fn distributed_agents_count_matches_decisions() {
    let scenario = ScenarioConfig::paper_base(1).with_horizon(400.0);
    let trained = train_distributed(&scenario, &toy_train_config());
    let mut agents = DistributedAgents::deploy(&trained.policy, scenario.topology.num_nodes());
    let mut sim = Simulation::new(scenario, 5);
    let metrics = sim.run(&mut agents).clone();
    let per_node: u64 = agents.decisions_per_node().iter().sum();
    assert_eq!(per_node, metrics.decisions);
}

#[test]
fn seed_aggregation_is_reproducible() {
    let scenario = ScenarioConfig::paper_base(2)
        .with_pattern(ArrivalPattern::paper_mmpp())
        .with_horizon(400.0);
    let trained = train_distributed(&scenario, &toy_train_config());
    let (m1, s1, _) = evaluate_seeds(&trained.policy, &scenario, &[1, 2, 3]);
    let (m2, s2, _) = evaluate_seeds(&trained.policy, &scenario, &[1, 2, 3]);
    assert_eq!(m1, m2);
    assert_eq!(s1, s2);
}

#[test]
fn all_algorithms_produce_valid_policies() {
    let scenario = ScenarioConfig::paper_base(1).with_horizon(300.0);
    for algorithm in [Algorithm::Acktr, Algorithm::A2c, Algorithm::Ppo] {
        let mut cfg = toy_train_config();
        cfg.algorithm = algorithm;
        cfg.total_steps = 600;
        cfg.seeds = vec![0];
        cfg.acktr.hidden = [12, 12];
        cfg.ppo.hidden = [12, 12];
        let trained = train_distributed(&scenario, &cfg);
        assert_eq!(trained.policy.metadata.algorithm, algorithm.name());
        let m = evaluate(&trained.policy, &scenario, 3);
        assert!(m.arrived > 0, "{}", algorithm.name());
    }
}
