//! Bit-identity regression goldens for the simulation core.
//!
//! The goldens in `tests/goldens/simcore.json` were captured from the
//! pre-refactor (HashMap + `BinaryHeap`) core on the fig6/fig7 scenario
//! family, under both greedy (GCASP, SP) and stochastic (random policy)
//! coordinators. The slab/indexed-queue core must reproduce them exactly:
//! the same seed must yield the exact same [`Metrics`] and the identical
//! `SimEvent` stream, event for event, byte for byte.
//!
//! Regenerate (only when a behavior change is *intended* and documented):
//!
//! ```text
//! DOSCO_CAPTURE_GOLDENS=1 cargo test --test simcore_goldens
//! ```

use dosco::baselines::{Gcasp, ShortestPath};
use dosco::core::policy::fnv1a64;
use dosco::simnet::coordinator::RandomCoordinator;
use dosco::simnet::{Coordinator, Metrics, ScenarioConfig, SimEvent, Simulation};
use dosco::traffic::ArrivalPattern;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

#[derive(Debug, Serialize, Deserialize, PartialEq)]
struct GoldenCase {
    /// Scenario + coordinator label.
    name: String,
    /// Simulation seed.
    seed: u64,
    /// Total `SimEvent`s emitted over the episode.
    events: u64,
    /// FNV-1a over the concatenated JSON serialization of every event,
    /// in emission order (newline-separated).
    event_hash: String,
    /// Exact final metrics.
    metrics: Metrics,
}

#[derive(Debug, Serialize, Deserialize, PartialEq)]
struct Goldens {
    version: u32,
    cases: Vec<GoldenCase>,
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/simcore.json")
}

/// Runs one episode step-wise, hashing the full event stream as it is
/// drained (the streaming path the refactor must keep byte-compatible).
fn run_case(name: &str, cfg: ScenarioConfig, seed: u64, c: &mut dyn Coordinator) -> GoldenCase {
    let mut sim = Simulation::new(cfg, seed);
    let mut hash = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    let mut count = 0u64;
    let absorb = |events: &[SimEvent], hash: &mut u64, count: &mut u64| {
        for ev in events {
            let line = serde_json::to_string(ev).expect("event serializes");
            *hash = fnv_step(*hash, line.as_bytes());
            *hash = fnv_step(*hash, b"\n");
            *count += 1;
        }
    };
    loop {
        let events = sim.drain_events();
        absorb(&events, &mut hash, &mut count);
        let Some(dp) = sim.next_decision() else {
            break;
        };
        let a = c.decide(&sim, &dp);
        sim.apply(a);
    }
    let events = sim.drain_events();
    absorb(&events, &mut hash, &mut count);
    GoldenCase {
        name: name.to_string(),
        seed,
        events: count,
        event_hash: format!("{:016x}", hash),
        metrics: sim.metrics().clone(),
    }
}

/// Continues an FNV-1a hash over `bytes` (same constants as
/// [`fnv1a64`], but resumable so the stream never has to be collected).
fn fnv_step(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn capture() -> Goldens {
    let mut cases = Vec::new();
    // Fig. 6 family: success ratio over ingress counts, fixed + Poisson
    // arrivals. Greedy (GCASP) and stochastic (random) coordination.
    for &ingress in &[1usize, 3, 5] {
        for (pat_name, pattern) in [
            ("fixed", ArrivalPattern::paper_fixed()),
            ("poisson", ArrivalPattern::paper_poisson()),
        ] {
            let cfg = ScenarioConfig::paper_base(ingress)
                .with_pattern(pattern)
                .with_horizon(2_000.0);
            cases.push(run_case(
                &format!("fig6-{pat_name}-i{ingress}-gcasp"),
                cfg.clone(),
                40 + ingress as u64,
                &mut Gcasp::new(),
            ));
            cases.push(run_case(
                &format!("fig6-{pat_name}-i{ingress}-random"),
                cfg,
                40 + ingress as u64,
                &mut RandomCoordinator::new(7 + ingress as u64),
            ));
        }
    }
    // DOSCO_TRACE byte-identity: one traced episode, hashing the JSONL
    // recorder's output bytes (the acceptance criterion is byte-identical
    // trace output across the storage/scheduling refactor).
    {
        let cfg = ScenarioConfig::paper_base(3)
            .with_pattern(ArrivalPattern::paper_poisson())
            .with_horizon(2_000.0);
        let recorder =
            std::sync::Arc::new(dosco::obs::JsonlRecorder::new("/tmp/unused-golden.jsonl"));
        dosco::obs::install_recorder(recorder.clone());
        let mut case = run_case("trace-poisson-i3-gcasp", cfg, 60, &mut Gcasp::new());
        dosco::obs::uninstall_recorder();
        let bytes = recorder.render();
        case.event_hash = format!("{:016x}", fnv1a64(bytes.as_bytes()));
        case.events = bytes.len() as u64; // trace case: byte count, not events
        cases.push(case);
    }
    // Fig. 7 family: tight vs paper-default deadlines, SP + GCASP.
    for &deadline in &[30.0f64, 100.0] {
        let cfg = ScenarioConfig::paper_base(3)
            .with_pattern(ArrivalPattern::paper_poisson())
            .with_deadline(deadline)
            .with_horizon(2_000.0);
        cases.push(run_case(
            &format!("fig7-d{deadline}-sp"),
            cfg.clone(),
            90,
            &mut ShortestPath::new(),
        ));
        cases.push(run_case(
            &format!("fig7-d{deadline}-gcasp"),
            cfg,
            90,
            &mut Gcasp::new(),
        ));
    }
    Goldens { version: 1, cases }
}

/// `fnv1a64` (the one-shot helper) and the resumable [`fnv_step`] agree,
/// so the golden hashes are reproducible from a collected stream too.
#[test]
fn fnv_step_matches_one_shot() {
    let data = b"dosco simcore goldens";
    assert_eq!(fnv_step(0xcbf2_9ce4_8422_2325, data), fnv1a64(data));
}

#[test]
fn simcore_matches_pre_refactor_goldens() {
    let path = golden_path();
    let fresh = capture();
    if std::env::var("DOSCO_CAPTURE_GOLDENS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("mkdir goldens");
        let json = serde_json::to_string_pretty(&fresh).expect("serialize goldens");
        std::fs::write(&path, json).expect("write goldens");
        eprintln!("captured {} golden cases to {}", fresh.cases.len(), path.display());
        return;
    }
    let json = std::fs::read_to_string(&path)
        .expect("goldens missing: run with DOSCO_CAPTURE_GOLDENS=1 first");
    let pinned: Goldens = serde_json::from_str(&json).expect("parse goldens");
    assert_eq!(pinned.version, 1);
    assert_eq!(pinned.cases.len(), fresh.cases.len(), "case set changed");
    for (p, f) in pinned.cases.iter().zip(&fresh.cases) {
        assert_eq!(p.name, f.name, "case order changed");
        assert_eq!(p.metrics, f.metrics, "{}: Metrics diverged", p.name);
        assert_eq!(
            p.events, f.events,
            "{}: event count diverged",
            p.name
        );
        assert_eq!(
            p.event_hash, f.event_hash,
            "{}: SimEvent stream diverged",
            p.name
        );
    }
}
