//! Multi-service scenarios: the paper focuses its evaluation on one
//! service "for simplicity" but states the approach was "successfully
//! tested with multiple services" — these tests exercise that path across
//! the workspace.

use dosco::baselines::Gcasp;
use dosco::core::observe::ObservationAdapter;
use dosco::simnet::{
    Action, Component, ComponentId, Coordinator, IngressSpec, ScenarioConfig, Service,
    ServiceCatalog, ServiceId, Simulation,
};
use dosco::topology::zoo;
use dosco::traffic::{ArrivalPattern, FlowProfile};

/// Two services over a shared component pool: video (FW→IDS→Video) and a
/// short web service (FW→Cache).
fn two_service_catalog() -> ServiceCatalog {
    let components = vec![
        Component::paper_default("FW"),
        Component::paper_default("IDS"),
        Component::paper_default("Video"),
        Component {
            name: "Cache".into(),
            processing_delay: 2.0,
            ..Component::paper_default("Cache")
        },
    ];
    let services = vec![
        Service {
            name: "video".into(),
            chain: vec![ComponentId(0), ComponentId(1), ComponentId(2)],
        },
        Service {
            name: "web".into(),
            chain: vec![ComponentId(0), ComponentId(3)],
        },
    ];
    ServiceCatalog::new(components, services).unwrap()
}

fn two_service_scenario() -> ScenarioConfig {
    let mut base = ScenarioConfig::paper_base(2);
    base.catalog = two_service_catalog();
    base.ingresses = vec![
        IngressSpec {
            node: zoo::ABILENE_INGRESS[0],
            pattern: ArrivalPattern::paper_poisson(),
            service: ServiceId(0),
            egress: zoo::ABILENE_EGRESS,
            profile: FlowProfile::paper_default(),
        },
        IngressSpec {
            node: zoo::ABILENE_INGRESS[1],
            pattern: ArrivalPattern::paper_poisson(),
            service: ServiceId(1),
            egress: zoo::ABILENE_EGRESS,
            profile: FlowProfile::new(1.0, 1.0, 60.0),
        },
    ];
    base.horizon = 1_500.0;
    base.validate().unwrap();
    base
}

#[test]
fn gcasp_coordinates_two_services() {
    let mut sim = Simulation::new(two_service_scenario(), 5);
    let m = sim.run(&mut Gcasp::new()).clone();
    assert!(m.arrived > 100);
    assert!(m.completed > 0, "some flows of both services must complete");
    assert_eq!(m.arrived, m.completed + m.dropped_total() + m.in_flight());
}

#[test]
fn flows_of_different_services_have_different_chain_lengths() {
    let mut sim = Simulation::new(two_service_scenario(), 5);
    let mut seen = std::collections::HashSet::new();
    let mut g = Gcasp::new();
    while let Some(dp) = sim.next_decision() {
        if let Some(f) = sim.flow(dp.flow) {
            seen.insert((f.service, f.chain_len));
        }
        let a = g.decide(&sim, &dp);
        sim.apply(a);
        if seen.len() == 2 {
            break;
        }
    }
    assert!(seen.contains(&(ServiceId(0), 3)));
    assert!(seen.contains(&(ServiceId(1), 2)));
}

#[test]
fn observations_track_the_requested_component_per_service() {
    // The X (instance availability) slice must follow the *flow's own*
    // requested component: a placed Cache instance is visible to web
    // flows but not to video flows requesting IDS.
    let mut scenario = two_service_scenario();
    scenario.topology.scale_capacities(100.0, 1.0);
    let mut sim = Simulation::new(scenario, 5);
    let adapter = ObservationAdapter::new(sim.network_degree());
    let deg = adapter.degree();
    let x_self = 2 + deg + (deg + 1) + deg;
    let mut checked = 0;
    while let Some(dp) = sim.next_decision() {
        let obs = adapter.observe(&sim, &dp);
        if let Some(c) = dp.component {
            let expect = if sim.has_instance(dp.node, c) { 1.0 } else { 0.0 };
            assert_eq!(obs[x_self], expect);
            checked += 1;
        }
        sim.apply(Action::Local);
        if checked > 200 {
            break;
        }
    }
    assert!(checked > 50);
}

#[test]
fn catalog_reports_per_service_processing_delays() {
    let cat = two_service_catalog();
    assert_eq!(cat.total_processing_delay(ServiceId(0)), 15.0);
    assert_eq!(cat.total_processing_delay(ServiceId(1)), 7.0);
    assert_eq!(cat.num_components(), 4);
    assert_eq!(cat.num_services(), 2);
}
