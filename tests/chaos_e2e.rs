//! End-to-end churn: train under a stochastic fault process, then replay
//! a pinned fault timeline under DRL and both heuristic baselines and
//! check that every coordinator's success ratio degrades during the
//! outage and recovers after repair — the resilience contract of the
//! chaos subsystem — plus determinism and conservation through faults.

use dosco::baselines::{Gcasp, ShortestPath};
use dosco::chaos::{resilience_report, ChurnAction, ChurnSchedule, ResilienceReport, StochasticChurn};
use dosco::core::eval::evaluate_under_churn;
use dosco::core::train::{train_distributed, Algorithm, TrainConfig};
use dosco::simnet::{Coordinator, EventLog, Metrics, ScenarioConfig, SimEvent, Simulation};
use dosco::topology::zoo::ABILENE_EGRESS;
use dosco_rl::a2c::A2cConfig;

const EVAL_SEED: u64 = 4242;
const WINDOW: usize = 64;

/// Fault timeline pinned by the acceptance criteria: the egress node dies
/// at t=600 and is repaired at t=900.
fn fault_timeline(scenario: &ScenarioConfig) -> dosco::simnet::ChurnTimeline {
    ChurnSchedule::none()
        .at(600.0, ChurnAction::NodeDown(ABILENE_EGRESS))
        .at(900.0, ChurnAction::NodeUp(ABILENE_EGRESS))
        .compile(&scenario.topology, scenario.horizon, 0)
        .expect("valid schedule")
}

fn run_coordinator<C: Coordinator>(
    scenario: &ScenarioConfig,
    coordinator: C,
) -> (Metrics, Vec<SimEvent>, usize) {
    let mut log = EventLog::new(coordinator);
    let mut sim = Simulation::with_churn(scenario.clone(), EVAL_SEED, fault_timeline(scenario));
    let metrics = sim.run(&mut log).clone();
    let live = sim.live_flows();
    (metrics, log.into_events(), live)
}

/// The single fault window must show a dip-and-recover trajectory.
fn assert_degrades_and_recovers(name: &str, report: &ResilienceReport) {
    assert_eq!(report.windows.len(), 1, "{name}: one pinned fault");
    let w = &report.windows[0];
    assert_eq!(w.action, "node-down", "{name}");
    assert_eq!(w.target, ABILENE_EGRESS.0 as u64, "{name}");
    assert_eq!(w.fault_time, 600.0, "{name}");
    assert_eq!(w.repair_time, Some(900.0), "{name}");
    let before = w.before.unwrap_or_else(|| panic!("{name}: before ratio"));
    let during = w.during.unwrap_or_else(|| panic!("{name}: during ratio"));
    let after = w.after.unwrap_or_else(|| panic!("{name}: after ratio"));
    assert!(
        during < before,
        "{name}: success ratio must degrade during the outage \
         (before {before:.3}, during {during:.3})"
    );
    assert!(
        after > during,
        "{name}: success ratio must recover after repair \
         (during {during:.3}, after {after:.3})"
    );
}

fn assert_conservation(name: &str, metrics: &Metrics, live_at_end: usize) {
    assert_eq!(
        metrics.arrived,
        metrics.completed + metrics.dropped_total() + live_at_end as u64,
        "{name}: every arrived flow completes, drops, or survives to the horizon"
    );
}

#[test]
fn drl_and_baselines_degrade_and_recover_around_pinned_fault() {
    let scenario = ScenarioConfig::paper_base(2).with_horizon(1_500.0);

    // Train under stochastic churn (toy budget, same shape as
    // examples/chaos.rs but A2C-sized for CI).
    let churn = ChurnSchedule::none()
        .with_stochastic(StochasticChurn::default().with_link_failures(2_000.0, 100.0));
    let config = TrainConfig {
        algorithm: Algorithm::A2c,
        total_steps: 2_000,
        n_envs: 2,
        seeds: vec![0, 1],
        a2c: A2cConfig {
            hidden: [12, 12],
            ..A2cConfig::default()
        },
        eval_horizon: 400.0,
        checkpoints: 2,
        fixed_capacity_training: true,
        churn: Some(churn),
        ..TrainConfig::default()
    };
    let trained = train_distributed(&scenario, &config);

    // DRL replay through the manual loop and through the public
    // `evaluate_under_churn` entry point: same seed + same timeline =>
    // exact-equal metrics and an identical event stream, twice.
    let agents =
        dosco::core::DistributedAgents::deploy(&trained.policy, scenario.topology.num_nodes());
    let (drl_metrics, drl_events, drl_live) = run_coordinator(&scenario, agents);
    let (drl_metrics2, drl_events2) =
        evaluate_under_churn(&trained.policy, &scenario, EVAL_SEED, fault_timeline(&scenario));
    assert_eq!(drl_metrics, drl_metrics2);
    assert_eq!(drl_events, drl_events2);

    let (gcasp_metrics, gcasp_events, gcasp_live) = run_coordinator(&scenario, Gcasp::new());
    let (sp_metrics, sp_events, sp_live) = run_coordinator(&scenario, ShortestPath::new());

    // All three coordinators terminate flows through the fault, and every
    // flow is accounted for through fault and repair.
    for (name, metrics, events, live) in [
        ("drl", &drl_metrics, &drl_events, drl_live),
        ("gcasp", &gcasp_metrics, &gcasp_events, gcasp_live),
        ("sp", &sp_metrics, &sp_events, sp_live),
    ] {
        assert!(metrics.arrived > 100, "{name}: traffic flowed");
        assert_conservation(name, metrics, live);
        assert_degrades_and_recovers(name, &resilience_report(events, WINDOW));
    }

    // The fault is visible in the episode metrics too: node-failure drops
    // happened, and both heuristics lose flows they would otherwise carry.
    assert!(
        gcasp_events.iter().any(|e| matches!(
            e,
            SimEvent::FlowDropped {
                reason: dosco::simnet::DropReason::NodeFailure,
                ..
            }
        )),
        "egress death must kill flows at the node"
    );
}
