//! Workspace-spanning property tests.

use dosco::core::observe::ObservationAdapter;
use dosco::core::policy::{CoordinationPolicy, PolicyMetadata};
use dosco::core::RewardConfig;
use dosco::nn::{Activation, Mlp};
use dosco::simnet::{Action, ScenarioConfig, SimEvent, Simulation};
use dosco::traffic::ArrivalPattern;
use proptest::prelude::*;
use rand::SeedableRng;

fn random_policy(degree: usize, seed: u64) -> CoordinationPolicy {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let actor = Mlp::new(&[4 * degree + 4, 12, degree + 1], Activation::Tanh, &mut rng);
    CoordinationPolicy::new(actor, degree, PolicyMetadata::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A policy JSON round-trip makes identical decisions on arbitrary
    /// in-range observations.
    #[test]
    fn policy_json_round_trip_decisions(
        seed in 0u64..500,
        obs in prop::collection::vec(-1.0f32..1.0, 16),
    ) {
        let p = random_policy(3, seed);
        let q = CoordinationPolicy::from_json(&p.to_json().unwrap()).unwrap();
        prop_assert_eq!(p.act(&obs), q.act(&obs));
        prop_assert!(p.act(&obs) < 4);
    }

    /// Per-event rewards are bounded by the terminal magnitudes, for any
    /// event the simulator can emit.
    #[test]
    fn event_rewards_bounded(sim_seed in 0u64..200, policy_seed in 0u64..200) {
        let scenario = ScenarioConfig::paper_base(2)
            .with_pattern(ArrivalPattern::paper_poisson())
            .with_horizon(600.0);
        let reward = RewardConfig::default();
        let mut sim = Simulation::new(scenario, sim_seed);
        let diameter = sim.diameter();
        let policy = random_policy(3, policy_seed);
        let adapter = ObservationAdapter::new(3);
        while let Some(dp) = sim.next_decision() {
            let obs = adapter.observe(&sim, &dp);
            sim.apply(Action::from_index(policy.act(&obs)));
            for ev in sim.drain_events() {
                let r = reward.event_reward(&ev, diameter);
                prop_assert!((-10.0..=10.0).contains(&r), "{ev:?} -> {r}");
                if matches!(ev, SimEvent::Forwarded { .. } | SimEvent::Held { .. }) {
                    prop_assert!(r <= 0.0);
                }
                if matches!(ev, SimEvent::InstanceTraversed { .. }) {
                    prop_assert!(r > 0.0 && r <= 1.0);
                }
            }
        }
    }

    /// The observation adapter stays in range on every zoo topology, with
    /// the adapter padded to that topology's degree.
    #[test]
    fn observations_valid_on_all_topologies(seed in 0u64..50, topo_idx in 0usize..4) {
        let topo = dosco::topology::zoo::all().swap_remove(topo_idx);
        let scenario = dosco_bench::scenarios::topology_scenario(topo, 250.0);
        let degree = scenario.topology.network_degree();
        let adapter = ObservationAdapter::new(degree);
        let policy = random_policy(degree, seed);
        let mut sim = Simulation::new(scenario, seed);
        let mut checked = 0;
        while let Some(dp) = sim.next_decision() {
            let obs = adapter.observe(&sim, &dp);
            prop_assert_eq!(obs.len(), 4 * degree + 4);
            for &v in &obs {
                prop_assert!((-1.0..=1.0).contains(&v) && v.is_finite());
            }
            sim.apply(Action::from_index(policy.act(&obs)));
            checked += 1;
            if checked > 400 {
                break;
            }
        }
        prop_assert!(checked > 0);
    }

    /// Success ratios of any coordinator on any base scenario stay within
    /// [0, 1] and the metrics identity holds.
    #[test]
    fn metrics_identity_under_random_policies(
        seed in 0u64..300,
        ingress in 1usize..=5,
    ) {
        let scenario = ScenarioConfig::paper_base(ingress)
            .with_pattern(ArrivalPattern::paper_mmpp())
            .with_horizon(700.0);
        let policy = random_policy(3, seed);
        let mut agents =
            dosco::core::DistributedAgents::deploy(&policy, scenario.topology.num_nodes());
        let mut sim = Simulation::new(scenario, seed);
        let m = sim.run(&mut agents).clone();
        prop_assert!((0.0..=1.0).contains(&m.success_ratio()));
        prop_assert_eq!(m.arrived, m.completed + m.dropped_total() + m.in_flight());
    }
}
