//! Churn trace determinism: a traced episode on a churning substrate
//! renders a byte-identical JSONL stream across same-seed runs, and the
//! stream carries the `ChurnApplied` events with monotonic topology
//! versions. This is the `DOSCO_TRACE` contract extended to faults —
//! `scripts/check.sh` gates on it.

use dosco::baselines::ShortestPath;
use dosco::chaos::{ChurnAction, ChurnSchedule, StochasticChurn};
use dosco::obs::JsonlRecorder;
use dosco::simnet::{ScenarioConfig, Simulation};
use dosco::topology::{LinkId, NodeId};
use std::sync::Arc;

/// One traced SP episode under a mixed scripted + stochastic schedule;
/// returns the rendered JSONL trace. The recorder is uninstalled before
/// returning so global state never leaks between invocations.
fn traced_churn_run() -> String {
    let recorder = Arc::new(JsonlRecorder::new("/tmp/unused-chaos-trace.jsonl"));
    dosco::obs::install_recorder(recorder.clone());
    dosco::obs::set_sample_stride(16);

    let scenario = ScenarioConfig::paper_base(2).with_horizon(600.0);
    let timeline = ChurnSchedule::none()
        .at(100.0, ChurnAction::LinkDown(LinkId(2)))
        .at(200.0, ChurnAction::LinkUp(LinkId(2)))
        .at(250.0, ChurnAction::NodeDown(NodeId(5)))
        .at(400.0, ChurnAction::NodeUp(NodeId(5)))
        .with_stochastic(StochasticChurn::default().with_link_failures(2_000.0, 100.0))
        .compile(&scenario.topology, scenario.horizon, 21)
        .expect("valid schedule");
    let mut sim = Simulation::with_churn(scenario, 13, timeline);
    sim.run(&mut ShortestPath::new());

    dosco::obs::uninstall_recorder();
    recorder.render()
}

#[test]
fn churn_traces_are_byte_identical_and_carry_churn_events() {
    let first = traced_churn_run();
    let second = traced_churn_run();
    assert_eq!(
        first, second,
        "same seed + same schedule must render byte-identical traces"
    );

    let lines: Vec<&str> = first.lines().collect();
    assert!(lines.len() > 3, "expected a non-trivial trace");
    for line in &lines {
        let _: serde::Value = serde_json::from_str(line).expect("every line parses");
    }
    let churn_lines = lines
        .iter()
        .filter(|l| l.contains("ChurnApplied"))
        .count();
    assert!(
        churn_lines >= 4,
        "all scripted churn events must be traced, got {churn_lines}"
    );
    // The scripted link failure is in the stream with its action label.
    assert!(
        first.contains("link-down"),
        "trace must carry the stable action label"
    );
}
