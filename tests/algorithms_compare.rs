//! Cross-algorithm integration: the four compared coordinators run on the
//! same scenarios and their qualitative relationships hold.

use dosco::baselines::central::{train_central, CentralConfig, CentralizedCoordinator};
use dosco::baselines::{Gcasp, ShortestPath};
use dosco::simnet::{Coordinator, DropReason, Metrics, ScenarioConfig, Simulation};
use dosco::traffic::ArrivalPattern;
use dosco_rl::ddpg::DdpgConfig;

fn run(coordinator: &mut dyn Coordinator, scenario: &ScenarioConfig, seed: u64) -> Metrics {
    let mut sim = Simulation::new(scenario.clone(), seed);
    sim.run(coordinator).clone()
}

#[test]
fn heuristics_complete_flows_at_low_load() {
    // One ingress, slow fixed arrivals: both heuristics should have an
    // easy time (Fig. 6a leftmost points).
    let scenario = ScenarioConfig::paper_base(1)
        .with_pattern(ArrivalPattern::Fixed { interval: 40.0 })
        .with_horizon(4_000.0);
    for (name, mut c) in [
        ("gcasp", Box::new(Gcasp::new()) as Box<dyn Coordinator>),
        ("sp", Box::new(ShortestPath::new())),
    ] {
        let m = run(c.as_mut(), &scenario, 1);
        assert!(
            m.success_ratio() > 0.9,
            "{name} got {:.3} at trivial load",
            m.success_ratio()
        );
    }
}

#[test]
fn gcasp_at_least_matches_sp_across_loads() {
    // GCASP degrades no worse than SP as load grows (the paper's Fig. 6
    // consistently shows GCASP ≥ SP).
    for ingress in [2, 3, 4, 5] {
        let scenario = ScenarioConfig::paper_base(ingress)
            .with_pattern(ArrivalPattern::paper_poisson())
            .with_horizon(3_000.0);
        let g = run(&mut Gcasp::new(), &scenario, 9);
        let s = run(&mut ShortestPath::new(), &scenario, 9);
        assert!(
            g.success_ratio() >= s.success_ratio() - 0.02,
            "ingress {ingress}: GCASP {:.3} vs SP {:.3}",
            g.success_ratio(),
            s.success_ratio()
        );
    }
}

#[test]
fn deadline_20_kills_every_flow() {
    // Fig. 7: with τ = 20 all flows drop — 15 ms processing plus any
    // path delay exceeds 20 ms.
    let scenario = ScenarioConfig::paper_base(2)
        .with_pattern(ArrivalPattern::paper_poisson())
        .with_horizon(2_000.0)
        .with_deadline(20.0);
    for mut c in [
        Box::new(Gcasp::new()) as Box<dyn Coordinator>,
        Box::new(ShortestPath::new()),
    ] {
        let m = run(c.as_mut(), &scenario, 4);
        assert_eq!(m.completed, 0);
    }
}

#[test]
fn sp_e2e_delay_is_deadline_invariant() {
    // Fig. 7: SP always takes the shortest path, so its average delay
    // stays fixed (~21 ms) once the deadline admits any flow at all.
    let mut delays = Vec::new();
    for deadline in [30.0, 40.0, 50.0] {
        let scenario = ScenarioConfig::paper_base(2)
            .with_pattern(ArrivalPattern::paper_poisson())
            .with_horizon(3_000.0)
            .with_deadline(deadline);
        let m = run(&mut ShortestPath::new(), &scenario, 6);
        if let Some(d) = m.avg_e2e_delay() {
            delays.push(d);
        }
    }
    assert!(delays.len() >= 2, "SP should complete flows at τ ≥ 30");
    let min = delays.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = delays.iter().cloned().fold(0.0, f64::max);
    assert!(
        max - min < 2.0,
        "SP delay should be deadline-invariant, got {delays:?}"
    );
    assert!((15.0..27.0).contains(&min), "SP e2e ≈ 21 ms, got {delays:?}");
}

#[test]
fn central_baseline_full_pipeline() {
    let scenario = ScenarioConfig::paper_base(2)
        .with_pattern(ArrivalPattern::paper_poisson())
        .with_horizon(1_500.0);
    let policy = train_central(
        &scenario,
        &CentralConfig {
            train_steps: 60,
            ddpg: DdpgConfig {
                hidden: [8, 8],
                warmup: 16,
                batch_size: 8,
                ..DdpgConfig::default()
            },
            ..CentralConfig::default()
        },
    );
    let mut coordinator = CentralizedCoordinator::new(policy);
    let m = run(&mut coordinator, &scenario, 8);
    assert!(m.arrived > 0);
    assert_eq!(m.dropped_for(DropReason::InvalidAction), 0);
    assert!(coordinator.rule_updates > 5, "rules must refresh periodically");
}

#[test]
fn scalability_scenarios_run_on_all_topologies() {
    use dosco::topology::zoo;
    for topo in zoo::all() {
        let name = topo.name().to_string();
        let scenario = dosco_bench::scenarios::topology_scenario(topo, 400.0);
        let m = run(&mut Gcasp::new(), &scenario, 2);
        assert!(m.arrived > 0, "{name}: traffic must flow");
        assert_eq!(
            m.arrived,
            m.completed + m.dropped_total() + m.in_flight(),
            "{name}: conservation"
        );
    }
}
