//! End-to-end observability contract: a traced training run produces a
//! schema-versioned JSONL event stream in which every line parses, and
//! two runs with the same seed render byte-identical traces.
//!
//! Uses sync (lockstep) runtime mode — async interleaving is
//! nondeterministic by design — and in-memory `JsonlRecorder::render`
//! rather than temp files, so the test is hermetic.

use dosco::core::{CoordEnv, RewardConfig};
use dosco::obs::{JsonlRecorder, Stream};
use dosco::rl::a2c::{A2c, A2cConfig};
use dosco::rl::Env;
use dosco::runtime::{train, RuntimeConfig};
use dosco::simnet::ScenarioConfig;
use dosco::traffic::ArrivalPattern;
use std::sync::Arc;

/// One short sync-mode training run with `recorder` installed; returns
/// the rendered trace. The recorder is uninstalled before returning so
/// the global state never leaks between invocations.
fn traced_training_run() -> String {
    let recorder = Arc::new(JsonlRecorder::new("/tmp/unused-obs-trace.jsonl"));
    dosco::obs::install_recorder(recorder.clone());
    dosco::obs::set_sample_stride(16);

    // Short horizon so the training envs cycle through complete episodes
    // (EpisodeEnd events) within the small step budget.
    let scenario = ScenarioConfig::paper_base(1)
        .with_pattern(ArrivalPattern::paper_poisson())
        .with_horizon(60.0);
    let degree = scenario.topology.network_degree();
    let (obs_dim, num_actions) = (4 * degree + 4, degree + 1);
    let mut envs: Vec<Box<dyn Env>> = (0..2)
        .map(|i| {
            Box::new(CoordEnv::new(
                scenario.clone(),
                RewardConfig::default(),
                500 + i,
                None,
            )) as Box<dyn Env>
        })
        .collect();
    let cfg = A2cConfig {
        n_steps: 8,
        hidden: [32, 32],
        ..A2cConfig::default()
    };
    let mut agent = A2c::new(obs_dim, num_actions, cfg, 0);
    let outcome = train(&mut agent, &mut envs, 96, &RuntimeConfig::sync());
    assert!(outcome.stats.total_steps >= 96);

    dosco::obs::uninstall_recorder();
    recorder.render()
}

#[test]
fn traced_runs_are_byte_identical_and_parseable() {
    let first = traced_training_run();
    let second = traced_training_run();
    assert_eq!(first, second, "same-seed traces must be byte-identical");

    let lines: Vec<&str> = first.lines().collect();
    assert!(lines.len() > 3, "expected a non-trivial trace");

    // Header: schema version + stream/event counts matching the body.
    let header: serde::Value = serde_json::from_str(lines[0]).expect("header parses");
    let obj = header.as_object().expect("header is an object");
    let get = |k: &str| {
        obj.iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("header field {k}"))
    };
    assert_eq!(get("schema").as_u64(), Some(u64::from(dosco::obs::SCHEMA_VERSION)));
    assert_eq!(get("events").as_u64(), Some(lines.len() as u64 - 1));

    // Body: every line is one JSON object with stream / seq / event, and
    // per-stream sequence numbers are contiguous from zero.
    let mut next_seq: std::collections::BTreeMap<String, u64> = Default::default();
    let mut saw_episode_end = false;
    for line in &lines[1..] {
        let v: serde::Value = serde_json::from_str(line).expect("event line parses");
        let obj = v.as_object().expect("event line is an object");
        let field = |k: &str| {
            obj.iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v)
                .unwrap_or_else(|| panic!("event field {k}"))
        };
        let stream = field("stream").as_str().expect("stream label").to_string();
        let seq = field("seq").as_u64().expect("seq number");
        let expected = next_seq.entry(stream).or_insert(0);
        assert_eq!(seq, *expected, "per-stream seq must be contiguous");
        *expected += 1;
        let event = field("event").as_object().expect("event payload");
        assert_eq!(event.len(), 1, "events are single-variant objects");
        if event[0].0 == "EpisodeEnd" {
            saw_episode_end = true;
        }
    }
    assert!(saw_episode_end, "training episodes must emit EpisodeEnd");
    assert!(
        next_seq.keys().any(|s| s.starts_with("sim:")),
        "expected at least one per-episode sim stream"
    );
    assert!(
        next_seq.contains_key(&Stream::learner().label()),
        "expected the learner stream (batches + snapshots)"
    );
}
