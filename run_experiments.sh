#!/bin/bash
# Regenerates every table and figure at the reduced default budget.
# Full-scale: raise DOSCO_TRAIN_STEPS/DOSCO_SEEDS/DOSCO_EVAL_SEEDS/DOSCO_HORIZON.
set -u
cd "$(dirname "$0")"
BIN=./target/release
export DOSCO_TRAIN_STEPS=${DOSCO_TRAIN_STEPS:-28000}
export DOSCO_SEEDS=${DOSCO_SEEDS:-3}
export DOSCO_EVAL_SEEDS=${DOSCO_EVAL_SEEDS:-5}
export DOSCO_HORIZON=${DOSCO_HORIZON:-5000}
export DOSCO_CENTRAL_STEPS=${DOSCO_CENTRAL_STEPS:-800}
mkdir -p results
echo "=== table1 ===";      $BIN/table1  2>&1 | tee results/table1.txt
echo "=== fig6 (all) ===";  $BIN/fig6 --pattern all 2>&1 | tee results/fig6.txt
echo "=== fig7 ===";        $BIN/fig7 2>&1 | tee results/fig7.txt
echo "=== fig8 (all) ===";  $BIN/fig8 --part all 2>&1 | tee results/fig8.txt
echo "=== fig9 (all) ===";  $BIN/fig9 --part all 2>&1 | tee results/fig9.txt
echo "=== ablations ===";   DOSCO_TRAIN_STEPS=16000 $BIN/ablations 2>&1 | tee results/ablations.txt
echo "=== flagship ===";    $BIN/flagship 2>&1 | tee results/flagship.txt
echo "ALL EXPERIMENTS DONE"
