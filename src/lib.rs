//! # dosco — Distributed Online Service Coordination
//!
//! Facade crate re-exporting the whole workspace: a Rust reproduction of
//! *"Distributed Online Service Coordination Using Deep Reinforcement
//! Learning"* (Schneider, Qarawlus, Karl — IEEE ICDCS 2021).
//!
//! See the `README.md` for a tour and `examples/` for runnable scenarios.

pub use dosco_baselines as baselines;
pub use dosco_chaos as chaos;
pub use dosco_core as core;
pub use dosco_ctl as ctl;
pub use dosco_net as net;
pub use dosco_nn as nn;
pub use dosco_obs as obs;
pub use dosco_rl as rl;
pub use dosco_runtime as runtime;
pub use dosco_serve as serve;
pub use dosco_simnet as simnet;
pub use dosco_topology as topology;
pub use dosco_traffic as traffic;
