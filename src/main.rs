//! `dosco` — command-line interface for training, evaluating, and
//! inspecting distributed service-coordination policies.
//!
//! ```text
//! dosco train --ingress 2 --pattern poisson --steps 40000 --out policy.json
//! dosco eval  --policy policy.json --ingress 3 --pattern mmpp --seeds 5
//! dosco run   --algo gcasp --ingress 4 --pattern trace
//! dosco topo  --list
//! ```

use dosco::baselines::{Gcasp, ShortestPath};
use dosco::core::eval::evaluate_with_capacity_draw;
use dosco::core::policy::CoordinationPolicy;
use dosco::core::train::{train_distributed, Algorithm, TrainConfig};
use dosco::simnet::{Coordinator, Metrics, ScenarioConfig, Simulation};
use dosco::topology::{stats::TopologyRow, zoo};
use dosco::traffic::ArrivalPattern;
use std::process::ExitCode;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn pattern(args: &[String]) -> ArrivalPattern {
    match flag(args, "--pattern").as_deref().unwrap_or("poisson") {
        "fixed" => ArrivalPattern::paper_fixed(),
        "poisson" => ArrivalPattern::paper_poisson(),
        "mmpp" => ArrivalPattern::paper_mmpp(),
        "trace" => ArrivalPattern::paper_trace(),
        other => {
            eprintln!("unknown pattern {other:?}; use fixed|poisson|mmpp|trace");
            std::process::exit(2);
        }
    }
}

fn scenario(args: &[String]) -> ScenarioConfig {
    let ingress: usize = flag(args, "--ingress")
        .map(|v| v.parse().expect("--ingress must be 1..=5"))
        .unwrap_or(2);
    let horizon: f64 = flag(args, "--horizon")
        .map(|v| v.parse().expect("--horizon must be a number"))
        .unwrap_or(5_000.0);
    let deadline: Option<f64> =
        flag(args, "--deadline").map(|v| v.parse().expect("--deadline must be a number"));
    let mut cfg = ScenarioConfig::paper_base(ingress)
        .with_pattern(pattern(args))
        .with_horizon(horizon);
    if let Some(d) = deadline {
        cfg = cfg.with_deadline(d);
    }
    cfg
}

fn print_metrics(label: &str, m: &Metrics) {
    println!(
        "{label}: success {:.3} ({} completed / {} dropped / {} in flight), avg e2e {}",
        m.success_ratio(),
        m.completed,
        m.dropped_total(),
        m.in_flight(),
        m.avg_e2e_delay()
            .map_or("-".to_string(), |d| format!("{d:.1} ms")),
    );
}

fn cmd_train(args: &[String]) -> ExitCode {
    let out = flag(args, "--out").unwrap_or_else(|| "policy.json".into());
    let steps: usize = flag(args, "--steps")
        .map(|v| v.parse().expect("--steps must be an integer"))
        .unwrap_or(40_000);
    let seeds: u64 = flag(args, "--seeds")
        .map(|v| v.parse().expect("--seeds must be an integer"))
        .unwrap_or(3);
    let algorithm = match flag(args, "--algo").as_deref().unwrap_or("acktr") {
        "acktr" => Algorithm::Acktr,
        "a2c" => Algorithm::A2c,
        "ppo" => Algorithm::Ppo,
        other => {
            eprintln!("unknown algorithm {other:?}; use acktr|a2c|ppo");
            return ExitCode::from(2);
        }
    };
    let scenario = scenario(args);
    eprintln!(
        "training {} on {} ({} ingress, {} pattern, {steps} steps x {seeds} seeds)…",
        algorithm.name(),
        scenario.topology.name(),
        scenario.ingresses.len(),
        scenario.ingresses[0].pattern.name(),
    );
    let config = TrainConfig {
        algorithm,
        total_steps: steps,
        seeds: (0..seeds).collect(),
        ..TrainConfig::default()
    };
    let trained = train_distributed(&scenario, &config);
    println!("seed scores (best first): {:?}", trained.seed_scores);
    if let Err(e) = trained.policy.save(&out) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("policy written to {out}");
    ExitCode::SUCCESS
}

fn cmd_eval(args: &[String]) -> ExitCode {
    let Some(path) = flag(args, "--policy") else {
        eprintln!("--policy <file> required");
        return ExitCode::from(2);
    };
    let policy = match CoordinationPolicy::load(&path) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cannot load {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let seeds: u64 = flag(args, "--seeds")
        .map(|v| v.parse().expect("--seeds must be an integer"))
        .unwrap_or(5);
    let scenario = scenario(args);
    let mut ratios = Vec::new();
    for seed in 100..100 + seeds {
        let m = evaluate_with_capacity_draw(&policy, &scenario, seed);
        print_metrics(&format!("seed {seed}"), &m);
        ratios.push(m.success_ratio());
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!("mean success over {seeds} seeds: {mean:.3}");
    ExitCode::SUCCESS
}

fn cmd_run(args: &[String]) -> ExitCode {
    let algo = flag(args, "--algo").unwrap_or_else(|| "gcasp".into());
    let seed: u64 = flag(args, "--seed")
        .map(|v| v.parse().expect("--seed must be an integer"))
        .unwrap_or(1);
    let scenario = scenario(args);
    let mut coordinator: Box<dyn Coordinator> = match algo.as_str() {
        "gcasp" => Box::new(Gcasp::new()),
        "sp" => Box::new(ShortestPath::new()),
        other => {
            eprintln!("unknown algorithm {other:?}; use gcasp|sp (DRL: `dosco eval`)");
            return ExitCode::from(2);
        }
    };
    let mut sim = Simulation::new(scenario, seed);
    let m = sim.run(coordinator.as_mut()).clone();
    print_metrics(&algo, &m);
    ExitCode::SUCCESS
}

fn cmd_topo(_args: &[String]) -> ExitCode {
    println!(
        "{:<14} {:>5} {:>5}   Degree (Min./Max./Avg.)",
        "Network", "Nodes", "Edges"
    );
    for row in zoo::all().iter().map(TopologyRow::of) {
        println!("{row}");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("train") => cmd_train(&args[1..]),
        Some("eval") => cmd_eval(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("topo") => cmd_topo(&args[1..]),
        _ => {
            eprintln!(
                "usage: dosco <train|eval|run|topo> [options]\n\
                 \n\
                 train --ingress N --pattern P --steps S --seeds K --algo acktr|a2c|ppo --out FILE\n\
                 eval  --policy FILE --ingress N --pattern P --seeds K [--deadline D]\n\
                 run   --algo gcasp|sp --ingress N --pattern P [--seed S]\n\
                 topo  (list bundled topologies)\n\
                 \n\
                 common: --pattern fixed|poisson|mmpp|trace  --horizon T  --deadline D"
            );
            ExitCode::from(2)
        }
    }
}
