//! Serving-plane quickstart: train a coordination policy briefly, publish
//! it to the versioned policy hub, and serve concurrent episodes through
//! the sharded `dosco_serve` inference fabric — with a policy hot-swap
//! landing mid-run and one shard killed and recovered under traffic.
//!
//! ```text
//! cargo run --release --example serve
//! ```
//!
//! Set `DOSCO_SPANS=1` for per-decision latency spans and batch-forward
//! timings in the printed observability report.
//!
//! What to look for in the output:
//! - the swap is picked up at a deterministic epoch boundary and every
//!   decision is attributed to the version that produced it,
//! - during the kill window, shard 0's nodes are served by the
//!   shortest-path fallback — counted, never dropped,
//! - the respawned shard comes back at the *published* version, and the
//!   conservation check (batched + fallback == total) holds.

use dosco::core::{CoordEnv, CoordinationPolicy, RewardConfig};
use dosco::core::policy::PolicyMetadata;
use dosco::rl::a2c::{A2c, A2cConfig};
use dosco::rl::Env;
use dosco::runtime::{PolicySlot, PolicySnapshot};
use dosco::serve::{serve_with, FaultScript, ServeConfig};
use dosco::simnet::ScenarioConfig;
use dosco::traffic::ArrivalPattern;
use std::sync::Arc;

fn main() {
    dosco::obs::init_from_env();

    let scenario = ScenarioConfig::paper_base(2)
        .with_pattern(ArrivalPattern::paper_poisson())
        .with_horizon(500.0);
    let degree = scenario.topology.network_degree();
    let (obs_dim, num_actions) = (4 * degree + 4, degree + 1);

    // Train briefly: enough for a real (if rough) policy, fast enough for
    // an example.
    println!("training A2C for 4,000 transitions ...");
    let mut agent = A2c::new(
        obs_dim,
        num_actions,
        A2cConfig {
            n_steps: 16,
            hidden: [64, 64],
            ..A2cConfig::default()
        },
        0,
    );
    let mut envs: Vec<Box<dyn Env>> = (0..4)
        .map(|i| {
            Box::new(CoordEnv::new(
                scenario.clone(),
                RewardConfig::default(),
                2_000 + i,
                None,
            )) as Box<dyn Env>
        })
        .collect();
    let stats = agent.train(&mut envs, 4_000);
    println!(
        "  trained {} steps, tail mean reward {:.4}",
        stats.total_steps,
        stats.tail_mean(10)
    );

    // The hub starts at version 0 with the *untrained* initial weights —
    // the serving fabric subscribes here, exactly as it would to a live
    // learner. We publish the trained weights mid-run as version 1.
    let untrained = A2c::new(obs_dim, num_actions, A2cConfig::default(), 0);
    let hub = PolicySlot::new(PolicySnapshot {
        version: 0,
        actor: untrained.actor().clone(),
        critic: untrained.critic().clone(),
    });
    let trained = Arc::new(PolicySnapshot {
        version: 1,
        actor: agent.actor().clone(),
        critic: agent.critic().clone(),
    });

    // The policy argument fixes the observation contract (padded degree);
    // with a hub attached the served weights come from the hub.
    let contract = CoordinationPolicy::new(
        untrained.actor().clone(),
        degree,
        PolicyMetadata::default(),
    );

    // 4 shards over the topology's nodes; shard 0 is killed for epochs
    // 30..45 — its nodes degrade to shortest-path until it respawns.
    let cfg = ServeConfig::new(4).with_faults(FaultScript::new().kill(0, 30, 45));
    println!(
        "serving 6 episodes across {} shards (hot-swap at epoch 20, shard 0 down 30..45) ...",
        cfg.num_shards
    );
    let outcome = serve_with(
        &contract,
        Some(&hub),
        &scenario,
        &[1, 2, 3, 4, 5, 6],
        &cfg,
        |epoch| {
            if epoch == 20 {
                hub.publish(Arc::clone(&trained));
            }
        },
    );

    let r = &outcome.report;
    println!("serve report:");
    println!("  epochs                {}", r.epochs);
    println!("  decisions             {}", r.decisions);
    println!("  batched               {}", r.batched_decisions);
    println!("  SP fallbacks          {}", r.fallback_decisions);
    println!("  hot-swaps             {}", r.swaps);
    println!("  shard kills/respawns  {}/{}", r.shard_kills, r.shard_respawns);
    println!("  max batch rows        {}", r.max_batch_rows);
    println!("  final version         {}", r.final_version);
    println!("  shard versions        {:?}", r.shard_versions);
    for &(v, n) in &r.decisions_by_version {
        println!("  decisions @ v{v}       {n}");
    }
    assert!(r.conserved(), "batched + fallback must equal total");
    println!("conservation holds: batched + fallback == decisions");
    assert!(
        r.shard_versions.iter().all(|&v| v == r.final_version),
        "every shard re-synced to the published version"
    );

    for (i, m) in outcome.metrics.iter().enumerate() {
        println!(
            "  episode {i}: {} flows arrived, success ratio {:.3}",
            m.arrived,
            m.success_ratio()
        );
    }

    // Serve-plane view of the metrics registry: counters, the batch-size
    // histogram, and (under DOSCO_SPANS=1) batched-forward span timings.
    let obs = dosco::obs::report();
    println!("\nobservability (serve_* metrics):");
    for c in obs.counters.iter().filter(|c| c.name.starts_with("serve_")) {
        println!("  counter {:<24} {}", c.name, c.value);
    }
    for g in obs.gauges.iter().filter(|g| g.name.contains("serve")) {
        println!("  gauge   {:<24} {}", g.name, g.value);
    }
    if let Some(h) = obs.histograms.iter().find(|h| h.name == "serve_batch_size") {
        println!(
            "  hist    {:<24} count {} mean {:.2}",
            h.name,
            h.count,
            if h.count > 0 { h.sum / h.count as f64 } else { 0.0 }
        );
    }
    for s in obs.spans.iter().filter(|s| s.name.starts_with("serve_")) {
        if s.count > 0 {
            println!(
                "  span    {:<24} count {} total {:.2} ms max {:.3} ms",
                s.name, s.count, s.total_ms, s.max_ms
            );
        }
    }
}
