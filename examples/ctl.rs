//! Control-plane quickstart: train a candidate policy, register it in
//! the versioned policy registry, canary it against the incumbent on a
//! shard subset of the serving fabric, and watch the whole lifecycle
//! through the ops HTTP surface.
//!
//! ```text
//! cargo run --release --example ctl
//! ```
//!
//! `DOSCO_CTL_ADDR` / `DOSCO_CTL_THREADS` override the server binding
//! (default: an ephemeral loopback port, 2 workers).
//!
//! What to look for in the output:
//! - the registry assigns versions, records lineage, and survives the
//!   promote in its append-only log,
//! - the canary serves incumbent and candidate side by side with exact
//!   per-version decision accounting,
//! - after the verdict, `GET /shards` shows every shard converged and
//!   `GET /snapshot` shows the promoted head — all live over real TCP.

use dosco::core::policy::PolicyMetadata;
use dosco::core::{CoordEnv, CoordinationPolicy, RewardConfig};
use dosco::ctl::{
    run_canary, CanaryConfig, CanaryDecision, CtlConfig, CtlServer, CtlState, PolicyRegistry,
    ThresholdJudge,
};
use dosco::rl::a2c::{A2c, A2cConfig};
use dosco::rl::Env;
use dosco::runtime::{PolicySlot, PolicySnapshot};
use dosco::serve::{ServeConfig, StatusBoard};
use dosco::simnet::ScenarioConfig;
use dosco::traffic::ArrivalPattern;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};

/// One raw HTTP/1.1 GET: returns the body (panics on non-200).
fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to ctl server");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n")
        .expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    assert!(
        response.starts_with("HTTP/1.1 200"),
        "GET {path} failed: {response}"
    );
    response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default()
}

fn main() {
    dosco::obs::init_from_env();

    let scenario = ScenarioConfig::paper_base(2)
        .with_pattern(ArrivalPattern::paper_poisson())
        .with_horizon(500.0);
    let degree = scenario.topology.network_degree();
    let (obs_dim, num_actions) = (4 * degree + 4, degree + 1);

    // -- Train a candidate (briefly: a real but rough policy).
    println!("training A2C candidate for 4,000 transitions ...");
    let mut agent = A2c::new(
        obs_dim,
        num_actions,
        A2cConfig {
            n_steps: 16,
            hidden: [64, 64],
            ..A2cConfig::default()
        },
        0,
    );
    let mut envs: Vec<Box<dyn Env>> = (0..4)
        .map(|i| {
            Box::new(CoordEnv::new(
                scenario.clone(),
                RewardConfig::default(),
                2_000 + i,
                None,
            )) as Box<dyn Env>
        })
        .collect();
    let stats = agent.train(&mut envs, 4_000);
    println!(
        "  trained {} steps, tail mean reward {:.4}",
        stats.total_steps,
        stats.tail_mean(10)
    );

    // -- Register incumbent (untrained, v0) and candidate (trained, v1).
    let untrained = A2c::new(obs_dim, num_actions, A2cConfig::default(), 0);
    let incumbent_policy = CoordinationPolicy::new(
        untrained.actor().clone(),
        degree,
        PolicyMetadata {
            algorithm: "a2c-initial".into(),
            ..PolicyMetadata::default()
        },
    );
    let candidate_policy = CoordinationPolicy::new(
        agent.actor().clone(),
        degree,
        PolicyMetadata {
            algorithm: "a2c".into(),
            total_steps: stats.total_steps,
            ..PolicyMetadata::default()
        },
    );
    let root = std::env::temp_dir().join(format!("dosco-ctl-example-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let mut registry = PolicyRegistry::open(&root).expect("open registry");
    let m0 = registry.publish(&incumbent_policy).expect("publish incumbent");
    let m1 = registry.publish(&candidate_policy).expect("publish candidate");
    registry.promote(m0.version, "initial deploy").expect("promote incumbent");
    println!("{}", registry.describe());
    println!(
        "  v{} {} / v{} {} (checksums {} / {})",
        m0.version, m0.algorithm, m1.version, m1.algorithm, m0.fnv64, m1.fnv64
    );
    // The registry's copy round-trips with integrity verification.
    let incumbent_policy = registry.load_head().expect("load promoted head");
    let candidate_policy = registry.load(m1.version).expect("load candidate");

    // -- Bring up the ops surface, attached to the registry, a policy
    // slot, and the status board the canary fabric will publish to.
    let board = Arc::new(StatusBoard::new());
    let slot = Arc::new(PolicySlot::new(PolicySnapshot {
        version: m0.version,
        actor: incumbent_policy.actor().clone(),
        critic: untrained.critic().clone(),
    }));
    let registry = Arc::new(Mutex::new(registry));
    let state = Arc::new(CtlState::new());
    state.attach_board(Arc::clone(&board));
    state.attach_slot(Arc::clone(&slot));
    state.attach_registry(Arc::clone(&registry));
    let cfg = CtlConfig::from_env().expect("valid DOSCO_CTL_* env");
    let server = CtlServer::start(&cfg, Arc::clone(&state)).expect("start ctl server");
    println!("ops surface listening on http://{}", server.addr());
    println!("  GET /healthz -> {}", http_get(server.addr(), "/healthz"));

    // -- Canary: candidate on shards {1, 2} from epoch 10, judged after a
    // 30-epoch window by the default threshold judge.
    let incumbent = Arc::new(PolicySnapshot {
        version: m0.version,
        actor: incumbent_policy.actor().clone(),
        critic: untrained.critic().clone(),
    });
    let candidate = Arc::new(PolicySnapshot {
        version: m1.version,
        actor: candidate_policy.actor().clone(),
        critic: agent.critic().clone(),
    });
    let judge = ThresholdJudge::default();
    println!("canarying v1 on shards {{1, 2}} (epochs 10..40, threshold judge) ...");
    let outcome = run_canary(
        incumbent,
        Arc::clone(&candidate),
        &scenario,
        &[1, 2, 3, 4, 5, 6],
        &ServeConfig::new(4).with_status(Arc::clone(&board)),
        &CanaryConfig::new(vec![1, 2], 10, 30),
        |stats| judge.decide(stats),
    );

    let decision = outcome.report.decision.expect("window completed");
    let cstats = outcome.report.stats.as_ref().expect("stats recorded");
    println!("canary verdict: {decision:?}");
    println!(
        "  window: {} candidate vs {} incumbent decisions, success {:?} (baseline {:?})",
        cstats.candidate_decisions(),
        cstats.incumbent_decisions(),
        cstats.window_success_ratio(),
        cstats.baseline_success_ratio()
    );
    let r = &outcome.serve.report;
    println!("  fabric: {} decisions over {} epochs, final version {}", r.decisions, r.epochs, r.final_version);
    for &(v, n) in &r.decisions_by_version {
        println!("  decisions @ v{v}  {n}");
    }
    assert!(r.conserved(), "batched + fallback must equal total");

    // -- Apply the verdict to the registry and show the ops surface
    // reflecting everything live.
    if decision == CanaryDecision::Promote {
        slot.publish(Arc::clone(&candidate));
        registry
            .lock()
            .expect("registry lock")
            .promote(m1.version, "canary window passed")
            .expect("promote candidate");
    }
    println!("{}", registry.lock().expect("registry lock").describe());
    for rec in registry.lock().expect("registry lock").promotion_log().expect("read log") {
        println!("  log[{}] {:?} -> v{} (was {:?}): {}", rec.seq, rec.action, rec.version, rec.previous, rec.reason);
    }

    println!("  GET /snapshot -> {}", http_get(server.addr(), "/snapshot"));
    let shards = http_get(server.addr(), "/shards");
    println!("  GET /shards   -> {} bytes (live fabric status)", shards.len());
    let metrics = http_get(server.addr(), "/metrics");
    println!("  GET /metrics  -> {} bytes of deterministic registry JSON", metrics.len());

    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
    println!("done.");
}
