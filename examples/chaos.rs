//! Dynamic substrate: train a coordinator *under churn*, then watch how
//! it rides out a pinned fault timeline compared to the heuristic
//! baselines.
//!
//! ```text
//! cargo run --release --example chaos
//! ```
//!
//! Three stages:
//!
//! 1. Train the distributed DRL policy with stochastic link failures and
//!    node degradations injected into every training episode
//!    (`TrainConfig::churn`).
//! 2. Compile one *scripted* fault timeline — the egress node dies at
//!    t=600 and is repaired at t=900 — and replay the identical timeline
//!    under DRL, GCASP, and SP coordination.
//! 3. Print each coordinator's resilience report: the windowed success
//!    ratio before the fault, during the outage, and after repair.

use dosco::baselines::{Gcasp, ShortestPath};
use dosco::chaos::{resilience_report, ChurnAction, ChurnSchedule, StochasticChurn};
use dosco::core::eval::evaluate_under_churn;
use dosco::core::train::{train_distributed, Algorithm, TrainConfig};
use dosco::simnet::{Coordinator, EventLog, ScenarioConfig, SimEvent, Simulation};
use dosco::traffic::ArrivalPattern;

fn main() {
    let scenario = ScenarioConfig::paper_base(2)
        .with_pattern(ArrivalPattern::paper_poisson())
        .with_horizon(1_500.0);

    // Stage 1: training under stochastic churn. Mild rates — each link
    // fails every ~2 s on average and comes back after ~100 ms; nodes
    // suffer occasional transient capacity throttles. The policy sees
    // detours and re-instantiation instead of memorizing one static
    // substrate.
    let churn = ChurnSchedule::none().with_stochastic(
        StochasticChurn::default()
            .with_link_failures(2_000.0, 100.0)
            .with_node_degrades(dosco::chaos::DegradeProcess {
                mean_interval: 1_500.0,
                duration: 100.0,
                factor_min: 0.5,
                factor_max: 0.8,
            }),
    );
    println!("training distributed DRL agents under churn (toy budget) ...");
    let config = TrainConfig {
        algorithm: Algorithm::Acktr,
        total_steps: 24_000,
        n_envs: 4,
        seeds: vec![0, 1],
        eval_horizon: 1_000.0,
        churn: Some(churn),
        fixed_capacity_training: true,
        ..TrainConfig::default()
    };
    let trained = train_distributed(&scenario, &config);
    println!(
        "best seed: {} (selection score {:.3})",
        trained.policy.metadata.seed, trained.policy.metadata.score
    );

    // Stage 2: one pinned fault — the egress node goes dark for 300 ms.
    // Every coordinator replays the exact same compiled timeline.
    let egress = dosco::topology::zoo::ABILENE_EGRESS;
    let fault = ChurnSchedule::none()
        .at(600.0, ChurnAction::NodeDown(egress))
        .at(900.0, ChurnAction::NodeUp(egress));
    let timeline = fault
        .compile(&scenario.topology, scenario.horizon, 0)
        .expect("valid schedule");
    let eval_seed = 4242;
    const WINDOW: usize = 64;

    let report = |name: &str, events: &[SimEvent]| {
        let r = resilience_report(events, WINDOW);
        for w in &r.windows {
            println!(
                "{name:<16} {} v{} at t={:.0}: before {}  during {}  after {}",
                w.action,
                w.target,
                w.fault_time,
                fmt(w.before),
                fmt(w.during),
                fmt(w.after),
            );
        }
        println!(
            "{name:<16} overall success ratio {} over {} terminations",
            fmt(r.overall),
            r.terminations
        );
    };

    let (drl_metrics, drl_events) =
        evaluate_under_churn(&trained.policy, &scenario, eval_seed, timeline.clone());

    // Baselines run the same simulation directly, with an event log
    // wrapped around them for the resilience report.
    let (gcasp_metrics, gcasp_events) =
        run_baseline(&scenario, eval_seed, timeline.clone(), Gcasp::new());
    let (sp_metrics, sp_events) =
        run_baseline(&scenario, eval_seed, timeline.clone(), ShortestPath::new());

    println!("\nfault timeline: {egress} down at t=600, repaired at t=900\n");
    report("distributed DRL", &drl_events);
    report("GCASP", &gcasp_events);
    report("SP", &sp_events);

    println!(
        "\nepisode success ratio  DRL {:.3} | GCASP {:.3} | SP {:.3}",
        drl_metrics.success_ratio(),
        gcasp_metrics.success_ratio(),
        sp_metrics.success_ratio()
    );
}

fn run_baseline<C: Coordinator>(
    scenario: &ScenarioConfig,
    seed: u64,
    timeline: dosco::simnet::ChurnTimeline,
    coordinator: C,
) -> (dosco::simnet::Metrics, Vec<SimEvent>) {
    let mut log = EventLog::new(coordinator);
    let mut sim = Simulation::with_churn(scenario.clone(), seed, timeline);
    let metrics = sim.run(&mut log).clone();
    (metrics, log.into_events())
}

fn fmt(v: Option<f64>) -> String {
    v.map_or("   -".to_string(), |r| format!("{r:.2}"))
}
