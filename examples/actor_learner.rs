//! Actor–learner training runtime quickstart: train an A2C coordination
//! policy on the paper's base scenario (Abilene) with overlapped rollout
//! actors and a central learner, then print the runtime's counters —
//! batches produced/consumed, policy staleness against its bound, and the
//! backpressure signals.
//!
//! ```text
//! cargo run --release --example actor_learner
//! ```
//!
//! Set `DOSCO_TRACE=/tmp/run.jsonl` to capture a structured JSONL event
//! trace (episode samples, batch hand-offs, snapshot publishes). Tracing
//! switches the runtime to lockstep sync mode so the trace is
//! byte-identical across runs with the same seed; `DOSCO_SPANS=1`
//! additionally arms the hot-path span timers.
//!
//! For the lockstep variant that is bit-identical to the serial training
//! loop, swap in `RuntimeConfig::sync()` — or set
//! `TrainConfig { runtime: Some(...), .. }` to route the full
//! `train_distributed` pipeline (multi-seed, checkpoints, best-policy
//! selection) through the runtime.

use dosco::core::{CoordEnv, RewardConfig};
use dosco::rl::a2c::{A2c, A2cConfig};
use dosco::rl::Env;
use dosco::runtime::{train, Mode, RuntimeConfig};
use dosco::simnet::ScenarioConfig;
use dosco::traffic::ArrivalPattern;

fn main() {
    // Observability from the environment: DOSCO_TRACE installs a JSONL
    // recorder, DOSCO_SPANS arms span timers, DOSCO_TRACE_SAMPLE sets the
    // mid-episode sampling stride.
    let trace_path = dosco::obs::init_from_env();

    // The paper's base scenario: Abilene, 2 ingress nodes, Poisson
    // arrivals, the FW -> IDS -> Video service chain.
    let scenario = ScenarioConfig::paper_base(2)
        .with_pattern(ArrivalPattern::paper_poisson())
        .with_horizon(1_000.0);
    let degree = scenario.topology.network_degree();
    let (obs_dim, num_actions) = (4 * degree + 4, degree + 1);

    // Four parallel environment copies, sharded across two actor threads.
    let mut envs: Vec<Box<dyn Env>> = (0..4)
        .map(|i| {
            Box::new(CoordEnv::new(
                scenario.clone(),
                RewardConfig::default(),
                1_000 + i,
                None,
            )) as Box<dyn Env>
        })
        .collect();

    let agent_cfg = A2cConfig {
        n_steps: 16,
        hidden: [64, 64],
        ..A2cConfig::default()
    };
    let mut agent = A2c::new(obs_dim, num_actions, agent_cfg, 0);

    // Async interleaving is nondeterministic by design, so a trace run
    // drops to lockstep sync mode: same seed -> byte-identical trace.
    let mode = if trace_path.is_some() {
        println!("DOSCO_TRACE set: using sync mode for a deterministic trace");
        Mode::Sync
    } else {
        Mode::Async
    };
    let config = RuntimeConfig {
        mode,
        n_actors: 2,
        channel_capacity: 4,
        minibatch_batches: 1,
        max_staleness: 32,
        actor_seed: 0x5EED,
    };
    config.validate().expect("valid runtime configuration");

    println!(
        "training A2C through the actor-learner runtime ({} mode, {} actors) ...",
        config.mode.name(),
        config.n_actors
    );
    let outcome = train(&mut agent, &mut envs, 8_000, &config);

    println!(
        "trained {} transitions over {} updates, final mean reward {:.4}",
        outcome.stats.total_steps,
        outcome.stats.mean_rewards.len(),
        outcome.stats.tail_mean(10),
    );
    let r = &outcome.report;
    println!("runtime counters:");
    println!("  batches produced      {}", r.batches_produced);
    println!("  batches consumed      {}", r.batches_consumed);
    println!("  batches in flight     {}", r.batches_in_flight);
    println!("  snapshots published   {}", r.snapshots_published);
    println!(
        "  staleness             mean {:.2} / max {} (bound {})",
        r.mean_staleness, r.max_staleness, r.staleness_bound
    );
    println!("  channel-full stalls   {}", r.channel_full_stalls);
    println!("  clock-gate waits      {}", r.gate_waits);
    assert_eq!(
        r.batches_produced,
        r.batches_consumed + r.batches_in_flight,
        "conservation invariant"
    );
    println!("conservation holds: produced == consumed + in-flight");

    if let Some(path) = trace_path {
        dosco::obs::flush().expect("write trace file");
        println!("wrote JSONL event trace to {}", path.display());
    }
}
