//! Load a real Internet Topology Zoo GraphML file (if you have one) or
//! fall back to an embedded sample, then run the full coordination
//! pipeline on it.
//!
//! ```text
//! cargo run --release --example graphml_import -- [path/to/topology.graphml]
//! ```

use dosco::baselines::{Gcasp, ShortestPath};
use dosco::simnet::{Coordinator, Simulation};
use dosco::topology::{graphml, stats::TopologyRow};
use rand::SeedableRng;

/// A miniature Topology-Zoo-style document (a slice of Abilene) used when
/// no file is given on the command line.
const SAMPLE: &str = r#"<?xml version="1.0" encoding="utf-8"?>
<graphml xmlns="http://graphml.graphdrawing.org/xmlns">
  <key attr.name="Latitude" attr.type="double" for="node" id="d29"/>
  <key attr.name="Longitude" attr.type="double" for="node" id="d32"/>
  <key attr.name="label" attr.type="string" for="node" id="d33"/>
  <graph edgedefault="undirected">
    <node id="0"><data key="d29">40.71</data><data key="d32">-74.01</data><data key="d33">NewYork</data></node>
    <node id="1"><data key="d29">41.88</data><data key="d32">-87.63</data><data key="d33">Chicago</data></node>
    <node id="2"><data key="d29">38.91</data><data key="d32">-77.04</data><data key="d33">WashingtonDC</data></node>
    <node id="3"><data key="d29">33.75</data><data key="d32">-84.39</data><data key="d33">Atlanta</data></node>
    <node id="4"><data key="d29">39.77</data><data key="d32">-86.16</data><data key="d33">Indianapolis</data></node>
    <node id="5"><data key="d29">39.10</data><data key="d32">-94.58</data><data key="d33">KansasCity</data></node>
    <node id="6"><data key="d29">29.76</data><data key="d32">-95.37</data><data key="d33">Houston</data></node>
    <node id="7"><data key="d29">39.74</data><data key="d32">-104.99</data><data key="d33">Denver</data></node>
    <node id="8"><data key="d29">47.61</data><data key="d32">-122.33</data><data key="d33">Seattle</data></node>
    <edge source="0" target="1"/>
    <edge source="0" target="2"/>
    <edge source="1" target="4"/>
    <edge source="2" target="3"/>
    <edge source="3" target="4"/>
    <edge source="3" target="6"/>
    <edge source="4" target="5"/>
    <edge source="5" target="6"/>
    <edge source="5" target="7"/>
    <edge source="7" target="8"/>
  </graph>
</graphml>"#;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (xml, name) = match args.get(1) {
        Some(path) => (
            std::fs::read_to_string(path).expect("readable GraphML file"),
            path.clone(),
        ),
        None => (SAMPLE.to_string(), "embedded sample".to_string()),
    };
    let mut topology = graphml::parse(&xml, &name).expect("valid GraphML");
    println!("loaded {}", TopologyRow::of(&topology));

    // Assign the paper's random capacities and build the base workload.
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    topology.assign_random_capacities(&mut rng, (0.5, 2.0), (1.0, 5.0));
    let scenario = dosco_bench_like_scenario(topology);

    for (label, coordinator) in [
        ("GCASP", Box::new(Gcasp::new()) as Box<dyn Coordinator>),
        ("SP", Box::new(ShortestPath::new())),
    ] {
        let mut c = coordinator;
        let mut sim = Simulation::new(scenario.clone(), 3);
        let m = sim.run(c.as_mut()).clone();
        println!(
            "{label:<6} success {:.3} ({} flows, avg e2e {})",
            m.success_ratio(),
            m.arrived,
            m.avg_e2e_delay()
                .map_or("-".to_string(), |d| format!("{d:.1} ms")),
        );
    }
}

/// Poisson traffic between the two lowest-degree... simply the first two
/// nodes, egress at the last node.
fn dosco_bench_like_scenario(
    topology: dosco::topology::Topology,
) -> dosco::simnet::ScenarioConfig {
    use dosco::simnet::{IngressSpec, ScenarioConfig, ServiceCatalog, ServiceId};
    use dosco::topology::NodeId;
    use dosco::traffic::{ArrivalPattern, FlowProfile};
    let egress = NodeId(topology.num_nodes() - 1);
    let scenario = ScenarioConfig {
        topology,
        catalog: ServiceCatalog::paper_video_service(),
        ingresses: vec![
            IngressSpec {
                node: NodeId(0),
                pattern: ArrivalPattern::paper_poisson(),
                service: ServiceId(0),
                egress,
                profile: FlowProfile::paper_default(),
            },
            IngressSpec {
                node: NodeId(1),
                pattern: ArrivalPattern::paper_poisson(),
                service: ServiceId(0),
                egress,
                profile: FlowProfile::paper_default(),
            },
        ],
        horizon: 3_000.0,
        hold_delay: 1.0,
        capacity_seed: 1,
    };
    scenario.validate().expect("consistent scenario");
    scenario
}
