//! Quickstart: train a small distributed DRL coordinator on the paper's
//! base scenario, deploy it at every node, and compare it against the
//! heuristic baselines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This runs at toy scale (about a minute); see `crates/bench` for the
//! full experiment harness.

use dosco::baselines::{Gcasp, ShortestPath};
use dosco::core::train::{train_distributed, Algorithm, TrainConfig};
use dosco::simnet::{Coordinator, ScenarioConfig, Simulation};
use dosco::traffic::ArrivalPattern;

fn main() {
    // The paper's base scenario (Sec. V-A1): Abilene, 2 ingress nodes,
    // Poisson flow arrivals, the FW -> IDS -> Video service.
    let scenario = ScenarioConfig::paper_base(2)
        .with_pattern(ArrivalPattern::paper_poisson())
        .with_horizon(3_000.0);

    // Centralized training, distributed inference (Alg. 1) — tiny budget.
    println!("training distributed DRL agents (toy budget, ~1 min) ...");
    let config = TrainConfig {
        algorithm: Algorithm::Acktr,
        total_steps: 12_000,
        n_envs: 4,
        seeds: vec![0, 1],
        eval_horizon: 1_500.0,
        ..TrainConfig::default()
    };
    let trained = train_distributed(&scenario, &config);
    println!(
        "best seed: {} (selection score {:.3})",
        trained.policy.metadata.seed, trained.policy.metadata.score
    );

    // Evaluate all algorithms on the same held-out episode.
    let eval_seed = 4242;
    let run = |name: &str, coordinator: &mut dyn Coordinator| {
        let mut sim = Simulation::new(scenario.clone(), eval_seed);
        let m = sim.run(coordinator).clone();
        println!(
            "{name:<22} success ratio {:.3}  ({} completed, {} dropped, avg e2e {})",
            m.success_ratio(),
            m.completed,
            m.dropped_total(),
            m.avg_e2e_delay()
                .map_or("-".to_string(), |d| format!("{d:.1} ms")),
        );
    };

    let mut agents =
        dosco::core::DistributedAgents::deploy(&trained.policy, scenario.topology.num_nodes());
    run("distributed DRL", &mut agents);
    run("GCASP heuristic", &mut Gcasp::new());
    run("shortest path (SP)", &mut ShortestPath::new());

    // The trained policy is a plain JSON artifact.
    let path = std::env::temp_dir().join("dosco-quickstart-policy.json");
    trained.policy.save(&path).expect("writable temp dir");
    println!("policy saved to {}", path.display());
}
