//! Generalization to unseen scenarios (the Fig. 8 story): train a policy
//! on one traffic pattern, save it, reload it, and deploy it — without
//! retraining — under a different pattern and a different load level.
//!
//! ```text
//! cargo run --release --example policy_transfer
//! ```

use dosco::core::eval::evaluate;
use dosco::core::policy::CoordinationPolicy;
use dosco::core::train::{train_distributed, Algorithm, TrainConfig};
use dosco::simnet::ScenarioConfig;
use dosco::traffic::ArrivalPattern;

fn main() {
    // Train on *fixed* deterministic arrivals, 2 ingress nodes.
    let train_scenario = ScenarioConfig::paper_base(2)
        .with_pattern(ArrivalPattern::paper_fixed())
        .with_horizon(2_500.0);
    println!("training on fixed arrivals (toy budget) ...");
    let trained = train_distributed(
        &train_scenario,
        &TrainConfig {
            algorithm: Algorithm::Acktr,
            total_steps: 10_000,
            n_envs: 4,
            seeds: vec![0, 1],
            eval_horizon: 1_200.0,
            ..TrainConfig::default()
        },
    );

    // Persist and reload: the policy is a self-contained JSON artifact
    // that each node in a real deployment would receive (Fig. 4b).
    let path = std::env::temp_dir().join("dosco-transfer-policy.json");
    trained.policy.save(&path).expect("writable temp dir");
    let policy = CoordinationPolicy::load(&path).expect("just saved");
    println!(
        "reloaded policy (algorithm {}, seed {}, Δ_G {})",
        policy.metadata.algorithm,
        policy.metadata.seed,
        policy.degree()
    );

    // Deploy without retraining on scenarios it has never seen.
    let unseen = [
        ("trace-driven traffic (2 ingress)", {
            ScenarioConfig::paper_base(2)
                .with_pattern(ArrivalPattern::paper_trace())
                .with_horizon(2_500.0)
        }),
        ("MMPP bursts (2 ingress)", {
            ScenarioConfig::paper_base(2)
                .with_pattern(ArrivalPattern::paper_mmpp())
                .with_horizon(2_500.0)
        }),
        ("higher load (4 ingress, Poisson)", {
            ScenarioConfig::paper_base(4)
                .with_pattern(ArrivalPattern::paper_poisson())
                .with_horizon(2_500.0)
        }),
    ];
    println!("\ngeneralization without retraining:");
    for (label, scenario) in unseen {
        let m = evaluate(&policy, &scenario, 99);
        println!(
            "  {label:<34} success {:.3}  ({} completed / {} dropped)",
            m.success_ratio(),
            m.completed,
            m.dropped_total()
        );
    }
}
