//! Coordinating services on a custom network: build a topology by hand
//! (or load a Topology Zoo GraphML file), define a bespoke service chain,
//! and watch the simulator's event stream while a heuristic coordinates.
//!
//! ```text
//! cargo run --release --example custom_topology
//! ```

use dosco::baselines::Gcasp;
use dosco::simnet::{
    Component, ComponentId, IngressSpec, ScenarioConfig, Service, ServiceCatalog, ServiceId,
    SimEvent, Simulation,
};
use dosco::topology::TopologyBuilder;
use dosco::traffic::{ArrivalPattern, FlowProfile};

fn main() {
    // A small metro network: two access sites, two aggregation sites, one
    // core data center. Delays from geography, capacities hand-assigned.
    let mut b = TopologyBuilder::new("metro");
    let access_a = b.add_node_at("access-a", 0.5, 52.52, 13.40); // Berlin
    let access_b = b.add_node_at("access-b", 0.5, 52.40, 13.07); // Potsdam
    let agg_1 = b.add_node_at("agg-1", 2.0, 52.48, 13.37);
    let agg_2 = b.add_node_at("agg-2", 2.0, 52.45, 13.29);
    let core = b.add_node_at("core-dc", 8.0, 52.46, 13.52);
    for (x, y, cap) in [
        (access_a, agg_1, 4.0),
        (access_b, agg_2, 4.0),
        (agg_1, agg_2, 6.0),
        (agg_1, core, 10.0),
        (agg_2, core, 10.0),
    ] {
        b.add_link_geo(x, y, cap, 5.0).expect("valid link");
    }
    let topology = b.build().expect("valid topology");

    // A two-component service: lightweight firewall at the edge, heavy
    // transcoder that only the bigger sites can host.
    let catalog = ServiceCatalog::new(
        vec![
            Component {
                name: "edge-fw".into(),
                processing_delay: 1.0,
                resource_per_rate: 0.2,
                resource_fixed: 0.0,
                startup_delay: 0.5,
                idle_timeout: 50.0,
            },
            Component {
                name: "transcoder".into(),
                processing_delay: 8.0,
                resource_per_rate: 1.5,
                resource_fixed: 0.0,
                startup_delay: 2.0,
                idle_timeout: 100.0,
            },
        ],
        vec![Service {
            name: "secured-streaming".into(),
            chain: vec![ComponentId(0), ComponentId(1)],
        }],
    )
    .expect("valid catalog");

    let scenario = ScenarioConfig {
        topology,
        catalog,
        ingresses: vec![
            IngressSpec {
                node: access_a,
                pattern: ArrivalPattern::Poisson { mean: 8.0 },
                service: ServiceId(0),
                egress: core,
                profile: FlowProfile::new(1.0, 2.0, 60.0),
            },
            IngressSpec {
                node: access_b,
                pattern: ArrivalPattern::Mmpp {
                    mean0: 12.0,
                    mean1: 4.0,
                    period: 50.0,
                    prob: 0.1,
                },
                service: ServiceId(0),
                egress: core,
                profile: FlowProfile::new(1.0, 2.0, 60.0),
            },
        ],
        horizon: 500.0,
        hold_delay: 1.0,
        capacity_seed: 0,
    };
    scenario.validate().expect("consistent scenario");

    // Run under the GCASP heuristic and narrate the event stream.
    let mut sim = Simulation::new(scenario, 11);
    let mut gcasp = Gcasp::new();
    let mut printed = 0;
    loop {
        for ev in sim.drain_events() {
            if printed < 25 {
                match ev {
                    SimEvent::FlowArrived { flow, node, time } => {
                        println!("[{time:7.2} ms] {flow} arrived at {node}");
                    }
                    SimEvent::InstanceStarted { node, component, time } => {
                        println!("[{time:7.2} ms] instance of {component} placed at {node}");
                    }
                    SimEvent::InstanceTraversed { flow, node, component, .. } => {
                        println!("             {flow} processed {component} at {node}");
                    }
                    SimEvent::FlowCompleted { flow, e2e_delay, time, .. } => {
                        println!("[{time:7.2} ms] {flow} completed, e2e {e2e_delay:.2} ms");
                    }
                    SimEvent::FlowDropped { flow, reason, time, .. } => {
                        println!("[{time:7.2} ms] {flow} dropped ({reason})");
                    }
                    _ => continue,
                }
                printed += 1;
            }
        }
        use dosco::simnet::Coordinator;
        let Some(dp) = sim.next_decision() else { break };
        let action = gcasp.decide(&sim, &dp);
        sim.apply(action);
    }

    let m = sim.metrics();
    println!(
        "\nepisode done: {} arrived, {} completed, {} dropped, success ratio {:.3}",
        m.arrived,
        m.completed,
        m.dropped_total(),
        m.success_ratio()
    );
    println!(
        "instances started: {}, stopped after idling: {}",
        m.instances_started, m.instances_stopped
    );
}
