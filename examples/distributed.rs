//! Multi-process actor–learner training over real TCP: this one binary
//! is all three processes.
//!
//! ```text
//! cargo run --release --example distributed
//! ```
//!
//! Run plainly, it is the **orchestrator**: it trains an in-process
//! baseline, then re-spawns itself twice — once with
//! `DOSCO_NET_ROLE=learner` (binds an ephemeral loopback port, accepts
//! the actor, runs the learner loop) and once with
//! `DOSCO_NET_ROLE=actor` (dials the learner, collects rollouts, ships
//! `ExperienceBatch` frames, receives policy replies) — and verifies the
//! two-process sync run reproduced the in-process baseline **bit for
//! bit**: same `TrainStats`, same final weights.
//!
//! The role entrypoints read the standard `DOSCO_NET_*` environment
//! contract ([`dosco::net::NetConfig`]): `DOSCO_NET_ROLE`,
//! `DOSCO_NET_ADDR`, and optionally `DOSCO_NET_RETRIES` /
//! `DOSCO_NET_TIMEOUT_MS` / `DOSCO_NET_CAPACITY` for the dial policy —
//! exactly what a real deployment would set per container.

use dosco::core::{CoordEnv, RewardConfig};
use dosco::net::{NetConfig, Role};
use dosco::rl::a2c::{A2c, A2cConfig};
use dosco::rl::Env;
use dosco::runtime::{train, LearnerServer, RuntimeConfig};
use dosco::simnet::ScenarioConfig;
use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};

const TOTAL_STEPS: usize = 400;
const SEED: u64 = 7;

fn scenario() -> ScenarioConfig {
    ScenarioConfig::paper_base(2).with_horizon(150.0)
}

fn envs() -> Vec<Box<dyn Env>> {
    let scenario = scenario();
    (0..2)
        .map(|i| {
            Box::new(CoordEnv::new(
                scenario.clone(),
                RewardConfig::default(),
                3_000 + i,
                None,
            )) as Box<dyn Env>
        })
        .collect()
}

fn agent() -> A2c {
    let degree = scenario().topology.network_degree();
    A2c::new(
        4 * degree + 4,
        degree + 1,
        A2cConfig {
            n_steps: 8,
            hidden: [16, 16],
            ..A2cConfig::default()
        },
        SEED,
    )
}

/// FNV-1a over the exact bit patterns of the weights: any single-bit
/// divergence between deployments changes this.
fn weight_fingerprint(agent: &A2c) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in agent
        .actor()
        .flat_params()
        .iter()
        .chain(agent.critic().flat_params().iter())
    {
        for b in w.to_bits().to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// `DOSCO_NET_ROLE=learner`: bind, announce the resolved port on stdout,
/// train, report the outcome.
fn run_learner() {
    let net = NetConfig::from_env().expect("valid DOSCO_NET_* environment");
    let addr = net.addr.as_deref().unwrap_or("127.0.0.1:0");
    let server = LearnerServer::bind(addr).expect("bind learner");
    // The orchestrator reads this line to learn the ephemeral port.
    println!("ADDR {}", server.local_addr());
    std::io::stdout().flush().expect("announce address");

    let mut agent = agent();
    let outcome = server
        .run(&mut agent, TOTAL_STEPS, &RuntimeConfig::sync(), None)
        .expect("learner run");
    println!(
        "RESULT steps={} updates={} tail={:.6} weights={:#018x}",
        outcome.stats.total_steps,
        outcome.stats.mean_rewards.len(),
        outcome.stats.tail_mean(10),
        weight_fingerprint(&agent),
    );
}

/// `DOSCO_NET_ROLE=actor`: dial the learner and collect until it closes
/// the control stream.
fn run_actor() {
    let net = NetConfig::from_env().expect("valid DOSCO_NET_* environment");
    let addr = net.require_addr().expect("actor needs DOSCO_NET_ADDR");
    let sent = dosco::runtime::run_actor(&mut envs(), addr, &net).expect("actor run");
    println!("actor: shipped {sent} batches");
}

fn orchestrate() {
    println!("== in-process baseline: sync A2C for {TOTAL_STEPS} transitions ==");
    let mut baseline_agent = agent();
    let baseline = train(
        &mut baseline_agent,
        &mut envs(),
        TOTAL_STEPS,
        &RuntimeConfig::sync(),
    );
    let baseline_fp = weight_fingerprint(&baseline_agent);
    println!(
        "baseline: {} steps, {} updates, weights {baseline_fp:#018x}",
        baseline.stats.total_steps,
        baseline.stats.mean_rewards.len()
    );

    println!("== spawning learner + actor as separate OS processes ==");
    let exe = std::env::current_exe().expect("own executable path");
    let mut learner = Command::new(&exe)
        .env("DOSCO_NET_ROLE", Role::Learner.name())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn learner process");
    let mut learner_out = BufReader::new(learner.stdout.take().expect("learner stdout"));

    let mut addr_line = String::new();
    learner_out
        .read_line(&mut addr_line)
        .expect("read learner address");
    let addr = addr_line
        .strip_prefix("ADDR ")
        .expect("learner announces ADDR first")
        .trim()
        .to_string();
    println!("learner is listening on {addr}");

    let actor = Command::new(&exe)
        .env("DOSCO_NET_ROLE", Role::Actor.name())
        .env("DOSCO_NET_ADDR", &addr)
        .output()
        .expect("run actor process");
    assert!(actor.status.success(), "actor process failed");
    print!("{}", String::from_utf8_lossy(&actor.stdout));

    let mut result_line = String::new();
    learner_out
        .read_line(&mut result_line)
        .expect("read learner result");
    assert!(
        learner.wait().expect("join learner process").success(),
        "learner process failed"
    );
    println!("{}", result_line.trim());

    // Bit-identity across the process boundary: the learner's reported
    // steps/updates and weight fingerprint must equal the baseline's.
    let expected = format!(
        "RESULT steps={} updates={} tail={:.6} weights={:#018x}",
        baseline.stats.total_steps,
        baseline.stats.mean_rewards.len(),
        baseline.stats.tail_mean(10),
        baseline_fp,
    );
    assert_eq!(
        result_line.trim(),
        expected,
        "two-process run diverged from the in-process baseline"
    );
    println!("== OK: 2-process sync training is bit-identical to in-process ==");
}

fn main() {
    match std::env::var("DOSCO_NET_ROLE").ok().as_deref() {
        Some("learner") => run_learner(),
        Some("actor") => run_actor(),
        Some(other) => panic!("unsupported DOSCO_NET_ROLE {other:?} for this example"),
        None => orchestrate(),
    }
}
