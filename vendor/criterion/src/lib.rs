//! Offline in-repo stand-in for the `criterion` bench API this workspace
//! uses. Each benchmark estimates its per-iteration time (warm-up to size
//! the batch, then `sample_size` timed batches) and prints the median with
//! min/max spread in criterion-like text form. No statistics beyond that,
//! no HTML reports, no baselines.
#![allow(clippy::all)] // vendored stand-in: keep diff-from-upstream minimal


use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies a benchmark within a group (mirrors `criterion::BenchmarkId`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// How per-iteration inputs are batched in `iter_batched` (subset).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small inputs: many per batch in upstream criterion; here inputs are
    /// always prepared one call ahead of each timed routine.
    SmallInput,
    /// Large inputs: one per batch.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Measures a single benchmark routine.
pub struct Bencher<'a> {
    config: &'a Config,
    /// Measured median, filled by an `iter*` call.
    result: Option<Sample>,
}

#[derive(Clone, Copy)]
struct Sample {
    median: Duration,
    min: Duration,
    max: Duration,
    iters_per_sample: u64,
}

#[derive(Clone, Copy)]
struct Config {
    sample_size: usize,
    /// Target wall time per sample batch.
    sample_target: Duration,
    warm_up: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 20,
            sample_target: Duration::from_millis(10),
            warm_up: Duration::from_millis(50),
        }
    }
}

impl Bencher<'_> {
    /// Times `routine`, called in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate a batch size that runs ~sample_target.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.config.warm_up.as_nanos() as u64 / warm_iters.max(1);
        let iters = (self.config.sample_target.as_nanos() as u64 / per_iter.max(1)).clamp(1, 1 << 20);

        let mut samples = Vec::with_capacity(self.config.sample_size);
        for _ in 0..self.config.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(t.elapsed() / iters as u32);
        }
        self.record(samples, iters);
    }

    /// Times `routine` on inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm up.
        let warm_start = Instant::now();
        let mut timed = Duration::ZERO;
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            timed += t.elapsed();
            warm_iters += 1;
        }
        let per_iter = (timed.as_nanos() as u64 / warm_iters.max(1)).max(1);
        let iters = (self.config.sample_target.as_nanos() as u64 / per_iter).clamp(1, 1 << 20);

        let mut samples = Vec::with_capacity(self.config.sample_size);
        for _ in 0..self.config.sample_size {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                total += t.elapsed();
            }
            samples.push(total / iters as u32);
        }
        self.record(samples, iters);
    }

    /// Like `iter_batched`, but the routine takes the input by reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.iter_batched(&mut setup, |mut input| routine(&mut input), size);
    }

    fn record(&mut self, mut samples: Vec<Duration>, iters: u64) {
        samples.sort_unstable();
        self.result = Some(Sample {
            median: samples[samples.len() / 2],
            min: samples[0],
            max: samples[samples.len() - 1],
            iters_per_sample: iters,
        });
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn run_one(name: &str, config: &Config, f: &mut dyn FnMut(&mut Bencher<'_>)) {
    let mut b = Bencher {
        config,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some(s) => println!(
            "{name:<60} time: [{} {} {}]  ({} iters/sample, {} samples)",
            fmt_duration(s.min),
            fmt_duration(s.median),
            fmt_duration(s.max),
            s.iters_per_sample,
            config.sample_size,
        ),
        None => println!("{name:<60} (no measurement recorded)"),
    }
}

/// The benchmark driver (mirrors `criterion::Criterion`).
pub struct Criterion {
    config: Config,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            config: Config::default(),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up time per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up = d.max(Duration::from_millis(1));
        self
    }

    /// Sets the target measurement time per sample batch.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.sample_target = (d / self.config.sample_size as u32).max(Duration::from_millis(1));
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &self.config, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config,
            _parent: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, &self.config, &mut f);
        self
    }

    /// Runs a benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, &self.config, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op beyond upstream API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions (both upstream forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_prints() {
        let mut c = Criterion::default().sample_size(3);
        c.config.warm_up = Duration::from_millis(2);
        c.config.sample_target = Duration::from_millis(1);
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn groups_and_batched() {
        let mut c = Criterion::default().sample_size(2);
        c.config.warm_up = Duration::from_millis(2);
        c.config.sample_target = Duration::from_millis(1);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter("x"), &3u32, |b, &x| {
            b.iter_batched(|| vec![x; 8], |v| v.iter().sum::<u32>(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("abi").to_string(), "abi");
    }
}
