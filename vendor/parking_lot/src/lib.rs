//! Offline in-repo stand-in for the `parking_lot` sync primitives this
//! workspace uses: `Mutex`, `RwLock`, `Condvar`, and `Once`, backed by
//! `std::sync` with parking_lot's poison-free API (no `Result` on
//! `lock()`/`read()`/`write()`; a poisoned std lock is transparently
//! recovered, matching parking_lot's panic-survival semantics).
#![allow(clippy::all)] // vendored stand-in: keep diff-from-upstream minimal


use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// Poison-free mutex mirroring `parking_lot::Mutex`.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
///
/// Holds the inner std guard in an `Option` so [`Condvar::wait`] can take
/// ownership across the wait (std's `wait` consumes the guard) while
/// exposing parking_lot's `&mut guard` signature.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during condvar wait")
    }
}

/// Condition variable mirroring `parking_lot::Condvar`.
pub struct Condvar {
    inner: std::sync::Condvar,
}

/// Result of a timed wait; mirrors `parking_lot::WaitTimeoutResult`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified. Spurious wakeups are possible, as with any
    /// condvar — callers must re-check their predicate.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard already taken");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard already taken");
        let (g, r) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult(r.timed_out())
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Poison-free reader-writer lock mirroring `parking_lot::RwLock`.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// One-time initialization mirroring `parking_lot::Once`.
pub struct Once {
    inner: std::sync::Once,
}

impl Once {
    /// Creates a new `Once`.
    pub const fn new() -> Self {
        Once {
            inner: std::sync::Once::new(),
        }
    }

    /// Runs `f` exactly once across all callers.
    pub fn call_once<F: FnOnce()>(&self, f: F) {
        self.inner.call_once(f);
    }
}

impl Default for Once {
    fn default() -> Self {
        Once::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            *p2.0.lock() = true;
            p2.1.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        assert!(*ready);
        h.join().unwrap();
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }
}
