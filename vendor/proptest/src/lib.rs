//! Offline in-repo stand-in for the `proptest` API subset this workspace
//! uses: the `proptest!` macro, range/`Just`/`prop_oneof!`/collection
//! strategies, `prop_assert*` / `prop_assume!`, and `ProptestConfig`.
//!
//! Generation is deterministic: case `i` of test `name` derives its RNG
//! seed from `hash(name) ^ i`, so failures reproduce across runs. There is
//! no shrinking — the failing inputs are printed instead.
#![allow(clippy::all)] // vendored stand-in: keep diff-from-upstream minimal


pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of one type. Object safe; no shrinking.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Draws one value from the strategy.
        fn gen_value(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f` (upstream `Strategy::prop_map`).
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn gen_value(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut StdRng) -> T {
            (**self).gen_value(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn gen_value(&self, rng: &mut StdRng) -> S::Value {
            (**self).gen_value(rng)
        }
    }

    /// Boxes a strategy (used by `prop_oneof!`).
    pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// Uniform choice among boxed strategies (backs `prop_oneof!`).
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// Builds a union strategy over `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut StdRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].gen_value(rng)
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy for `Vec`s with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.min == self.size.max {
                self.size.min
            } else {
                rng.gen_range(self.size.min..=self.size.max)
            };
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the test fails.
        Fail(String),
        /// A `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection with a message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Execution parameters for a `proptest!` block.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
        /// Maximum `prop_assume!` rejections before giving up.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_global_rejects: 4096,
            }
        }
    }

    fn seed_for(name: &str, case: u64) -> u64 {
        // FNV-1a over the test name, mixed with the case index: stable
        // across runs and platforms so failures reproduce.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }

    /// Runs `f` for `config.cases` successful cases, panicking on the first
    /// failure. `f` draws its inputs from the provided RNG.
    ///
    /// # Panics
    ///
    /// Panics when a case fails or when too many cases are rejected.
    pub fn run_cases<F>(config: ProptestConfig, name: &str, mut f: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let mut case = 0u64;
        while passed < config.cases {
            let seed = seed_for(name, case);
            let mut rng = StdRng::seed_from_u64(seed);
            case += 1;
            match f(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > config.max_global_rejects {
                        panic!(
                            "proptest `{name}`: too many prop_assume! rejections \
                             ({rejected}) after {passed} passing cases"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest `{name}` failed at case {} (seed {seed:#x}): {msg}",
                        case - 1
                    );
                }
            }
        }
    }
}

/// Items re-exported under `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// Namespace mirror so `prop::collection::vec(...)` resolves.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `fn name(arg in strategy, ...) { body }` items carrying `#[test]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal: expands each test item in a `proptest!` block.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_cases(__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::gen_value(&($strat), __rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside `proptest!`, failing the case (not the whole
/// process) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(
                    ::std::format!("assertion failed: {}", stringify!($cond)),
                ),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Asserts inequality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l != r, $($fmt)+);
    }};
}

/// Skips the current case when its generated inputs are unsuitable.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(stringify!($cond)),
            );
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(
            ::std::vec![$($crate::strategy::boxed($strat)),+]
        )
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let v = (3usize..10).gen_value(&mut rng);
            assert!((3..10).contains(&v));
            let f = (-2.0f32..2.0).gen_value(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let i = (1usize..=5).gen_value(&mut rng);
            assert!((1..=5).contains(&i));
        }
    }

    #[test]
    fn vec_strategy_len() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let s = prop::collection::vec(0u64..10, 6);
        assert_eq!(s.gen_value(&mut rng).len(), 6);
        let s = prop::collection::vec(0u64..10, 2usize..5);
        for _ in 0..50 {
            let len = s.gen_value(&mut rng).len();
            assert!((2..5).contains(&len));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.gen_value(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro wires strategies to arguments and runs bodies.
        #[test]
        fn macro_end_to_end(x in 0u32..100, v in prop::collection::vec(-1.0f64..1.0, 3)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), 3);
            prop_assert_ne!(v.len(), 4);
            prop_assume!(x != u32::MAX); // never rejects
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::test_runner::run_cases;
        let collect = || {
            let mut vals = Vec::new();
            run_cases(ProptestConfig::with_cases(10), "det", |rng| {
                use crate::strategy::Strategy;
                vals.push((0u64..1_000_000).gen_value(rng));
                Ok(())
            });
            vals
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    #[should_panic(expected = "proptest `always_fails` failed")]
    fn failures_panic_with_context() {
        crate::test_runner::run_cases(
            ProptestConfig::with_cases(5),
            "always_fails",
            |_rng| -> Result<(), TestCaseError> {
                prop_assert!(false);
                Ok(())
            },
        );
    }
}
