//! Offline stand-in for the `serde` API subset used by this workspace.
//!
//! The build environment has no crates.io access, so the real `serde` (and
//! its `syn`/`quote` proc-macro stack) cannot be fetched. This crate keeps
//! the workspace's external contract — `use serde::{Serialize, Deserialize}`
//! plus `#[derive(Serialize, Deserialize)]` and `serde_json::{to_string,
//! from_str}` — while replacing serde's visitor-based data model with a
//! simple tree [`Value`]. The derive macros (re-exported from the sibling
//! `serde_derive` crate) generate [`Serialize::to_value`] /
//! [`Deserialize::from_value`] impls against this model, and the sibling
//! `serde_json` crate renders [`Value`] to and from JSON text.
//!
//! Only the shapes this workspace uses are supported: named-field structs,
//! tuple structs, enums with unit/tuple/struct variants, and the container
//! and primitive impls below. No `#[serde(...)]` attributes.
#![allow(clippy::all)] // vendored stand-in: keep diff-from-upstream minimal


#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// The serialized data model: a JSON-shaped tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Negative integers (kept exact, unlike a lossy `f64`).
    Int(i64),
    /// Non-negative integers (kept exact).
    UInt(u64),
    /// Floating-point numbers.
    Float(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Array(Vec<Value>),
    /// Objects as ordered key-value pairs (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value widened to `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(v) => Some(v as f64),
            Value::UInt(v) => Some(v as f64),
            Value::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(v) => Some(v),
            Value::Int(v) if v >= 0 => Some(v as u64),
            Value::Float(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    /// Numeric value as `i64`, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(v) => Some(v),
            Value::UInt(v) if v <= i64::MAX as u64 => Some(v as i64),
            Value::Float(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can serialize themselves into the [`Value`] model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from the [`Value`] model.
pub trait Deserialize: Sized {
    /// Parses `self` out of a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree does not match the expected shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Derive-support helper: extracts and deserializes object field `key`.
///
/// # Errors
///
/// Returns [`Error`] if the field is missing or has the wrong shape.
pub fn field<T: Deserialize>(
    obj: &[(String, Value)],
    key: &str,
    ty: &str,
) -> Result<T, Error> {
    let v = obj
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::new(format!("missing field `{key}` for {ty}")))?;
    T::from_value(v).map_err(|e| Error::new(format!("field `{key}` of {ty}: {e}")))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v
                    .as_u64()
                    .ok_or_else(|| Error::new(concat!("expected unsigned integer for ", stringify!($t))))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::new(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v
                    .as_i64()
                    .ok_or_else(|| Error::new(concat!("expected integer for ", stringify!($t))))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::new(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_f64() {
            Some(x) => Ok(x as f32),
            // serde_json renders non-finite floats as null.
            None if *v == Value::Null => Ok(f32::NAN),
            None => Err(Error::new("expected number for f32")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_f64() {
            Some(x) => Ok(x),
            None if *v == Value::Null => Ok(f64::NAN),
            None => Err(Error::new("expected number for f64")),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::new("expected boolean"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::new("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::new("expected string for char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::new("expected single-character string for char")),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::new(format!("expected array of length {N}, got {n}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::new("expected tuple array"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::new(format!(
                        "expected tuple of length {expected}, got {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

fn map_key_to_string<K: Serialize>(key: &K) -> Result<String, Error> {
    match key.to_value() {
        Value::Str(s) => Ok(s),
        Value::UInt(v) => Ok(v.to_string()),
        Value::Int(v) => Ok(v.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        other => Err(Error::new(format!(
            "map keys must serialize to strings or integers, got {other:?}"
        ))),
    }
}

fn map_key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    // Try the string form first (unit enums, strings), then numeric forms.
    if let Ok(k) = K::from_value(&Value::Str(key.to_owned())) {
        return Ok(k);
    }
    if let Ok(v) = key.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::UInt(v)) {
            return Ok(k);
        }
    }
    if let Ok(v) = key.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::Int(v)) {
            return Ok(k);
        }
    }
    Err(Error::new(format!("cannot deserialize map key `{key}`")))
}

impl<K: Serialize, V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (map_key_to_string(k).expect("unsupported map key"), v.to_value()))
            .collect();
        // Sort for a deterministic byte representation.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::new("expected object for map"))?
            .iter()
            .map(|(k, val)| Ok((map_key_from_string(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (map_key_to_string(k).expect("unsupported map key"), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::new("expected object for map"))?
            .iter()
            .map(|(k, val)| Ok((map_key_from_string(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u64> = None;
        assert_eq!(Option::<u64>::from_value(&o.to_value()).unwrap(), None);
        let arr = [4usize, 5];
        assert_eq!(<[usize; 2]>::from_value(&arr.to_value()).unwrap(), arr);
        let t = (3u64, 1.25f32);
        assert_eq!(<(u64, f32)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn maps_round_trip_and_sort() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u64);
        m.insert("a".to_string(), 1u64);
        let v = m.to_value();
        let obj = v.as_object().unwrap();
        assert_eq!(obj[0].0, "a");
        assert_eq!(HashMap::<String, u64>::from_value(&v).unwrap(), m);
    }

    #[test]
    fn wrong_shape_errors() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(Vec::<u64>::from_value(&Value::Bool(true)).is_err());
        assert!(<[u8; 2]>::from_value(&vec![1u8].to_value()).is_err());
    }
}
