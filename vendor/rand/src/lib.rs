//! Offline stand-in for the `rand` 0.8 API subset used by this workspace.
//!
//! The build environment has no network access and no crates.io mirror, so
//! the real `rand` crate cannot be fetched. This crate re-implements the
//! small surface dosco relies on — [`RngCore`], [`Rng`], [`SeedableRng`],
//! and [`rngs::StdRng`] — with a deterministic xoshiro256++ generator.
//!
//! Streams are *not* bit-compatible with the upstream `rand::rngs::StdRng`
//! (ChaCha12); every consumer in this workspace only requires determinism
//! for a fixed seed, which this crate guarantees across platforms.
#![allow(clippy::all)] // vendored stand-in: keep diff-from-upstream minimal


#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A seedable generator.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed by expanding it with
    /// SplitMix64 (same strategy as upstream `rand_core`).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be drawn uniformly from `[0, 1)` (floats) or the full
/// value range (integers, booleans) by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1) with full f32 mantissa coverage.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Types that support uniform sampling from a half-open or inclusive range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[low, high)` (`inclusive = false`) or
    /// `[low, high]` (`inclusive = true`).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool)
        -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = if inclusive {
                    (high as i128) - (low as i128) + 1
                } else {
                    (high as i128) - (low as i128)
                };
                assert!(span > 0, "empty sampling range");
                let span = span as u128;
                // Rejection-free multiply-shift reduction; the modulo bias
                // over a 64-bit draw is negligible for the small spans used
                // in this workspace, and the result is deterministic.
                let draw = rng.next_u64() as u128;
                let offset = (draw * span) >> 64;
                ((low as i128) + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(low < high || (_inclusive && low <= high), "empty sampling range");
                let u = <$t as Standard>::draw(rng);
                low + (high - low) * u
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_range(rng, start, end, true)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` (floats uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from `range` (`low..high` or `low..=high`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not stream-compatible with upstream `rand`'s ChaCha12-based `StdRng`;
    /// deterministic for a fixed seed, which is all dosco requires.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw xoshiro256++ state words, for explicit serialization
        /// (e.g. circulating a generator between processes). The stream
        /// continues exactly where it left off after
        /// [`StdRng::from_state`].
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Reconstructs a generator from [`StdRng::state`] words. An
        /// all-zero state (a xoshiro fixed point, never produced by
        /// `from_seed`) is nudged the same way `from_seed` does.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                return <StdRng as SeedableRng>::from_seed([0u8; 32]);
            }
            StdRng { s }
        }

        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }

        #[inline]
        fn step(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn state_round_trip_continues_the_stream() {
        use super::SeedableRng;
        let mut a = StdRng::seed_from_u64(7);
        for _ in 0..13 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // The zero state is nudged identically to an all-zero seed.
        let mut z = StdRng::from_state([0, 0, 0, 0]);
        let mut seeded = <StdRng as SeedableRng>::from_seed([0u8; 32]);
        assert_eq!(z.next_u64(), seeded.next_u64());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&w));
            let z = rng.gen_range(5u64..=6);
            assert!((5..=6).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_full_inclusive_span() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn dyn_rng_core_supports_gen() {
        let mut rng = StdRng::seed_from_u64(3);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let u: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn uniform_mean_close_to_half() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "{mean}");
    }
}
