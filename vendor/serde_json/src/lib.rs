//! Offline in-repo stand-in for the `serde_json` API subset this workspace
//! uses: `to_string`, `to_string_pretty`, `from_str`, and `Error`.
//!
//! Serialization goes through the simplified [`serde::Value`] data model.
//! Floats are printed with Rust's shortest round-trip `Display`, so every
//! finite `f32`/`f64` survives a JSON round trip bit-exactly; NaN and
//! infinities serialize as `null` (matching upstream serde_json).
#![allow(clippy::all)] // vendored stand-in: keep diff-from-upstream minimal


pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serializes a value to a compact JSON string.
///
/// # Errors
///
/// Never fails for the in-memory data model; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to a pretty-printed JSON string (2-space indent).
///
/// # Errors
///
/// Never fails for the in-memory data model.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// Returns an error for malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { src: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::from_value(&v)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            out.push_str(&i.to_string());
        }
        Value::UInt(u) => {
            out.push_str(&u.to_string());
        }
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = f.to_string();
    out.push_str(&s);
    // `Display` prints integral floats without a fraction ("3"); keep the
    // value unambiguously a float so round trips preserve the JSON type.
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.src.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.src[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid keyword"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid keyword"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid keyword"))
                }
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes in one go.
            while let Some(&b) = self.src.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.src[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?;
                s.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{08}'),
                        Some(b'f') => s.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            s.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.src.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.src[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            let f: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
            Ok(Value::Float(f))
        } else if text.starts_with('-') {
            let i: i64 = text.parse().map_err(|_| self.err("invalid number"))?;
            Ok(Value::Int(i))
        } else {
            let u: u64 = text.parse().map_err(|_| self.err("invalid number"))?;
            Ok(Value::UInt(u))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f32).unwrap(), "2.0");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<bool>(" true ").unwrap(), true);
    }

    #[test]
    fn floats_round_trip_bit_exact() {
        for &f in &[0.1f32, 1e-20, 3.4e38, -7.25, f32::MIN_POSITIVE] {
            let json = to_string(&f).unwrap();
            let back: f32 = from_str(&json).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "{f} via {json}");
        }
        let nan_json = to_string(&f32::NAN).unwrap();
        assert_eq!(nan_json, "null");
        assert!(from_str::<f32>("null").unwrap().is_nan());
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd\te\u{1}";
        let json = to_string(s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
        let uni: String = from_str("\"\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(uni, "é😀");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![vec![1.0f32, 2.0], vec![3.0, 4.0]];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1.0,2.0],[3.0,4.0]]");
        let back: Vec<Vec<f32>> = from_str(&json).unwrap();
        assert_eq!(back, v);

        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u32);
        m.insert("a".to_string(), 1u32);
        let json = to_string(&m).unwrap();
        assert_eq!(json, "{\"a\":1,\"b\":2}");
        let back: HashMap<String, u32> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn option_round_trip() {
        let v: Vec<Option<u32>> = vec![Some(1), None];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,null]");
        let back: Vec<Option<u32>> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_print_indents() {
        let v = vec![1u32, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("{not json").is_err());
        assert!(from_str::<u32>("12 34").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
    }
}
