//! Offline `#[derive(Serialize, Deserialize)]` macros for the in-repo serde
//! stand-in.
//!
//! The real `serde_derive` (and its `syn`/`quote` dependencies) cannot be
//! fetched in this offline build environment. These macros hand-parse the
//! item token stream — supporting exactly the shapes this workspace uses:
//! non-generic named-field structs, tuple structs, and enums with unit,
//! tuple, and struct variants, with no `#[serde(...)]` attributes — and
//! emit `serde::Serialize::to_value` / `serde::Deserialize::from_value`
//! impls against the simplified [`Value`] data model.
#![allow(clippy::all)] // vendored stand-in: keep diff-from-upstream minimal


use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of a derive input item.
enum Item {
    /// `struct Name { a: T, b: U }`
    Struct { name: String, fields: Vec<String> },
    /// `struct Name(T, U);`
    TupleStruct { name: String, arity: usize },
    /// `enum Name { ... }`
    Enum { name: String, variants: Vec<Variant> },
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

/// Derives `serde::Serialize` via the simplified `Value` model.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(::std::vec![{}])\n}}\n}}",
                entries.join(", ")
            )
        }
        Item::TupleStruct { name, arity } => {
            if *arity == 1 {
                // Newtype structs serialize transparently, like upstream serde.
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n}}\n}}"
                )
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Value::Array(::std::vec![{}])\n}}\n}}",
                    items.join(", ")
                )
            }
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\"))"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{vn}\"), ::serde::Serialize::to_value(f0))])"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let vals: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Array(::std::vec![{}]))])",
                                binds.join(", "),
                                vals.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Object(::std::vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{ {} }}\n}}\n}}",
                arms.join(",\n")
            )
        }
    };
    code.parse().expect("serde_derive generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` via the simplified `Value` model.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(obj, \"{f}\", \"{name}\")?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 let obj = v.as_object().ok_or_else(|| ::serde::Error::new(\"expected object for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})\n}}\n}}",
                inits.join(", ")
            )
        }
        Item::TupleStruct { name, arity } => {
            if *arity == 1 {
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))\n}}\n}}"
                )
            } else {
                let inits: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     let items = v.as_array().ok_or_else(|| ::serde::Error::new(\"expected array for {name}\"))?;\n\
                     if items.len() != {arity} {{\n\
                     return ::std::result::Result::Err(::serde::Error::new(\"wrong tuple arity for {name}\"));\n}}\n\
                     ::std::result::Result::Ok({name}({}))\n}}\n}}",
                    inits.join(", ")
                )
            }
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(val)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                 let items = val.as_array().ok_or_else(|| \
                                 ::serde::Error::new(\"expected array for {name}::{vn}\"))?;\n\
                                 if items.len() != {n} {{\n\
                                 return ::std::result::Result::Err(::serde::Error::new(\
                                 \"wrong arity for {name}::{vn}\"));\n}}\n\
                                 ::std::result::Result::Ok({name}::{vn}({}))\n}},",
                                inits.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("{f}: ::serde::field(inner, \"{f}\", \"{name}::{vn}\")?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                 let inner = val.as_object().ok_or_else(|| \
                                 ::serde::Error::new(\"expected object for {name}::{vn}\"))?;\n\
                                 ::std::result::Result::Ok({name}::{vn} {{ {} }})\n}},",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 if let ::std::option::Option::Some(s) = v.as_str() {{\n\
                 return match s {{\n{}\n\
                 _ => ::std::result::Result::Err(::serde::Error::new(\
                 ::std::format!(\"unknown variant `{{s}}` of {name}\"))),\n}};\n}}\n\
                 let obj = v.as_object().ok_or_else(|| \
                 ::serde::Error::new(\"expected variant for {name}\"))?;\n\
                 if obj.len() != 1 {{\n\
                 return ::std::result::Result::Err(::serde::Error::new(\
                 \"expected single-key variant object for {name}\"));\n}}\n\
                 let (tag, val) = (&obj[0].0, &obj[0].1);\n\
                 let _ = val;\n\
                 match tag.as_str() {{\n{}\n\
                 _ => ::std::result::Result::Err(::serde::Error::new(\
                 ::std::format!(\"unknown variant `{{tag}}` of {name}\"))),\n}}\n}}\n}}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    };
    code.parse().expect("serde_derive generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive: generic types are not supported by the offline stand-in");
        }
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            other => panic!("serde_derive: unsupported struct body: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde_derive: unsupported enum body: {other:?}"),
        },
        other => panic!("serde_derive: unsupported item kind `{other}`"),
    }
}

/// Skips leading `#[...]` attributes (including doc comments) and a
/// `pub` / `pub(...)` visibility qualifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Bracket {
                        *i += 1;
                        continue;
                    }
                }
                panic!("serde_derive: malformed attribute");
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parses `a: T, b: U, ...` field lists, returning the field names.
/// Tracks angle-bracket depth so commas inside `HashMap<K, V>` and friends
/// do not split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, found {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{field}`, found {other}"),
        }
        // Skip the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(field);
    }
    fields
}

/// Counts tuple-struct fields: top-level comma-separated segments.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_tokens_since_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if saw_tokens_since_comma {
                    count += 1;
                }
                saw_tokens_since_comma = false;
                continue;
            }
            _ => {}
        }
        saw_tokens_since_comma = true;
    }
    if !saw_tokens_since_comma {
        count -= 1; // trailing comma
    }
    count
}

/// Parses enum variants: `Name`, `Name(T, ...)`, or `Name { a: T, ... }`.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found {other}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present, then the
        // separating comma.
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}
