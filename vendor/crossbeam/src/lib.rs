//! Offline in-repo stand-in for the `crossbeam` APIs this workspace uses,
//! implemented over the standard library. Provided subsets:
//!
//! - `crossbeam::thread::{scope, Scope, ScopedJoinHandle}` over
//!   `std::thread::scope` (stable since Rust 1.63) — used by
//!   `dosco_rl::train_multi_seed` and the parallel compute layer.
//! - `crossbeam::channel::{bounded, Sender, Receiver}` — a bounded MPSC
//!   channel with blocking send/recv and disconnect semantics, used by the
//!   `dosco_runtime` actor–learner transport.
#![allow(clippy::all)] // vendored stand-in: keep diff-from-upstream minimal


pub mod thread {
    use std::any::Any;

    /// Mirrors `crossbeam::thread::Scope`: a handle spawned closures receive
    /// so they can spawn further scoped threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Mirrors `crossbeam::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        ///
        /// # Errors
        ///
        /// Returns the boxed panic payload if the thread panicked.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. Unlike `std`, the closure receives the
        /// scope itself (crossbeam's signature), enabling nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || f(&Scope { inner: inner_scope })),
            }
        }
    }

    /// Creates a scope for spawning threads that may borrow from the
    /// enclosing stack frame. All spawned threads are joined before the
    /// call returns.
    ///
    /// # Errors
    ///
    /// Upstream crossbeam reports panics of un-joined child threads here;
    /// `std::thread::scope` instead resumes the panic directly, so this
    /// stand-in always returns `Ok` (callers' `.expect()` never fires
    /// spuriously).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod channel {
    //! Bounded MPSC channel (blocking `Mutex` + `Condvar` implementation of
    //! the `crossbeam-channel` subset this workspace uses).
    //!
    //! Semantics mirrored from upstream:
    //! - `send` blocks while the queue holds `cap` messages, and fails only
    //!   when the receiver is gone;
    //! - `recv` blocks while the queue is empty, and fails only when it is
    //!   empty *and* every sender is gone (pending messages are always
    //!   drained first);
    //! - `Sender` is `Clone` (multi-producer), `Receiver` is not
    //!   (single-consumer subset).

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    /// Error of [`Sender::send`]: the receiver disconnected. Gives the
    /// un-sent message back.
    pub struct SendError<T>(pub T);

    /// Error of [`Sender::try_send`].
    pub enum TrySendError<T> {
        /// The channel is at capacity. Gives the message back.
        Full(T),
        /// The receiver disconnected. Gives the message back.
        Disconnected(T),
    }

    /// Error of [`Receiver::recv`]: the channel is empty and all senders
    /// disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error of [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders disconnected.
        Disconnected,
    }

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    struct State<T> {
        queue: VecDeque<T>,
        /// Live `Sender` clones; 0 ⇒ `recv` fails once the queue drains.
        senders: usize,
        /// False once the `Receiver` is dropped; sends fail immediately.
        receiver_alive: bool,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        cap: usize,
    }

    /// The sending half of a bounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates a bounded channel with room for `cap` in-flight messages.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0` (upstream's zero-capacity rendezvous channels
    /// are not part of this stand-in).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap >= 1, "bounded channel capacity must be at least 1");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(cap),
                senders: 1,
                receiver_alive: true,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued (backpressure) or the
        /// receiver disconnects.
        ///
        /// # Errors
        ///
        /// Returns the message if the receiver disconnected.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().expect("channel lock poisoned");
            loop {
                if !st.receiver_alive {
                    return Err(SendError(msg));
                }
                if st.queue.len() < self.shared.cap {
                    st.queue.push_back(msg);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                st = self
                    .shared
                    .not_full
                    .wait(st)
                    .expect("channel lock poisoned");
            }
        }

        /// Enqueues without blocking.
        ///
        /// # Errors
        ///
        /// [`TrySendError::Full`] if at capacity, [`TrySendError::Disconnected`]
        /// if the receiver is gone; both give the message back.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut st = self.shared.state.lock().expect("channel lock poisoned");
            if !st.receiver_alive {
                return Err(TrySendError::Disconnected(msg));
            }
            if st.queue.len() >= self.shared.cap {
                return Err(TrySendError::Full(msg));
            }
            st.queue.push_back(msg);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .expect("channel lock poisoned")
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().expect("channel lock poisoned");
            st.senders -= 1;
            if st.senders == 0 {
                // Wake a blocked `recv` so it can observe the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender disconnects.
        ///
        /// # Errors
        ///
        /// Fails only once the channel is empty *and* sender-less, so all
        /// in-flight messages are drained before the disconnect surfaces.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().expect("channel lock poisoned");
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .shared
                    .not_empty
                    .wait(st)
                    .expect("channel lock poisoned");
            }
        }

        /// Dequeues without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] if nothing is queued yet,
        /// [`TryRecvError::Disconnected`] once empty and sender-less.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().expect("channel lock poisoned");
            match st.queue.pop_front() {
                Some(msg) => {
                    self.shared.not_full.notify_one();
                    Ok(msg)
                }
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .state
                .lock()
                .expect("channel lock poisoned")
                .queue
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().expect("channel lock poisoned");
            st.receiver_alive = false;
            // Wake all blocked senders so they can observe the disconnect.
            self.shared.not_full.notify_all();
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }
}

#[cfg(test)]
mod channel_tests {
    use super::channel::{bounded, TryRecvError, TrySendError};

    #[test]
    fn send_recv_in_fifo_order() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 4);
        for i in 0..4 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert!(rx.is_empty());
    }

    #[test]
    fn try_send_reports_full_and_gives_message_back() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        match tx.try_send(2) {
            Err(TrySendError::Full(v)) => assert_eq!(v, 2),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(2).unwrap();
    }

    #[test]
    fn recv_drains_pending_messages_before_disconnect() {
        let (tx, rx) = bounded(2);
        tx.send(10).unwrap();
        tx.send(20).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(10));
        assert_eq!(rx.try_recv(), Ok(20));
        assert!(rx.recv().is_err());
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_once_receiver_dropped() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
        assert!(matches!(tx.try_send(2), Err(TrySendError::Disconnected(2))));
    }

    #[test]
    fn disconnect_waits_for_all_sender_clones() {
        let (tx, rx) = bounded::<u32>(2);
        let tx2 = tx.clone();
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx2.send(7).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Ok(7));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn blocking_send_applies_backpressure_across_threads() {
        let (tx, rx) = bounded(1);
        std::thread::scope(|s| {
            s.spawn(move || {
                // The second send must block until the main thread drains.
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            for i in 0..100 {
                assert_eq!(rx.recv(), Ok(i));
            }
        });
    }

    #[test]
    fn blocking_recv_wakes_on_disconnect() {
        let (tx, rx) = bounded::<u32>(1);
        std::thread::scope(|s| {
            s.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                drop(tx); // wake the blocked recv below
            });
            assert!(rx.recv().is_err());
        });
    }

    #[test]
    fn multi_producer_messages_all_arrive() {
        let (tx, rx) = bounded(2);
        std::thread::scope(|s| {
            for p in 0..4u32 {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                });
            }
            drop(tx);
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            assert_eq!(got.len(), 200);
            got.sort_unstable();
            got.dedup();
            assert_eq!(got.len(), 200, "no message lost or duplicated");
        });
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn rejects_zero_capacity() {
        let _ = bounded::<u32>(0);
    }
}

#[cfg(test)]
mod tests {
    use super::thread;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_spawns_and_joins() {
        let counter = AtomicUsize::new(0);
        let total: usize = thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let counter = &counter;
                    s.spawn(move |_| {
                        counter.fetch_add(1, Ordering::SeqCst);
                        i * 10
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 60);
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let v: usize = thread::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21usize).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn join_reports_panics() {
        let r = thread::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            h.join()
        })
        .unwrap();
        assert!(r.is_err());
    }
}
