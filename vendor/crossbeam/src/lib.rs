//! Offline in-repo stand-in for the `crossbeam` scoped-thread API this
//! workspace uses, implemented over `std::thread::scope` (stable since
//! Rust 1.63). Only `crossbeam::thread::{scope, Scope, ScopedJoinHandle}`
//! is provided — the subset `dosco_rl::train_multi_seed` and the parallel
//! compute layer rely on.
#![allow(clippy::all)] // vendored stand-in: keep diff-from-upstream minimal


pub mod thread {
    use std::any::Any;

    /// Mirrors `crossbeam::thread::Scope`: a handle spawned closures receive
    /// so they can spawn further scoped threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Mirrors `crossbeam::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        ///
        /// # Errors
        ///
        /// Returns the boxed panic payload if the thread panicked.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. Unlike `std`, the closure receives the
        /// scope itself (crossbeam's signature), enabling nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || f(&Scope { inner: inner_scope })),
            }
        }
    }

    /// Creates a scope for spawning threads that may borrow from the
    /// enclosing stack frame. All spawned threads are joined before the
    /// call returns.
    ///
    /// # Errors
    ///
    /// Upstream crossbeam reports panics of un-joined child threads here;
    /// `std::thread::scope` instead resumes the panic directly, so this
    /// stand-in always returns `Ok` (callers' `.expect()` never fires
    /// spuriously).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_spawns_and_joins() {
        let counter = AtomicUsize::new(0);
        let total: usize = thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let counter = &counter;
                    s.spawn(move |_| {
                        counter.fetch_add(1, Ordering::SeqCst);
                        i * 10
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 60);
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let v: usize = thread::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21usize).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn join_reports_panics() {
        let r = thread::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            h.join()
        })
        .unwrap();
        assert!(r.is_err());
    }
}
