#!/usr/bin/env bash
# Full local gate: release build, tests, lints, and bench compilation.
# Usage: scripts/check.sh   (run from anywhere; cd's to the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== cargo test (actor-learner runtime) =="
cargo test -q -p dosco-runtime

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (runtime crate, deny missing docs) =="
cargo doc --no-deps -p dosco-runtime

echo "== cargo bench (compile only) =="
cargo bench --no-run --workspace

echo "== cargo bench (runtime throughput) =="
cargo bench -p dosco-bench --bench runtime_throughput

echo "All checks passed."
