#!/usr/bin/env bash
# Full local gate: release build, tests, lints, and bench compilation.
# Usage: scripts/check.sh   (run from anywhere; cd's to the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo bench (compile only) =="
cargo bench --no-run --workspace

echo "All checks passed."
