#!/usr/bin/env bash
# Full local gate: release build, tests, lints, and bench compilation.
# Usage: scripts/check.sh   (run from anywhere; cd's to the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== cargo test (actor-learner runtime) =="
cargo test -q -p dosco-runtime

echo "== cargo test (observability layer) =="
cargo test -q -p dosco-obs

echo "== cargo test (nn + serve, DOSCO_SIMD=off: scalar reference kernels) =="
DOSCO_SIMD=off cargo test -q -p dosco-nn -p dosco-serve

echo "== cargo test (nn + serve, DOSCO_SIMD unset: auto SIMD dispatch) =="
cargo test -q -p dosco-nn -p dosco-serve

echo "== cargo test (control plane) =="
cargo test -q -p dosco-ctl

echo "== cargo test (transport layer) =="
cargo test -q -p dosco-net

echo "== net frame codec hardening (proptest round-trip + corruption) =="
cargo test --release -p dosco-net --test frame_props

echo "== runtime loopback-socket equivalence (bit-identical to in-process) =="
cargo test --release -p dosco-runtime --test socket_equivalence

echo "== serve loopback-socket equivalence (local + remote shard planes) =="
cargo test --release -p dosco-serve --test socket_serve

echo "== ctl canary end-to-end (promote/rollback, exact accounting) =="
cargo test --release -p dosco-ctl --test canary_e2e

echo "== ctl ops HTTP surface (live queries, deterministic /metrics) =="
cargo test --release -p dosco-ctl --test ops_http

echo "== serve bit-identity (1 shard == N shards == in-process) =="
cargo test --release -p dosco-serve --test bit_identity

echo "== serve fault injection (SP fallback + hot-swap accounting) =="
cargo test --release -p dosco-serve --test fault_injection

echo "== simcore 100k-flow churn smoke (release, bounded time + flat memory) =="
cargo test --release -p dosco-bench --test churn_smoke -- --include-ignored

echo "== obs disabled-path overhead (release, <1% contract) =="
cargo test --release -p dosco-bench --test obs_overhead -- --include-ignored

echo "== obs trace determinism (byte-identical same-seed runs) =="
cargo test -q --test obs_trace

echo "== chaos: no-churn bit-identity (goldens incl. DOSCO_TRACE hash) =="
cargo test -q --test simcore_goldens
cargo test -q -p dosco-simnet --lib empty_timeline_is_identical_to_plain_new
cargo test -q -p dosco-core --lib empty_churn_schedule_is_identical

echo "== chaos: same-seed churn trace byte-identity =="
cargo test -q --test chaos_trace

echo "== chaos: train-under-churn + pinned-fault resilience e2e =="
cargo test -q --test chaos_e2e

echo "== chaos: substrate churn smoke (release, bounded time + conservation) =="
cargo test --release -p dosco-bench --test chaos_smoke -- --include-ignored

echo "== chaos: ctl /metrics churn surface (drop causes + windowed ratio) =="
cargo test --release -p dosco-ctl --test churn_metrics

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (runtime crate, deny missing docs) =="
cargo doc --no-deps -p dosco-runtime

echo "== cargo bench (compile only) =="
cargo bench --no-run --workspace

echo "== cargo bench (runtime throughput) =="
cargo bench -p dosco-bench --bench runtime_throughput

echo "== cargo bench (serve throughput) =="
cargo bench -p dosco-bench --bench serve_throughput

echo "All checks passed."
