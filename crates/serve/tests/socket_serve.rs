//! Serve-plane socket equivalence: the pinned guarantee of the
//! `dosco_net` tentpole on the serving side. A fabric whose shard
//! mailboxes and response channel are real TCP connections — framed,
//! checksummed, serialized through the binary codec — produces *exactly*
//! the same `Metrics` and decision accounting as the in-process fabric,
//! and so does the true multi-process deployment (a `FrontendServer`
//! plus separately-dialing shard workers).

use dosco_core::policy::PolicyMetadata;
use dosco_core::CoordinationPolicy;
use dosco_net::{NetConfig, SocketLoopback};
use dosco_nn::mlp::{Activation, Mlp};
use dosco_serve::{
    run_remote_shard, serve, serve_with_transport, FaultScript, FrontendServer, ServeConfig,
};
use dosco_simnet::ScenarioConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn policy(degree: usize) -> CoordinationPolicy {
    let mut rng = StdRng::seed_from_u64(11);
    let actor = Mlp::new(&[4 * degree + 4, 24, degree + 1], Activation::Tanh, &mut rng);
    CoordinationPolicy::new(actor, degree, PolicyMetadata::default())
}

fn scenario() -> ScenarioConfig {
    ScenarioConfig::paper_base(2).with_horizon(300.0)
}

/// Greedy serving over loopback TCP is exactly the in-process fabric:
/// every request, flush barrier, and response crossed the wire and not a
/// single decision moved.
#[test]
fn greedy_serving_over_loopback_socket_is_exact() {
    let scenario = scenario();
    let p = policy(scenario.topology.network_degree());
    let seeds = [3u64, 7, 13];
    let cfg = ServeConfig::new(3);

    let in_proc = serve(&p, None, &scenario, &seeds, &cfg);
    let socketed =
        serve_with_transport(&p, None, &scenario, &seeds, &cfg, &SocketLoopback, |_| {});

    assert_eq!(
        in_proc.metrics, socketed.metrics,
        "metrics diverged over TCP"
    );
    assert_eq!(
        in_proc.report, socketed.report,
        "decision accounting diverged over TCP"
    );
    assert!(socketed.report.decisions > 0, "horizon produced no decisions");
}

/// Stochastic serving (per-node RNG streams, sampled actions) holds the
/// same exactness: the request ids, batch order, and draws all survive
/// serialization.
#[test]
fn stochastic_serving_over_loopback_socket_is_exact() {
    let scenario = scenario();
    let p = policy(scenario.topology.network_degree());
    let seeds = [5u64, 17];
    let cfg = ServeConfig::new(2).with_stochastic_seed(7);

    let in_proc = serve(&p, None, &scenario, &seeds, &cfg);
    let socketed =
        serve_with_transport(&p, None, &scenario, &seeds, &cfg, &SocketLoopback, |_| {});

    assert_eq!(in_proc.metrics, socketed.metrics);
    assert_eq!(in_proc.report, socketed.report);
}

/// The full multi-process deployment: a frontend server accepting shard
/// connections, shard workers dialing in and reading their `ShardInit`
/// frame — run here on threads exercising the exact code path a real
/// shard process runs. Greedy and stochastic, both exact.
#[test]
fn remote_shard_deployment_matches_in_process() {
    let scenario = scenario();
    let p = policy(scenario.topology.network_degree());
    let seeds = [3u64, 7, 13];

    for cfg in [
        ServeConfig::new(2),
        ServeConfig::new(2).with_stochastic_seed(9),
    ] {
        let in_proc = serve(&p, None, &scenario, &seeds, &cfg);

        let server = FrontendServer::bind("127.0.0.1:0").expect("bind frontend");
        let addr = server.local_addr();
        let shards: Vec<_> = (0..2)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    run_remote_shard(&addr, &NetConfig::default()).expect("shard run")
                })
            })
            .collect();

        let remote = server
            .serve(&p, None, &scenario, &seeds, &cfg)
            .expect("remote serve");
        for s in shards {
            s.join().expect("shard thread");
        }

        assert_eq!(
            in_proc.metrics, remote.metrics,
            "metrics diverged across processes"
        );
        assert_eq!(
            in_proc.report, remote.report,
            "accounting diverged across processes"
        );
    }
}

/// Fault scripts are rejected up front for remote deployments: the
/// frontend cannot respawn a shard process, so it refuses rather than
/// silently degrading.
#[test]
fn remote_serve_rejects_fault_scripts() {
    let scenario = scenario();
    let p = policy(scenario.topology.network_degree());
    let cfg = ServeConfig::new(2).with_faults(FaultScript::new().kill(0, 1, 2));

    let server = FrontendServer::bind("127.0.0.1:0").expect("bind frontend");
    let err = server
        .serve(&p, None, &scenario, &[3], &cfg)
        .expect_err("fault script must be rejected");
    assert!(
        err.to_string().contains("fault injection"),
        "unexpected error: {err}"
    );
}
