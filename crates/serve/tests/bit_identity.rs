//! The fabric's determinism contract: shard count never changes a
//! decision, and the fabric reproduces the in-process deployment
//! bit-for-bit.
//!
//! `Metrics` derives `PartialEq` over `f32` fields, so equality here is
//! bitwise equality of every episode outcome — not "close enough".

use dosco_core::policy::PolicyMetadata;
use dosco_core::{CoordinationPolicy, DistributedAgents};
use dosco_nn::mlp::{Activation, Mlp};
use dosco_serve::{serve, ServeConfig};
use dosco_simnet::{ScenarioConfig, Simulation};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn policy(degree: usize) -> CoordinationPolicy {
    let mut rng = StdRng::seed_from_u64(11);
    let actor = Mlp::new(&[4 * degree + 4, 24, degree + 1], Activation::Tanh, &mut rng);
    CoordinationPolicy::new(actor, degree, PolicyMetadata::default())
}

fn scenario() -> ScenarioConfig {
    ScenarioConfig::paper_base(2).with_horizon(400.0)
}

/// Greedy serving: 1 shard == 4 shards == the per-decision
/// `DistributedAgents` deployment, on every episode.
#[test]
fn greedy_one_shard_four_shards_and_in_process_agree() {
    let scenario = scenario();
    let p = policy(scenario.topology.network_degree());
    let seeds = [3u64, 7, 13, 29];

    let one = serve(&p, None, &scenario, &seeds, &ServeConfig::new(1));
    let four = serve(&p, None, &scenario, &seeds, &ServeConfig::new(4));
    assert_eq!(
        one.metrics, four.metrics,
        "shard count changed an episode outcome"
    );
    assert_eq!(one.report.decisions, four.report.decisions);
    assert!(one.report.conserved() && four.report.conserved());
    assert!(one.report.decisions > 0, "horizon produced no decisions");

    // The per-decision baseline (dosco_core::eval::evaluate drives the
    // same greedy DistributedAgents loop).
    let baseline: Vec<_> = seeds
        .iter()
        .map(|&s| dosco_core::eval::evaluate(&p, &scenario, s))
        .collect();
    assert_eq!(
        four.metrics, baseline,
        "batched serving diverged from per-decision inference"
    );
}

/// Stochastic serving: the per-node RNG streams make shard count
/// irrelevant, and a single-episode run reproduces the in-process
/// stochastic deployment draw for draw.
#[test]
fn stochastic_serving_is_shard_count_invariant_and_matches_in_process() {
    let scenario = scenario();
    let p = policy(scenario.topology.network_degree());
    let seed = 7u64;
    let cfg = |shards| ServeConfig::new(shards).with_stochastic_seed(seed);

    let one = serve(&p, None, &scenario, &[5], &cfg(1));
    let three = serve(&p, None, &scenario, &[5], &cfg(3));
    assert_eq!(
        one.metrics, three.metrics,
        "stochastic serving must be shard-count invariant"
    );

    let mut agents =
        DistributedAgents::deploy_stochastic(&p, scenario.topology.num_nodes(), seed);
    let mut sim = Simulation::new(scenario.clone(), 5);
    sim.run(&mut agents);
    assert_eq!(
        one.metrics[0],
        *sim.metrics(),
        "serve fabric diverged from DistributedAgents::deploy_stochastic"
    );
}

/// Multi-episode stochastic runs stay shard-count invariant too: each
/// node's stream advances in global request-id order regardless of which
/// shard holds it.
#[test]
fn stochastic_multi_episode_shard_count_invariance() {
    let scenario = scenario();
    let p = policy(scenario.topology.network_degree());
    let seeds = [101u64, 202, 303];
    let cfg = |shards| ServeConfig::new(shards).with_stochastic_seed(9);

    let one = serve(&p, None, &scenario, &seeds, &cfg(1));
    let four = serve(&p, None, &scenario, &seeds, &cfg(4));
    assert_eq!(one.metrics, four.metrics);
    assert_eq!(one.report.decisions, four.report.decisions);
}

/// Substrate churn during serving stays deterministic and shard-count
/// invariant: the timeline executes inside each episode's simulator, so
/// shard partitioning cannot reorder faults relative to decisions. An
/// empty timeline is bit-identical to no churn at all.
#[test]
fn churn_serving_is_deterministic_and_shard_count_invariant() {
    use dosco_chaos::{ChurnAction, ChurnSchedule};
    use dosco_topology::{LinkId, NodeId};

    let scenario = scenario();
    let p = policy(scenario.topology.network_degree());
    let seeds = [3u64, 7];
    let timeline = ChurnSchedule::none()
        .at(100.0, ChurnAction::LinkDown(LinkId(2)))
        .at(180.0, ChurnAction::NodeDown(NodeId(4)))
        .at(250.0, ChurnAction::LinkUp(LinkId(2)))
        .at(320.0, ChurnAction::NodeUp(NodeId(4)))
        .compile(&scenario.topology, scenario.horizon, 0)
        .expect("valid schedule");
    let cfg = |shards| ServeConfig::new(shards).with_churn(timeline.clone());

    let one = serve(&p, None, &scenario, &seeds, &cfg(1));
    let four = serve(&p, None, &scenario, &seeds, &cfg(4));
    assert_eq!(
        one.metrics, four.metrics,
        "churn serving must be shard-count invariant"
    );
    let again = serve(&p, None, &scenario, &seeds, &cfg(4));
    assert_eq!(four.metrics, again.metrics, "same seed, same timeline");

    // Empty timeline == no churn, bit for bit.
    let empty =
        ServeConfig::new(2).with_churn(dosco_chaos::ChurnTimeline::none());
    let plain = serve(&p, None, &scenario, &seeds, &ServeConfig::new(2));
    let with_empty = serve(&p, None, &scenario, &seeds, &empty);
    assert_eq!(plain.metrics, with_empty.metrics);
}
