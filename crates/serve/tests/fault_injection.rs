//! Graceful degradation and policy hot-swap under scripted faults.
//!
//! The contract under test: a down shard's decisions fall back to
//! shortest-path coordination (counted, never lost), a recovered shard
//! re-syncs to the latest published snapshot version, and version
//! accounting stays exact across the swap.

use dosco_core::policy::PolicyMetadata;
use dosco_core::CoordinationPolicy;
use dosco_nn::mlp::{Activation, Mlp};
use dosco_runtime::{PolicySlot, PolicySnapshot};
use dosco_serve::{serve, serve_with, FaultScript, ServeConfig};
use dosco_simnet::ScenarioConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn scenario() -> ScenarioConfig {
    ScenarioConfig::paper_base(2).with_horizon(400.0)
}

fn actor(degree: usize, seed: u64) -> Mlp {
    let mut rng = StdRng::seed_from_u64(seed);
    Mlp::new(&[4 * degree + 4, 24, degree + 1], Activation::Tanh, &mut rng)
}

fn critic(degree: usize, seed: u64) -> Mlp {
    let mut rng = StdRng::seed_from_u64(seed);
    Mlp::new(&[4 * degree + 4, 24, 1], Activation::Tanh, &mut rng)
}

fn policy(degree: usize, seed: u64) -> CoordinationPolicy {
    CoordinationPolicy::new(actor(degree, seed), degree, PolicyMetadata::default())
}

/// Kill a shard mid-run while a hot-swap lands during the outage:
/// fallbacks cover the outage, nothing is lost, and the respawned shard
/// resumes at the *published* (post-swap) version.
#[test]
fn killed_shard_falls_back_and_recovers_at_published_version() {
    let scenario = scenario();
    let degree = scenario.topology.network_degree();
    let p = policy(degree, 11);
    let hub = PolicySlot::new(PolicySnapshot {
        version: 0,
        actor: actor(degree, 11),
        critic: critic(degree, 12),
    });
    let v1 = Arc::new(PolicySnapshot {
        version: 1,
        actor: actor(degree, 99),
        critic: critic(degree, 12),
    });

    let cfg = ServeConfig::new(4).with_faults(FaultScript::new().kill(0, 12, 20));
    let out = serve_with(&p, Some(&hub), &scenario, &[3, 7, 13, 29], &cfg, |epoch| {
        // Publish the new snapshot from the epoch hook: the swap lands
        // deterministically at epoch 8, inside no fault window, so the
        // killed shard (down epochs 12..20) misses nothing — but its
        // respawn must still come up at version 1.
        if epoch == 8 {
            hub.publish(Arc::clone(&v1));
        }
    });

    let r = &out.report;
    assert!(r.conserved(), "unaccounted decisions: {r:?}");
    assert!(
        r.fallback_decisions > 0,
        "the kill window produced no fallbacks — shard 0 owns ingress node 0, \
         which decides every epoch: {r:?}"
    );
    assert!(r.batched_decisions > 0);
    assert_eq!(r.shard_kills, 1, "{r:?}");
    assert_eq!(r.shard_respawns, 1, "{r:?}");
    assert_eq!(r.swaps, 1, "{r:?}");
    assert_eq!(r.final_version, 1);
    assert!(
        r.shard_versions.iter().all(|&v| v == 1),
        "every shard (including the respawn) must end re-synced to v1: {r:?}"
    );
    // Version accounting: decisions served before epoch 8 ran at v0,
    // after at v1 — both must show up, summing to the batched total.
    assert_eq!(r.decisions_by_version.len(), 2, "{r:?}");
    assert!(r.decisions_by_version.iter().any(|&(v, n)| v == 0 && n > 0));
    assert!(r.decisions_by_version.iter().any(|&(v, n)| v == 1 && n > 0));
    let by_version: u64 = r.decisions_by_version.iter().map(|&(_, n)| n).sum();
    assert_eq!(by_version, r.batched_decisions);
}

/// A delayed shard is routed around (fallbacks, no kill/respawn) and the
/// fabric's outcome is otherwise healthy.
#[test]
fn delayed_shard_is_routed_around_without_restart() {
    let scenario = scenario();
    let p = policy(scenario.topology.network_degree(), 11);
    let cfg = ServeConfig::new(3).with_faults(FaultScript::new().delay(0, 5, 15));
    let out = serve(&p, None, &scenario, &[1, 2], &cfg);

    let r = &out.report;
    assert!(r.conserved(), "{r:?}");
    assert!(r.fallback_decisions > 0, "{r:?}");
    assert_eq!(r.shard_kills, 0);
    assert_eq!(r.shard_respawns, 0);
    assert_eq!(r.swaps, 0);
    assert_eq!(out.metrics.len(), 2);
}

/// A fault-free run with a hub serves the hub's snapshot — and an
/// untouched hub means zero swaps and a single version bucket.
#[test]
fn hub_without_publishes_serves_initial_snapshot() {
    let scenario = scenario();
    let degree = scenario.topology.network_degree();
    let p = policy(degree, 11);
    let hub = PolicySlot::new(PolicySnapshot {
        version: 5,
        actor: actor(degree, 11),
        critic: critic(degree, 12),
    });
    let out = serve_with(&p, Some(&hub), &scenario, &[3], &ServeConfig::new(2), |_| {});
    let r = &out.report;
    assert_eq!(r.swaps, 0);
    assert_eq!(r.final_version, 5);
    assert_eq!(r.decisions_by_version, vec![(5, r.batched_decisions)]);
    assert!(r.conserved());
}

/// The degraded outcome is still a real outcome: the same scenario under
/// a permanent kill of every shard serves entirely from the SP fallback
/// and completes every episode.
#[test]
fn total_outage_serves_entirely_from_fallback() {
    let scenario = scenario();
    let p = policy(scenario.topology.network_degree(), 11);
    let cfg = ServeConfig::new(2)
        .with_faults(FaultScript::new().kill(0, 0, u64::MAX).kill(1, 0, u64::MAX));
    let out = serve(&p, None, &scenario, &[4], &cfg);
    let r = &out.report;
    assert!(r.conserved());
    assert_eq!(r.batched_decisions, 0, "{r:?}");
    assert_eq!(r.decisions, r.fallback_decisions);
    assert!(r.decisions > 0);
}
