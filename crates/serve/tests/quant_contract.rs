//! The quantized-serving decision-equivalence contract.
//!
//! Int8 serving is gated by *decision equivalence*, not bit-identity:
//! on a recorded observation corpus (a committed fixture of real
//! decision-point observations, f32 values stored as exact u32 bit
//! patterns), the quantized policy's greedy argmax must agree with the
//! fp32 policy on at least [`AGREEMENT_THRESHOLD`] of rows. End-to-end
//! metric deltas between an fp32 and an int8 serve run are computed
//! exactly and asserted against honest bounds — the contract reports
//! what quantization actually changes rather than pretending it changes
//! nothing.

use dosco_core::policy::PolicyMetadata;
use dosco_core::CoordinationPolicy;
use dosco_nn::matrix::Matrix;
use dosco_nn::mlp::{Activation, Mlp};
use dosco_nn::{Categorical, QuantizedMlp};
use dosco_serve::{serve, ServeConfig};
use dosco_simnet::{Action, Coordinator, DecisionPoint, ScenarioConfig, Simulation};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// Minimum greedy-argmax agreement between the fp32 and int8 policy on
/// the recorded corpus. Pinned from a measured run: 1233/1296 = 0.9514
/// with the seed-11 random-weights policy, whose logit margins are far
/// tighter than a trained policy's (random logits cluster near zero, so
/// rows sit close to decision boundaries). A regression below this
/// means the quantizer got worse, not that the corpus drifted — the
/// corpus is a committed fixture.
const AGREEMENT_THRESHOLD: f64 = 0.95;

/// The policy seed the corpus was recorded against. The corpus pins the
/// *observations*; the policy is cheap to rebuild deterministically.
const POLICY_SEED: u64 = 11;

/// Episode seeds used both to record the corpus and for the end-to-end
/// fp32-vs-int8 serve comparison.
const EPISODE_SEEDS: [u64; 3] = [3, 7, 13];

fn scenario() -> ScenarioConfig {
    ScenarioConfig::paper_base(2).with_horizon(400.0)
}

fn policy(degree: usize) -> CoordinationPolicy {
    let mut rng = StdRng::seed_from_u64(POLICY_SEED);
    let actor = Mlp::new(&[4 * degree + 4, 24, degree + 1], Activation::Tanh, &mut rng);
    CoordinationPolicy::new(actor, degree, PolicyMetadata::default())
}

/// The committed observation corpus: decision-point observations from
/// real episodes, with every f32 stored as its exact u32 bit pattern so
/// the fixture survives JSON round-trips bit-for-bit.
#[derive(Debug, Serialize, Deserialize)]
struct ObsCorpus {
    format: String,
    /// Network degree the observations were padded to.
    degree: usize,
    /// Policy seed the recording coordinator acted with.
    policy_seed: u64,
    /// Episode seeds the corpus was recorded from.
    episode_seeds: Vec<u64>,
    /// Observation rows, each f32 as `f32::to_bits`.
    obs_bits: Vec<Vec<u32>>,
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join("obs_corpus_v1.json")
}

fn load_corpus() -> ObsCorpus {
    let path = fixture_path();
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading corpus fixture {}: {e}", path.display()));
    let corpus: ObsCorpus = serde_json::from_str(&json)
        .unwrap_or_else(|e| panic!("parsing corpus fixture {}: {e}", path.display()));
    assert_eq!(corpus.format, "dosco-obs-corpus-v1");
    assert!(
        corpus.obs_bits.len() >= 256,
        "corpus too small to be meaningful: {} rows",
        corpus.obs_bits.len()
    );
    corpus
}

fn corpus_matrix(corpus: &ObsCorpus) -> Matrix {
    let rows: Vec<Vec<f32>> = corpus
        .obs_bits
        .iter()
        .map(|row| row.iter().map(|&b| f32::from_bits(b)).collect())
        .collect();
    let refs: Vec<&[f32]> = rows.iter().map(Vec::as_slice).collect();
    Matrix::from_rows(&refs)
}

/// A coordinator that acts exactly like the greedy fp32 deployment but
/// records each observation it decided from.
struct RecordingAgent {
    policy: CoordinationPolicy,
    adapter: dosco_core::observe::ObservationAdapter,
    obs: Vec<Vec<f32>>,
}

impl Coordinator for RecordingAgent {
    fn decide(&mut self, sim: &Simulation, dp: &DecisionPoint) -> Action {
        let obs = self.adapter.observe(sim, dp);
        let action = Action::from_index(self.policy.act(&obs));
        self.obs.push(obs);
        action
    }
}

/// Regenerates the committed corpus fixture. Run explicitly with
/// `cargo test -p dosco-serve --test quant_contract -- --ignored` after
/// an intentional observation-contract change, then commit the new
/// fixture *and* re-measure [`AGREEMENT_THRESHOLD`].
#[test]
#[ignore = "regenerates the committed fixture; run manually"]
fn record_observation_corpus() {
    let scenario = scenario();
    let mut rec = RecordingAgent {
        policy: policy(scenario.topology.network_degree()),
        adapter: policy(scenario.topology.network_degree()).adapter(),
        obs: Vec::new(),
    };
    for &seed in &EPISODE_SEEDS {
        let mut sim = Simulation::new(scenario.clone(), seed);
        sim.run(&mut rec);
    }
    // Stride-sample down to a bounded fixture while keeping coverage of
    // early, mid, and late-episode states.
    let cap = 2048;
    let stride = rec.obs.len().div_ceil(cap).max(1);
    let sampled: Vec<Vec<u32>> = rec
        .obs
        .iter()
        .step_by(stride)
        .map(|row| row.iter().map(|v| v.to_bits()).collect())
        .collect();
    let corpus = ObsCorpus {
        format: "dosco-obs-corpus-v1".to_string(),
        degree: scenario.topology.network_degree(),
        policy_seed: POLICY_SEED,
        episode_seeds: EPISODE_SEEDS.to_vec(),
        obs_bits: sampled,
    };
    let json = serde_json::to_string(&corpus).expect("serialize corpus");
    std::fs::write(fixture_path(), json).expect("write corpus fixture");
    println!(
        "recorded {} observations ({} sampled) to {}",
        rec.obs.len(),
        corpus.obs_bits.len(),
        fixture_path().display()
    );
}

/// The core contract: greedy argmax agreement between the fp32 actor
/// and its int8 quantization on the recorded corpus stays at or above
/// the pinned threshold.
#[test]
fn corpus_argmax_agreement_meets_pinned_threshold() {
    let corpus = load_corpus();
    let p = policy(corpus.degree);
    let batch = corpus_matrix(&corpus);
    assert_eq!(batch.cols(), p.actor().inputs(), "corpus dim drifted");

    let quant = QuantizedMlp::from_mlp(p.actor());
    // Both paths go through Categorical so tie-breaking is byte-for-byte
    // the serving fabric's.
    let fp32 = Categorical::new(&p.actor().forward(&batch)).argmax();
    let int8 = Categorical::new(&quant.forward(&batch)).argmax();

    let agree = fp32.iter().zip(&int8).filter(|(a, b)| a == b).count();
    let agreement = agree as f64 / fp32.len() as f64;
    println!(
        "argmax agreement: {agree}/{} = {agreement:.4} (threshold {AGREEMENT_THRESHOLD})",
        fp32.len()
    );
    assert!(
        agreement >= AGREEMENT_THRESHOLD,
        "int8 argmax agreement {agreement:.4} fell below the pinned contract \
         {AGREEMENT_THRESHOLD} ({agree}/{} rows)",
        fp32.len()
    );
}

/// Quantized serving is deterministic (two identical runs are bitwise
/// equal) and shard-count invariant — the relaxation is fp32-vs-int8
/// only, never run-to-run.
#[test]
fn quantized_serving_is_deterministic_and_shard_count_invariant() {
    let scenario = scenario();
    let p = policy(scenario.topology.network_degree());
    let cfg = |shards| ServeConfig::new(shards).with_quantized();

    let a = serve(&p, None, &scenario, &EPISODE_SEEDS, &cfg(1));
    let b = serve(&p, None, &scenario, &EPISODE_SEEDS, &cfg(1));
    assert_eq!(a.metrics, b.metrics, "quantized serving must be deterministic");

    let three = serve(&p, None, &scenario, &EPISODE_SEEDS, &cfg(3));
    assert_eq!(
        a.metrics, three.metrics,
        "quantized serving must be shard-count invariant"
    );
    assert!(a.report.conserved() && three.report.conserved());
    assert!(a.report.decisions > 0);
}

/// The honest end-to-end comparison: run the same episodes fp32 and
/// int8 and report the *exact* per-episode metric deltas. A flipped
/// decision compounds over a 400-time-unit horizon, so episode outcomes
/// can differ substantially even at 95% per-decision agreement — the
/// equivalence contract lives on the corpus argmax test above; this
/// test asserts the structural invariants that must survive
/// quantization (identical arrivals, decision conservation, exact
/// reproducibility of the deltas) and prints the deltas it measured.
#[test]
fn fp32_vs_int8_serve_metric_deltas_are_exact_and_reported() {
    let scenario = scenario();
    let p = policy(scenario.topology.network_degree());

    let fp32 = serve(&p, None, &scenario, &EPISODE_SEEDS, &ServeConfig::new(2));
    let int8 = serve(
        &p,
        None,
        &scenario,
        &EPISODE_SEEDS,
        &ServeConfig::new(2).with_quantized(),
    );
    assert!(fp32.report.conserved() && int8.report.conserved());
    assert!(int8.report.decisions > 0);

    for (i, (f, q)) in fp32.metrics.iter().zip(&int8.metrics).enumerate() {
        // Exact integer deltas — no tolerance hides what changed.
        let d_completed = q.completed as i64 - f.completed as i64;
        let d_dropped = q.dropped_total() as i64 - f.dropped_total() as i64;
        let d_decisions = q.decisions as i64 - f.decisions as i64;
        println!(
            "episode {i} (seed {}): completed {} -> {} ({d_completed:+}), \
             dropped {} -> {} ({d_dropped:+}), decisions {} -> {} ({d_decisions:+}), \
             success {:.4} -> {:.4}",
            EPISODE_SEEDS[i],
            f.completed,
            q.completed,
            f.dropped_total(),
            q.dropped_total(),
            f.decisions,
            q.decisions,
            f.success_ratio(),
            q.success_ratio()
        );
        assert_eq!(f.arrived, q.arrived, "arrivals are seed-driven, not policy-driven");
    }

    // The deltas themselves are deterministic: a second int8 run
    // reproduces every episode outcome bitwise, so the numbers printed
    // above are facts about this (policy, scenario, seeds) triple, not
    // samples from a distribution.
    let int8_again = serve(
        &p,
        None,
        &scenario,
        &EPISODE_SEEDS,
        &ServeConfig::new(2).with_quantized(),
    );
    assert_eq!(int8.metrics, int8_again.metrics, "int8 deltas must be reproducible");
}
