//! Rapid hot-swap stress: many versions published in quick succession,
//! with and without a mid-canary shard kill.
//!
//! The contracts under test:
//! - **Conservation**: `decisions_by_version` sums exactly to the
//!   batched total, and batched + fallback equals total decisions — no
//!   decision is lost or double-counted across any number of swaps.
//! - **Monotone version observation per shard**: under hub broadcasts
//!   (monotonically versioned), a shard's observed version never moves
//!   backwards — including across a kill/respawn, because respawns
//!   re-sync to the shard's desired policy.

use dosco_core::policy::PolicyMetadata;
use dosco_core::CoordinationPolicy;
use dosco_nn::mlp::{Activation, Mlp};
use dosco_runtime::{PolicySlot, PolicySnapshot};
use dosco_serve::{
    serve_with, ControlQueue, FabricStatus, FaultScript, PublishCmd, PublishScope, ServeConfig,
    StatusBoard,
};
use dosco_simnet::ScenarioConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn scenario() -> ScenarioConfig {
    ScenarioConfig::paper_base(2).with_horizon(400.0)
}

fn actor(degree: usize, seed: u64) -> Mlp {
    let mut rng = StdRng::seed_from_u64(seed);
    Mlp::new(&[4 * degree + 4, 24, degree + 1], Activation::Tanh, &mut rng)
}

fn critic(degree: usize, seed: u64) -> Mlp {
    let mut rng = StdRng::seed_from_u64(seed);
    Mlp::new(&[4 * degree + 4, 24, 1], Activation::Tanh, &mut rng)
}

fn snap(degree: usize, version: u64, seed: u64) -> Arc<PolicySnapshot> {
    Arc::new(PolicySnapshot {
        version,
        actor: actor(degree, seed),
        critic: critic(degree, seed + 1),
    })
}

/// Asserts every shard's observed version sequence is non-decreasing
/// across the sampled epoch snapshots.
fn assert_monotone_versions(samples: &[FabricStatus]) {
    let num_shards = samples.first().map_or(0, |s| s.shards.len());
    for shard in 0..num_shards {
        let mut last = 0u64;
        for s in samples {
            if s.shards.is_empty() {
                continue; // pre-first-boundary snapshot
            }
            let v = s.shards[shard].version;
            assert!(
                v >= last,
                "shard {shard} observed version {v} after {last} at epoch {}",
                s.epoch
            );
            last = v;
        }
    }
}

/// K versions published on consecutive epochs: every batched decision is
/// attributed to exactly one version, the buckets sum to the batched
/// total, and per-shard version observation is monotone.
#[test]
fn rapid_hub_publishes_conserve_decisions_and_stay_monotone() {
    let scenario = scenario();
    let degree = scenario.topology.network_degree();
    let contract = CoordinationPolicy::new(actor(degree, 1), degree, PolicyMetadata::default());
    let hub = PolicySlot::new(PolicySnapshot {
        version: 0,
        actor: actor(degree, 1),
        critic: critic(degree, 2),
    });
    let board = Arc::new(StatusBoard::new());
    let cfg = ServeConfig::new(4).with_status(Arc::clone(&board));

    const K: u64 = 6;
    let mut samples: Vec<FabricStatus> = Vec::new();
    let out = serve_with(
        &contract,
        Some(&hub),
        &scenario,
        &[3, 7, 13, 29],
        &cfg,
        |epoch| {
            // The board holds the previous boundary's state here.
            samples.push(board.snapshot());
            // Publish a new version every epoch for K consecutive epochs.
            if (4..4 + K).contains(&epoch) {
                hub.publish(snap(degree, epoch - 3, 40 + epoch));
            }
        },
    );

    let r = &out.report;
    assert!(r.conserved(), "{r:?}");
    assert_eq!(r.fallback_decisions, 0, "no faults scripted: {r:?}");
    assert_eq!(r.swaps, K, "every publish lands as one swap: {r:?}");
    assert_eq!(r.final_version, K);
    assert!(r.shard_versions.iter().all(|&v| v == K), "{r:?}");
    // Conservation across the version buckets.
    let by_version: u64 = r.decisions_by_version.iter().map(|&(_, n)| n).sum();
    assert_eq!(by_version, r.batched_decisions);
    assert_eq!(r.batched_decisions, r.decisions);
    // Per-shard accounting also sums to the batched total.
    assert_eq!(r.shard_batched.iter().sum::<u64>(), r.batched_decisions);
    // Versions observed in the buckets are exactly a prefix-free subset
    // of 0..=K in ascending order (BTreeMap ordering).
    let versions: Vec<u64> = r.decisions_by_version.iter().map(|&(v, _)| v).collect();
    assert!(versions.windows(2).all(|w| w[0] < w[1]), "{versions:?}");
    assert!(versions.iter().all(|&v| v <= K), "{versions:?}");
    // The first and last published versions certainly served decisions
    // (epochs 0..4 ran v0; everything after the burst ran vK).
    assert!(out.report.decisions_by_version.iter().any(|&(v, n)| v == 0 && n > 0));
    assert!(out.report.decisions_by_version.iter().any(|&(v, n)| v == K && n > 0));
    assert_monotone_versions(&samples);
}

/// The same contracts under a mid-canary shard kill: a candidate is
/// published to a shard subset, the canary shard is killed inside the
/// window, and the fabric still conserves decisions, keeps per-shard
/// version observation monotone, and respawns the canary shard at the
/// *candidate* version (its desired policy), not the incumbent.
#[test]
fn mid_canary_shard_kill_conserves_and_respawns_at_candidate() {
    let scenario = scenario();
    let degree = scenario.topology.network_degree();
    let contract = CoordinationPolicy::new(actor(degree, 1), degree, PolicyMetadata::default());
    let hub = PolicySlot::new(PolicySnapshot {
        version: 3,
        actor: actor(degree, 1),
        critic: critic(degree, 2),
    });
    let board = Arc::new(StatusBoard::new());
    let control = Arc::new(ControlQueue::new());
    const CANARY: usize = 1;
    const CANDIDATE: u64 = 9;
    let cfg = ServeConfig::new(4)
        .with_status(Arc::clone(&board))
        .with_control(Arc::clone(&control))
        .with_faults(FaultScript::new().kill(CANARY, 10, 16));

    let mut samples: Vec<FabricStatus> = Vec::new();
    let out = serve_with(
        &contract,
        Some(&hub),
        &scenario,
        &[3, 7, 13, 29],
        &cfg,
        |epoch| {
            samples.push(board.snapshot());
            if epoch == 6 {
                control.push(PublishCmd {
                    snapshot: snap(degree, CANDIDATE, 77),
                    scope: PublishScope::Shards(vec![CANARY]),
                });
            }
        },
    );

    let r = &out.report;
    assert!(r.conserved(), "{r:?}");
    assert_eq!(r.directed_publishes, 1, "{r:?}");
    assert_eq!(r.shard_kills, 1, "{r:?}");
    assert_eq!(r.shard_respawns, 1, "{r:?}");
    assert!(
        r.fallback_decisions > 0,
        "the kill window must degrade the canary shard's nodes: {r:?}"
    );
    // Fallbacks are attributed to the killed canary shard only.
    assert_eq!(r.shard_fallback[CANARY], r.fallback_decisions, "{r:?}");
    // The respawn came back at the candidate, not the incumbent.
    assert_eq!(r.shard_versions[CANARY], CANDIDATE, "{r:?}");
    for (i, &v) in r.shard_versions.iter().enumerate() {
        if i != CANARY {
            assert_eq!(v, 3, "non-canary shard {i} must stay incumbent: {r:?}");
        }
    }
    // The incumbent stays the fabric-wide current version throughout.
    assert_eq!(r.final_version, 3);
    // Both versions served decisions, summing to the batched total.
    assert!(r.decisions_by_version.iter().any(|&(v, n)| v == 3 && n > 0));
    assert!(r.decisions_by_version.iter().any(|&(v, n)| v == CANDIDATE && n > 0));
    let by_version: u64 = r.decisions_by_version.iter().map(|&(_, n)| n).sum();
    assert_eq!(by_version, r.batched_decisions);
    assert_eq!(r.decisions, r.batched_decisions + r.fallback_decisions);
    assert_monotone_versions(&samples);
}
