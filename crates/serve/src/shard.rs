//! Shard workers: the mailbox protocol and the batched-inference loop.
//!
//! Each shard owns a fixed subset of the topology's nodes
//! ([`shard_of`]), one bounded mailbox, and — under stochastic serving —
//! one RNG stream per owned node. At every [`ShardMsg::Flush`] barrier
//! the shard stacks all queued observations into one matrix, runs a
//! single `Mlp::forward`, and answers each request from its row of the
//! batch. Because the blocked GEMM computes every output element
//! independently (ascending-k, single accumulator), the batched answers
//! are bitwise identical to per-decision forwards — batching changes
//! latency, never decisions.

use dosco_core::{per_node_seed, CoordinationPolicy};
use dosco_net::{BoxRx, BoxTx};
use dosco_nn::matrix::Matrix;
use dosco_nn::{Categorical, QuantizedMlp};
use dosco_obs::registry;
use dosco_obs::{GaugeKind, HistKind, SpanKind};
use dosco_topology::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The shard owning `node`: a round-robin partition (`node mod
/// num_shards`), so ingress-heavy low node ids spread across shards.
/// The partition is a pure function of the node id — it is what makes a
/// node's RNG stream and decision sequence independent of the shard
/// count.
#[must_use]
pub fn shard_of(node: usize, num_shards: usize) -> usize {
    node % num_shards
}

/// One decision request routed to a shard. Serializable so the mailbox
/// can be a `dosco_net` socket channel (a remote shard process).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionRequest {
    /// Globally monotonic request id — defines the deterministic batch
    /// order and the order of per-node RNG draws.
    pub id: u64,
    /// Frontend episode (simulation index) the decision belongs to.
    pub episode: usize,
    /// The node the decision is taken at (must be owned by the shard).
    pub node: NodeId,
    /// The local observation at the decision point.
    pub obs: Vec<f32>,
}

/// The shard mailbox protocol. Messages are FIFO per sender; the
/// frontend is the only producer, so a shard sees requests in id order
/// and swaps exactly at the epoch boundary they were broadcast.
#[derive(Debug, Serialize, Deserialize)]
pub enum ShardMsg {
    /// Queue a decision request for the next flush.
    Request(DecisionRequest),
    /// Epoch barrier: batch everything queued into one forward and
    /// answer each request.
    Flush {
        /// The frontend epoch this barrier closes (diagnostic).
        epoch: u64,
    },
    /// Policy hot-swap, delivered at an epoch boundary before that
    /// epoch's requests.
    Swap {
        /// The new policy (validated by the frontend before broadcast).
        policy: Arc<CoordinationPolicy>,
        /// The snapshot version the policy came from.
        version: u64,
    },
    /// Graceful shutdown; the shard exits its loop.
    Shutdown,
}

/// A shard's answer to one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecisionResponse {
    /// The request id being answered.
    pub id: u64,
    /// The shard that answered (for per-shard accounting on the status
    /// board).
    pub shard: usize,
    /// Episode the decision belongs to (copied from the request).
    pub episode: usize,
    /// Chosen action as a flat index (`Action::from_index`).
    pub action_index: usize,
    /// Policy version the decision was computed under.
    pub version: u64,
    /// Rows in the batched forward that produced this answer.
    pub batch_rows: usize,
}

/// Everything a shard worker owns. Responses travel as one `Vec` per
/// flush — a single channel hand-off per shard per epoch, so transport
/// cost scales with shards, not decisions. The mailbox and response
/// channel are `dosco_net` transport ends, so the same worker body runs
/// on an in-process thread or in a separate shard process over TCP.
pub(crate) struct ShardWorker {
    pub index: usize,
    pub num_shards: usize,
    pub num_nodes: usize,
    pub stochastic_seed: Option<u64>,
    /// Serve batched forwards from int8-quantized weights. The shard
    /// quantizes once per policy (at start and on every swap), then
    /// every flush runs the integer GEMM instead of the f32 one.
    pub quantized: bool,
    pub policy: Arc<CoordinationPolicy>,
    pub version: u64,
    pub mailbox: BoxRx<ShardMsg>,
    pub responses: BoxTx<Vec<DecisionResponse>>,
}

/// The shard thread body: drain the mailbox, batch at flush barriers.
pub(crate) fn run_shard(mut w: ShardWorker) {
    // Per-node RNG streams for the nodes this shard owns. Seeded by
    // `per_node_seed`, the same derivation `DistributedAgents` uses, so
    // stochastic serving draws the exact stream the in-process
    // deployment would.
    let mut rngs: Vec<Option<StdRng>> = match w.stochastic_seed {
        Some(seed) => (0..w.num_nodes)
            .map(|v| {
                (shard_of(v, w.num_shards) == w.index)
                    .then(|| StdRng::seed_from_u64(per_node_seed(seed, v)))
            })
            .collect(),
        None => Vec::new(),
    };
    // Quantize the starting policy once; swaps re-quantize. The f32
    // policy is kept alongside — quantization is an inference-time
    // view, never the stored weights.
    let mut quant: Option<QuantizedMlp> = w
        .quantized
        .then(|| QuantizedMlp::from_mlp(w.policy.actor()));
    let mut pending: Vec<DecisionRequest> = Vec::new();
    loop {
        match w.mailbox.recv() {
            Ok(ShardMsg::Request(r)) => {
                debug_assert_eq!(
                    shard_of(r.node.0, w.num_shards),
                    w.index,
                    "request routed to the wrong shard"
                );
                pending.push(r);
            }
            Ok(ShardMsg::Flush { .. }) => flush(&w, &mut pending, &mut rngs, quant.as_ref()),
            Ok(ShardMsg::Swap { policy, version }) => {
                w.policy = policy;
                w.version = version;
                if w.quantized {
                    quant = Some(QuantizedMlp::from_mlp(w.policy.actor()));
                }
            }
            // Disconnect means the frontend dropped the mailbox: treat
            // like a shutdown (nothing can be pending past a flush).
            Ok(ShardMsg::Shutdown) | Err(_) => return,
        }
    }
}

/// Answers every queued request with one batched forward — f32, or the
/// int8 integer-accumulate path when the worker is quantized.
fn flush(
    w: &ShardWorker,
    pending: &mut Vec<DecisionRequest>,
    rngs: &mut [Option<StdRng>],
    quant: Option<&QuantizedMlp>,
) {
    if pending.is_empty() {
        return;
    }
    // Deterministic batch order: ascending request id. The mailbox is
    // FIFO from the single frontend producer, so this is a no-op sort in
    // practice — it pins the contract rather than trusting transport.
    pending.sort_by_key(|r| r.id);
    let rows = pending.len();
    registry::set_gauge(GaugeKind::LastServeQueueDepth, rows as f64);
    registry::max_gauge(GaugeKind::PeakServeQueueDepth, rows as f64);
    registry::observe(HistKind::ServeBatchSize, rows as f64);

    let actions: Vec<usize> = {
        let _span = dosco_obs::span(SpanKind::ServeBatchForward);
        let obs_dim = w.policy.actor().inputs();
        let batch = Matrix::from_fn(rows, obs_dim, |r, c| pending[r].obs[c]);
        let logits = match quant {
            Some(q) => q.forward(&batch),
            None => w.policy.actor().forward(&batch),
        };
        let dist = Categorical::new(&logits);
        if w.stochastic_seed.is_some() {
            // One draw per row, in id order, from the owning node's
            // stream — the exact draws a per-decision deployment makes.
            (0..rows)
                .map(|r| {
                    let rng = rngs[pending[r].node.0]
                        .as_mut()
                        .expect("request for a node this shard owns");
                    dist.sample_row(r, rng)
                })
                .collect()
        } else {
            dist.argmax()
        }
    };

    let answers: Vec<DecisionResponse> = pending
        .drain(..)
        .enumerate()
        .map(|(row, req)| DecisionResponse {
            id: req.id,
            shard: w.index,
            episode: req.episode,
            action_index: actions[row],
            version: w.version,
            batch_rows: rows,
        })
        .collect();
    // A send error means the frontend is gone; responses are moot.
    let _ = w.responses.send(answers);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_total_and_balanced() {
        let shards = 4;
        let mut counts = vec![0usize; shards];
        for node in 0..11 {
            counts[shard_of(node, shards)] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 11);
        assert!(counts.iter().all(|&c| c >= 2), "{counts:?}");
        // Stable: the partition never depends on anything but node id.
        assert_eq!(shard_of(7, 4), 3);
    }
}
