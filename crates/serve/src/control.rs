//! Control-plane directives for the serving fabric: targeted policy
//! publishes applied at epoch boundaries.
//!
//! The [`PolicySlot`](dosco_runtime::PolicySlot) hub broadcasts to
//! *every* shard — the right semantics for following a live learner, but
//! too coarse for operational workflows: a canary wants a candidate on a
//! *subset* of shards while the rest keep serving the incumbent, and a
//! rollback wants the incumbent republished to exactly the shards that
//! diverged. A [`ControlQueue`] carries those directives. The frontend
//! drains it at every epoch boundary (after the hub poll, so explicit
//! directives win over the broadcast within a boundary) and delivers the
//! swaps with the same epoch-pinned mechanism as a hub publish — one
//! code path, identical determinism guarantees.

use dosco_runtime::PolicySnapshot;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Which shards a [`PublishCmd`] applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PublishScope {
    /// Every shard; also updates the fabric's notion of the "current"
    /// policy, which respawned shards and future global publishes follow.
    All,
    /// Only the listed shard indices (out-of-range indices are ignored);
    /// the rest keep their current policy.
    Shards(Vec<usize>),
}

/// One control directive: publish `snapshot` to `scope` at the next
/// epoch boundary.
#[derive(Debug, Clone)]
pub struct PublishCmd {
    /// The snapshot to deploy (validated against the observation
    /// contract by the frontend, exactly like a hub publish).
    pub snapshot: Arc<PolicySnapshot>,
    /// The shards it lands on.
    pub scope: PublishScope,
}

/// A FIFO queue of control directives, drained by the fabric at every
/// epoch boundary. Senders (a canary driver, an ops endpoint) push from
/// any thread; commands are applied in push order at the next boundary,
/// so two commands pushed between boundaries land at the *same* epoch in
/// their push order.
#[derive(Debug, Default)]
pub struct ControlQueue {
    cmds: Mutex<VecDeque<PublishCmd>>,
    /// Commands ever pushed (cheap emptiness probe for the fabric: one
    /// relaxed load on the boundary path instead of a mutex lock).
    pushed: AtomicU64,
    /// Commands ever drained.
    drained: AtomicU64,
}

impl ControlQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        ControlQueue::default()
    }

    /// Enqueues a directive for the next epoch boundary.
    pub fn push(&self, cmd: PublishCmd) {
        self.cmds.lock().expect("control queue poisoned").push_back(cmd);
        self.pushed.fetch_add(1, Ordering::Release);
    }

    /// Whether any command is waiting. One relaxed load — safe to call
    /// on the fabric's boundary path every epoch.
    pub fn is_pending(&self) -> bool {
        self.pushed.load(Ordering::Acquire) > self.drained.load(Ordering::Relaxed)
    }

    /// Removes and returns every queued directive, in push order.
    pub(crate) fn drain(&self) -> Vec<PublishCmd> {
        let mut q = self.cmds.lock().expect("control queue poisoned");
        let cmds: Vec<PublishCmd> = q.drain(..).collect();
        self.drained.fetch_add(cmds.len() as u64, Ordering::Relaxed);
        cmds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosco_nn::mlp::{Activation, Mlp};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn snap(version: u64) -> Arc<PolicySnapshot> {
        let mut rng = StdRng::seed_from_u64(version);
        Arc::new(PolicySnapshot {
            version,
            actor: Mlp::new(&[2, 2], Activation::Tanh, &mut rng),
            critic: Mlp::new(&[2, 1], Activation::Tanh, &mut rng),
        })
    }

    #[test]
    fn drains_in_push_order() {
        let q = ControlQueue::new();
        assert!(!q.is_pending());
        q.push(PublishCmd { snapshot: snap(1), scope: PublishScope::All });
        q.push(PublishCmd { snapshot: snap(2), scope: PublishScope::Shards(vec![0]) });
        assert!(q.is_pending());
        let cmds = q.drain();
        assert_eq!(cmds.len(), 2);
        assert_eq!(cmds[0].snapshot.version, 1);
        assert_eq!(cmds[0].scope, PublishScope::All);
        assert_eq!(cmds[1].snapshot.version, 2);
        assert!(!q.is_pending());
        assert!(q.drain().is_empty());
    }
}
