//! Live fabric status for operational surfaces.
//!
//! A [`StatusBoard`] is an optional attachment on
//! [`ServeConfig`](crate::ServeConfig): when present, the frontend
//! publishes a [`FabricStatus`] snapshot at every epoch boundary (and
//! once more at shutdown), covering per-shard liveness/version/decision
//! counts, running per-version decision accounting, and aggregate
//! episode metrics. The `dosco_ctl` `GET /shards` endpoint serves it,
//! and the canary driver reads window deltas from it.
//!
//! Cost model: updates happen on the frontend thread only, once per
//! epoch (never per decision), and only when a board is attached — a
//! detached fabric pays exactly one `Option` check per epoch.

use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// One shard as of the last published epoch boundary.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardStatus {
    /// Shard index.
    pub shard: usize,
    /// Whether the shard worker is up (false inside a kill window).
    pub alive: bool,
    /// Policy version last delivered to this shard.
    pub version: u64,
    /// Cumulative decisions this shard answered from batched forwards.
    pub batched_decisions: u64,
    /// Cumulative decisions answered by the SP fallback because this
    /// shard (their owner) was down or delayed.
    pub fallback_decisions: u64,
}

/// A whole-fabric snapshot published at an epoch boundary.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FabricStatus {
    /// The epoch this snapshot was taken at (boundary work for this
    /// epoch — swaps, faults — is already applied; the epoch's decisions
    /// are not yet counted).
    pub epoch: u64,
    /// Episodes still running.
    pub live_episodes: u64,
    /// Total decisions applied so far (batched + fallback).
    pub decisions: u64,
    /// Policy hot-swaps broadcast so far (hub-driven).
    pub swaps: u64,
    /// Targeted control-queue publishes applied so far.
    pub directed_publishes: u64,
    /// The fabric-wide current policy version (what respawns re-sync to).
    pub current_version: u64,
    /// Per-shard state, indexed by shard.
    pub shards: Vec<ShardStatus>,
    /// Batched decisions per policy version so far, ascending by version.
    pub decisions_by_version: Vec<(u64, u64)>,
    /// Flows arrived across all episodes so far.
    pub flows_arrived: u64,
    /// Flows completed successfully across all episodes so far.
    pub flows_completed: u64,
    /// Flows dropped across all episodes so far.
    pub flows_dropped: u64,
}

impl FabricStatus {
    /// The paper's success objective over every terminated flow so far,
    /// or `None` while no flow has terminated.
    pub fn success_ratio(&self) -> Option<f64> {
        let terminated = self.flows_completed + self.flows_dropped;
        (terminated > 0).then(|| self.flows_completed as f64 / terminated as f64)
    }

    /// Cumulative batched decisions attributed to `version`.
    pub fn decisions_at_version(&self, version: u64) -> u64 {
        self.decisions_by_version
            .iter()
            .find(|&&(v, _)| v == version)
            .map_or(0, |&(_, n)| n)
    }
}

/// Shared slot the fabric publishes [`FabricStatus`] snapshots into.
#[derive(Debug, Default)]
pub struct StatusBoard {
    inner: Mutex<FabricStatus>,
}

impl StatusBoard {
    /// Creates an empty board (all zeroes until the fabric's first
    /// boundary update).
    pub fn new() -> Self {
        StatusBoard::default()
    }

    /// The most recently published snapshot.
    pub fn snapshot(&self) -> FabricStatus {
        self.inner.lock().expect("status board poisoned").clone()
    }

    /// Replaces the published snapshot (fabric-side).
    pub(crate) fn publish(&self, status: FabricStatus) {
        *self.inner.lock().expect("status board poisoned") = status;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn board_round_trips_snapshots() {
        let board = StatusBoard::new();
        assert_eq!(board.snapshot(), FabricStatus::default());
        let status = FabricStatus {
            epoch: 7,
            decisions: 40,
            shards: vec![ShardStatus {
                shard: 0,
                alive: true,
                version: 2,
                batched_decisions: 30,
                fallback_decisions: 10,
            }],
            decisions_by_version: vec![(1, 10), (2, 20)],
            flows_completed: 3,
            flows_dropped: 1,
            ..FabricStatus::default()
        };
        board.publish(status.clone());
        assert_eq!(board.snapshot(), status);
        assert_eq!(status.success_ratio(), Some(0.75));
        assert_eq!(status.decisions_at_version(2), 20);
        assert_eq!(status.decisions_at_version(9), 0);
    }

    #[test]
    fn success_ratio_is_none_while_vacuous() {
        assert_eq!(FabricStatus::default().success_ratio(), None);
    }

    #[test]
    fn status_serializes_and_round_trips() {
        let status = FabricStatus {
            epoch: 3,
            shards: vec![ShardStatus::default()],
            decisions_by_version: vec![(0, 5)],
            ..FabricStatus::default()
        };
        let json = serde_json::to_string(&status).unwrap();
        let back: FabricStatus = serde_json::from_str(&json).unwrap();
        assert_eq!(back, status);
    }
}
