//! Multi-process serving: a frontend that drives the epoch loop over
//! real TCP connections to shard *processes*.
//!
//! The deployment mirrors the in-process fabric exactly — same
//! [`serve_core`] epoch loop, same [`run_shard`] worker body — with the
//! launcher swapped: instead of spawning a scoped thread per shard, the
//! [`FrontendServer`] hands each accepted connection a [`ShardInit`]
//! frame and speaks [`ShardMsg`] / `Vec<DecisionResponse>` over the
//! framed, checksummed `dosco_net` socket channels. Hot-swap, targeted
//! control publishes, and status boards all work unchanged (a
//! [`ShardMsg::Swap`] simply crosses the wire); the decisions served are
//! bit-identical to the in-process fabric (pinned by test).
//!
//! One deliberate restriction: fault injection is rejected. Killing a
//! shard *process* cannot be respawned from inside the frontend (process
//! lifecycle belongs to the operator), so a non-empty
//! [`FaultScript`](crate::FaultScript) returns an error instead of
//! silently degrading.

use crate::fabric::{serve_core, ServeConfig, ServeOutcome, ShardHandle, ShardLauncher};
use crate::shard::{run_shard, DecisionResponse, ShardMsg, ShardWorker};
use crossbeam::channel::{self, Sender};
use dosco_core::CoordinationPolicy;
use dosco_net::{
    connect_with_retry, read_frame, receiver_on, rx_from_channel, sender_on, write_frame,
    NetConfig, NetError,
};
use dosco_runtime::PolicySlot;
use dosco_simnet::{ScenarioConfig, Simulation};
use serde::{Deserialize, Serialize};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;

fn io_protocol(what: &str, e: &dyn std::fmt::Display) -> NetError {
    NetError::Protocol(format!("{what}: {e}"))
}

/// The first frame a shard process reads after connecting: everything a
/// worker needs to run [`run_shard`] — its partition, the RNG derivation
/// inputs, and the starting policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardInit {
    /// The shard index this connection serves.
    pub index: u64,
    /// Total shards in the fabric (the partition modulus).
    pub num_shards: u64,
    /// Nodes in the topology (sizes the per-node RNG stream table).
    pub num_nodes: u64,
    /// `Some(seed)` for stochastic serving, `None` for greedy.
    pub stochastic_seed: Option<u64>,
    /// Serve from int8-quantized weights (greedy-only; see
    /// [`ServeConfig::with_quantized`]).
    pub quantized: bool,
    /// The policy to serve until the first [`ShardMsg::Swap`].
    pub policy: CoordinationPolicy,
    /// The snapshot version `policy` came from.
    pub version: u64,
}

/// Launches shards onto accepted connections: one [`ShardInit`] frame,
/// then duplex socket channels. Responses from every connection fan into
/// one bounded channel the epoch loop consumes.
struct RemoteLauncher {
    conns: Vec<Option<TcpStream>>,
    capacity: usize,
    num_shards: usize,
    num_nodes: usize,
    stochastic_seed: Option<u64>,
    quantized: bool,
    fan_tx: Sender<Vec<DecisionResponse>>,
    forwarders: Vec<JoinHandle<()>>,
}

impl ShardLauncher<'static> for RemoteLauncher {
    fn launch(
        &mut self,
        index: usize,
        policy: Arc<CoordinationPolicy>,
        version: u64,
    ) -> ShardHandle<'static> {
        // With fault scripts rejected up front, the epoch loop launches
        // each shard at most once; a handle that cannot be brought up
        // (connection already consumed, clone or handshake failure) is
        // returned dead — the epoch loop serves its nodes via the
        // shortest-path fallback instead of panicking the frontend.
        let Some(stream) = self.conns[index].take() else {
            return ShardHandle::dead(version);
        };
        let Ok(read_half) = stream.try_clone() else {
            return ShardHandle::dead(version);
        };
        let Ok(mut init_half) = stream.try_clone() else {
            return ShardHandle::dead(version);
        };
        let init = ShardInit {
            index: index as u64,
            num_shards: self.num_shards as u64,
            num_nodes: self.num_nodes as u64,
            stochastic_seed: self.stochastic_seed,
            quantized: self.quantized,
            policy: (*policy).clone(),
            version,
        };
        if write_frame(&mut init_half, &dosco_net::encode_msg(&init)).is_err() {
            return ShardHandle::dead(version);
        }
        let tx = sender_on::<ShardMsg>(stream, self.capacity);
        let rx = receiver_on::<Vec<DecisionResponse>>(read_half, self.capacity);
        let fan = self.fan_tx.clone();
        self.forwarders.push(std::thread::spawn(move || {
            while let Ok(v) = rx.recv() {
                if fan.send(v).is_err() {
                    break;
                }
            }
        }));
        ShardHandle {
            tx: Some(tx),
            join: None,
            version,
            dead: false,
        }
    }
}

/// The frontend end of a multi-process serving deployment, bound but not
/// yet accepting. Splitting bind from [`FrontendServer::serve`] lets a
/// caller bind `127.0.0.1:0` and hand the resolved
/// [`FrontendServer::local_addr`] to the shard processes.
#[derive(Debug)]
pub struct FrontendServer {
    listener: TcpListener,
}

impl FrontendServer {
    /// Binds the frontend's listening socket.
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] naming the bind failure.
    pub fn bind(addr: &str) -> Result<Self, NetError> {
        let listener =
            TcpListener::bind(addr).map_err(|e| io_protocol("bind frontend listener", &e))?;
        Ok(FrontendServer { listener })
    }

    /// The bound address (`host:port`), with any ephemeral port resolved.
    ///
    /// # Panics
    ///
    /// Panics if the OS cannot report the local address of a bound socket.
    #[must_use]
    pub fn local_addr(&self) -> String {
        self.listener
            .local_addr()
            .expect("bound listener has an address")
            .to_string()
    }

    /// Accepts one connection per shard (`cfg.num_shards`, clamped to the
    /// node count), hands each its [`ShardInit`], and serves
    /// `episode_seeds.len()` concurrent episodes exactly as
    /// [`crate::serve_with`] would — same epoch loop, same accounting,
    /// same hot-swap semantics over the attached `hub`.
    ///
    /// # Errors
    ///
    /// [`NetError`] if accepting a shard connection fails, or if
    /// `cfg.faults` is non-empty (fault injection kills worker threads;
    /// a shard *process* cannot be respawned from here).
    ///
    /// # Panics
    ///
    /// As [`crate::serve_with`] (invalid configuration, no episodes).
    /// A shard connection dying mid-run does *not* panic: the frontend
    /// marks the shard dead and serves its nodes via the shortest-path
    /// fallback for the rest of the run (counted in
    /// [`ServeReport::shard_disconnects`](crate::ServeReport)).
    pub fn serve(
        &self,
        policy: &CoordinationPolicy,
        hub: Option<&PolicySlot>,
        scenario: &ScenarioConfig,
        episode_seeds: &[u64],
        cfg: &ServeConfig,
    ) -> Result<ServeOutcome, NetError> {
        cfg.validate().expect("serve configuration must be valid");
        assert!(!episode_seeds.is_empty(), "need at least one episode");
        if !cfg.faults.windows().is_empty() {
            return Err(NetError::Protocol(
                "fault injection requires locally-launched shards \
                 (a shard process cannot be respawned by the frontend)"
                    .into(),
            ));
        }
        let num_nodes = scenario.topology.num_nodes();
        let num_shards = cfg.num_shards.min(num_nodes);

        let mut sims: Vec<Simulation> = episode_seeds
            .iter()
            .map(|&s| cfg.build_sim(scenario, s))
            .collect();

        let mut conns = Vec::with_capacity(num_shards);
        for _ in 0..num_shards {
            let (stream, _) = self
                .listener
                .accept()
                .map_err(|e| io_protocol("accept shard connection", &e))?;
            let _ = stream.set_nodelay(true);
            conns.push(Some(stream));
        }

        let (fan_tx, fan_rx) = channel::bounded::<Vec<DecisionResponse>>(num_shards + 1);
        let fan_rx = rx_from_channel(fan_rx);
        let mut launcher = RemoteLauncher {
            conns,
            capacity: cfg.mailbox_capacity,
            num_shards,
            num_nodes,
            stochastic_seed: cfg.stochastic_seed,
            quantized: cfg.quantized,
            fan_tx,
            forwarders: Vec::new(),
        };

        let (metrics, report) = serve_core(
            policy,
            hub,
            &mut sims,
            num_shards,
            cfg,
            &mut launcher,
            fan_rx.as_ref(),
            &mut |_| {},
        );

        // Shutdown already reached every shard (serve_core sent it and
        // dropped the mailboxes); the connections close behind them, the
        // receivers see EOF, and the forwarders drain out.
        for f in launcher.forwarders {
            if f.join().is_err() {
                return Err(NetError::Protocol("response forwarder panicked".into()));
            }
        }

        assert!(
            report.conserved(),
            "decision conservation violated: {} != {} batched + {} fallback",
            report.decisions,
            report.batched_decisions,
            report.fallback_decisions
        );
        Ok(ServeOutcome { metrics, report })
    }
}

/// The shard-process entrypoint: dial the frontend (with the configured
/// retry/backoff), read the [`ShardInit`], and run the exact worker body
/// the in-process fabric runs — batching every flush into one forward,
/// answering over the socket, swapping policies at epoch boundaries.
///
/// Returns when the frontend sends [`ShardMsg::Shutdown`] or closes the
/// connection.
///
/// # Errors
///
/// [`NetError`] if the connection or the [`ShardInit`] handshake fails.
pub fn run_remote_shard(addr: &str, net: &NetConfig) -> Result<(), NetError> {
    let mut stream = connect_with_retry(addr, net.retries, net.timeout)?;
    let _ = stream.set_nodelay(true);
    let payload = read_frame(&mut stream).map_err(|e| io_protocol("read ShardInit", &e))?;
    let init: ShardInit =
        dosco_net::decode_msg(&payload).map_err(|e| io_protocol("decode ShardInit", &e))?;
    let read_half = stream
        .try_clone()
        .map_err(|e| io_protocol("clone frontend stream", &e))?;
    let mailbox = receiver_on::<ShardMsg>(read_half, net.capacity);
    let responses = sender_on::<Vec<DecisionResponse>>(stream, net.capacity);
    let dim = |what: &str, v: u64| {
        usize::try_from(v).map_err(|e| io_protocol(what, &format!("{v}: {e}")))
    };
    run_shard(ShardWorker {
        index: dim("ShardInit.index", init.index)?,
        num_shards: dim("ShardInit.num_shards", init.num_shards)?,
        num_nodes: dim("ShardInit.num_nodes", init.num_nodes)?,
        stochastic_seed: init.stochastic_seed,
        quantized: init.quantized,
        policy: Arc::new(init.policy),
        version: init.version,
        mailbox,
        responses,
    });
    Ok(())
}
