//! Epoch-scripted fault injection for the serving fabric.
//!
//! Faults are indexed by the frontend's epoch counter rather than wall
//! clock, so a chaos scenario degrades the same way on every run — the
//! fault tests are ordinary deterministic tests.

/// What a fault window does to its shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The shard thread is shut down at the window start and respawned —
    /// re-synced to the latest published policy version — at the window
    /// end. Models a crashed inference worker.
    Kill,
    /// The shard stays alive but stops answering within the epoch; the
    /// frontend routes around it until the window ends, then re-syncs
    /// its policy if a swap happened meanwhile. Models a straggler.
    Delay,
}

/// One scripted fault: `shard` is unavailable for every epoch in
/// `[from_epoch, until_epoch)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    /// The shard index the fault applies to.
    pub shard: usize,
    /// Kill or delay.
    pub kind: FaultKind,
    /// First epoch the shard is down (inclusive).
    pub from_epoch: u64,
    /// Recovery epoch (exclusive): the shard serves again from here.
    pub until_epoch: u64,
}

/// A deterministic fault script: a set of [`FaultWindow`]s the frontend
/// consults at every epoch boundary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultScript {
    windows: Vec<FaultWindow>,
}

impl FaultScript {
    /// An empty script (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a kill window for `shard` over `[from_epoch, until_epoch)`.
    #[must_use]
    pub fn kill(mut self, shard: usize, from_epoch: u64, until_epoch: u64) -> Self {
        self.windows.push(FaultWindow {
            shard,
            kind: FaultKind::Kill,
            from_epoch,
            until_epoch,
        });
        self
    }

    /// Adds a delay window for `shard` over `[from_epoch, until_epoch)`.
    #[must_use]
    pub fn delay(mut self, shard: usize, from_epoch: u64, until_epoch: u64) -> Self {
        self.windows.push(FaultWindow {
            shard,
            kind: FaultKind::Delay,
            from_epoch,
            until_epoch,
        });
        self
    }

    /// The fault affecting `shard` at `epoch`, if any. When windows
    /// overlap, the earliest-added wins (scripts are small; first match).
    pub fn state(&self, shard: usize, epoch: u64) -> Option<FaultKind> {
        self.windows
            .iter()
            .find(|w| w.shard == shard && (w.from_epoch..w.until_epoch).contains(&epoch))
            .map(|w| w.kind)
    }

    /// All scripted windows.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_half_open() {
        let s = FaultScript::new().kill(1, 5, 8).delay(0, 2, 3);
        assert_eq!(s.state(1, 4), None);
        assert_eq!(s.state(1, 5), Some(FaultKind::Kill));
        assert_eq!(s.state(1, 7), Some(FaultKind::Kill));
        assert_eq!(s.state(1, 8), None, "recovery epoch is exclusive");
        assert_eq!(s.state(0, 2), Some(FaultKind::Delay));
        assert_eq!(s.state(2, 2), None);
        assert_eq!(s.windows().len(), 2);
    }
}
