//! Sharded serving fabric for trained coordination policies — the
//! deployment phase of the paper (Fig. 4b) built as a real inference
//! plane rather than an in-process loop.
//!
//! [`DistributedAgents`](dosco_core::DistributedAgents) answers one
//! decision at a time with one un-batched MLP forward per decision. This
//! crate partitions the topology's nodes across worker **shards**
//! (bounded mailboxes over the vendored crossbeam channels); a frontend
//! drives many concurrent episodes — the serving load — and each shard
//! batches the decision requests queued at its mailbox into a *single*
//! matrix forward per epoch. Three properties make it production-shaped:
//!
//! - **Policy hot-swap** ([`fabric`]): the fabric subscribes to the
//!   training runtime's versioned
//!   [`PolicySlot`](dosco_runtime::PolicySlot). The frontend polls the
//!   slot version at every epoch boundary and broadcasts the new weights
//!   to all shards at that boundary, so every shard switches at the same
//!   epoch and version accounting stays exact
//!   ([`ServeReport::decisions_by_version`]).
//! - **Graceful degradation** ([`fault`]): an epoch-scripted fault hook
//!   kills or delays a shard. Decisions for its nodes fall back to the
//!   [`dosco_baselines`] shortest-path coordinator until the shard
//!   recovers and re-syncs to the latest published snapshot — every
//!   decision is counted as batched or fallback, never silently lost
//!   ([`ServeReport::conserved`]).
//! - **Determinism contract**: per-node RNG streams
//!   ([`dosco_core::per_node_seed`]) live with the shard that owns the
//!   node, and batches are ordered by a globally monotonic request id.
//!   A 1-shard run is bit-identical to an N-shard run, and a greedy
//!   1-episode run is bit-identical to the in-process
//!   `DistributedAgents` deployment (proven by test). The keystone is
//!   that a B-row batched forward is bitwise identical to B single-row
//!   forwards (property-tested in `dosco_nn`).
//!
//! Everything is instrumented through `dosco_obs`: queue-depth gauges,
//! a batch-size histogram, per-decision latency spans (`DOSCO_SPANS=1`),
//! and fallback/swap counters.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![warn(missing_debug_implementations)]

pub mod control;
pub mod fabric;
pub mod fault;
pub mod remote;
pub mod shard;
pub mod status;

pub use control::{ControlQueue, PublishCmd, PublishScope};
pub use fabric::{
    serve, serve_with, serve_with_transport, ServeConfig, ServeOutcome, ServeReport, GATHER_STALL,
};
pub use fault::{FaultKind, FaultScript, FaultWindow};
pub use remote::{run_remote_shard, FrontendServer, ShardInit};
pub use shard::{shard_of, DecisionRequest, DecisionResponse, ShardMsg};
pub use status::{FabricStatus, ShardStatus, StatusBoard};
