//! The serving frontend: episode driving, routing, epoch barriers,
//! hot-swap broadcast, fault handling, and decision accounting.
//!
//! The frontend owns E concurrent episodes (the serving load — each
//! episode is an independent stream of flow decisions) and runs an
//! epoch loop:
//!
//! 1. **Boundary work**: poll the attached [`PolicySlot`] version and,
//!    if it moved, broadcast [`ShardMsg::Swap`] so every shard switches
//!    at this epoch; apply fault-script transitions (kill / respawn /
//!    re-sync).
//! 2. **Collect**: advance every live episode to its next decision
//!    point, observe locally, and route the request to the shard owning
//!    the node — or answer immediately with the shortest-path fallback
//!    if that shard is down.
//! 3. **Flush**: send the epoch barrier; each shard answers its queued
//!    requests from one batched forward.
//! 4. **Apply**: apply every answer in episode order and account for
//!    every decision (batched + fallback == total, always).
//!
//! Determinism: each episode's simulation consumes exactly the decision
//! sequence a per-decision run would produce, batch order is fixed by
//! request id, and per-node RNG streams live with the owning shard —
//! so shard count cannot change any decision.

use crate::control::{ControlQueue, PublishScope};
use crate::fault::{FaultKind, FaultScript};
use crate::shard::{
    run_shard, shard_of, DecisionRequest, DecisionResponse, ShardMsg, ShardWorker,
};
use crate::status::{FabricStatus, ShardStatus, StatusBoard};
use crossbeam::channel::TryRecvError;
use crossbeam::thread::{Scope, ScopedJoinHandle};
use dosco_core::policy::PolicyMetadata;
use dosco_core::CoordinationPolicy;
use dosco_net::{BoxTx, InProcess, Rx, Transport};
use dosco_obs::registry;
use dosco_obs::{CounterKind, SpanKind};
use dosco_runtime::{PolicySlot, PolicySnapshot};
use dosco_simnet::{Action, ChurnTimeline, Metrics, ScenarioConfig, Simulation};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default [`ServeConfig::gather_stall`]: how long a flush barrier may
/// go unanswered before every shard still owing a batch is declared
/// dead and its decisions fall back. Batches are at most one row per
/// episode, so a healthy shard answers in microseconds; ten seconds of
/// silence means the peer is gone.
pub const GATHER_STALL: Duration = Duration::from_secs(10);

/// Configuration of the serving fabric.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker shards the nodes are partitioned across (clamped to the
    /// node count).
    pub num_shards: usize,
    /// Bounded mailbox capacity per shard. Shards drain continuously,
    /// so a small capacity only adds backpressure, never deadlock.
    pub mailbox_capacity: usize,
    /// `Some(seed)` samples actions from per-node RNG streams
    /// (`per_node_seed(seed, node)`); `None` serves greedy argmax.
    pub stochastic_seed: Option<u64>,
    /// Serve batched decisions from int8-quantized weights
    /// ([`dosco_nn::QuantizedMlp`]). Greedy-only: the contract is argmax
    /// agreement on logits, not bit-identical probabilities, so
    /// [`ServeConfig::validate`] rejects combining this with
    /// `stochastic_seed`.
    pub quantized: bool,
    /// Epoch-scripted fault injection.
    pub faults: FaultScript,
    /// Control-plane directive queue, drained at every epoch boundary
    /// (subset-targeted publishes for canary/rollback). `None` (the
    /// default) costs one `Option` check per epoch.
    pub control: Option<Arc<ControlQueue>>,
    /// Live status board the frontend publishes a [`FabricStatus`] to at
    /// every epoch boundary. `None` (the default) costs one `Option`
    /// check per epoch.
    pub status: Option<Arc<StatusBoard>>,
    /// Cooperative cancellation flag, checked at every epoch boundary:
    /// once set, the fabric shuts down gracefully (shards join, every
    /// applied decision stays accounted) and returns the partial outcome.
    /// `None` (the default) costs one `Option` check per epoch.
    pub cancel: Option<Arc<AtomicBool>>,
    /// How long a flush barrier may go unanswered before the shards
    /// still owing a batch are declared dead and their routed decisions
    /// fall back to shortest-path. Batches are at most one row per
    /// episode, so a healthy shard answers in microseconds; the default
    /// ([`GATHER_STALL`], 10 s) means the peer is gone.
    pub gather_stall: Duration,
    /// Substrate churn timeline applied to every served episode (each
    /// episode seed runs the same timeline, like the seeded evaluation
    /// protocol). `None` — and the empty timeline — serve a static
    /// substrate, bit-identical to the pre-churn fabric.
    pub churn: Option<ChurnTimeline>,
}

/// Attachments compare by identity: two configs are equal when they
/// point at the *same* queue/board (or both at none).
impl PartialEq for ServeConfig {
    fn eq(&self, other: &Self) -> bool {
        fn same<T>(a: &Option<Arc<T>>, b: &Option<Arc<T>>) -> bool {
            match (a, b) {
                (None, None) => true,
                (Some(x), Some(y)) => Arc::ptr_eq(x, y),
                _ => false,
            }
        }
        self.num_shards == other.num_shards
            && self.mailbox_capacity == other.mailbox_capacity
            && self.stochastic_seed == other.stochastic_seed
            && self.quantized == other.quantized
            && self.faults == other.faults
            && same(&self.control, &other.control)
            && same(&self.status, &other.status)
            && same(&self.cancel, &other.cancel)
            && self.gather_stall == other.gather_stall
            && self.churn == other.churn
    }
}

impl Eq for ServeConfig {}

impl ServeConfig {
    /// A greedy, fault-free configuration with `num_shards` shards.
    pub fn new(num_shards: usize) -> Self {
        ServeConfig {
            num_shards,
            mailbox_capacity: 64,
            stochastic_seed: None,
            quantized: false,
            faults: FaultScript::new(),
            control: None,
            status: None,
            cancel: None,
            gather_stall: GATHER_STALL,
            churn: None,
        }
    }

    /// Attaches a control-plane directive queue.
    #[must_use]
    pub fn with_control(mut self, control: Arc<ControlQueue>) -> Self {
        self.control = Some(control);
        self
    }

    /// Attaches a live status board.
    #[must_use]
    pub fn with_status(mut self, status: Arc<StatusBoard>) -> Self {
        self.status = Some(status);
        self
    }

    /// Attaches a cooperative cancellation flag.
    #[must_use]
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Switches to stochastic serving with per-node streams from `seed`.
    #[must_use]
    pub fn with_stochastic_seed(mut self, seed: u64) -> Self {
        self.stochastic_seed = Some(seed);
        self
    }

    /// Switches batched forwards to the int8-quantized inference path.
    #[must_use]
    pub fn with_quantized(mut self) -> Self {
        self.quantized = true;
        self
    }

    /// Installs a fault script.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultScript) -> Self {
        self.faults = faults;
        self
    }

    /// Applies a substrate churn timeline to every served episode.
    #[must_use]
    pub fn with_churn(mut self, churn: ChurnTimeline) -> Self {
        self.churn = Some(churn);
        self
    }

    /// Builds one episode simulator, applying the configured churn
    /// timeline if any.
    pub(crate) fn build_sim(&self, scenario: &ScenarioConfig, seed: u64) -> Simulation {
        match &self.churn {
            Some(tl) => Simulation::with_churn(scenario.clone(), seed, tl.clone()),
            None => Simulation::new(scenario.clone(), seed),
        }
    }

    /// Checks the configuration is usable.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_shards == 0 {
            return Err("num_shards must be at least 1".into());
        }
        if self.mailbox_capacity < 2 {
            return Err("mailbox_capacity must be at least 2".into());
        }
        if self.gather_stall.is_zero() {
            return Err("gather_stall must be non-zero".into());
        }
        if self.quantized && self.stochastic_seed.is_some() {
            return Err(
                "quantized serving is greedy-only: its contract is argmax agreement, \
                 which says nothing about the sampled distribution"
                    .into(),
            );
        }
        Ok(())
    }
}

/// Counters the fabric reports after a run. The conservation invariant
/// — every decision is either batched through a shard or answered by
/// the fallback — is checked before the report is returned.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Epoch-loop iterations (including the final empty epoch).
    pub epochs: u64,
    /// Total decisions applied to episodes.
    pub decisions: u64,
    /// Decisions answered by shard batches.
    pub batched_decisions: u64,
    /// Decisions answered by the shortest-path fallback while the
    /// owning shard was down.
    pub fallback_decisions: u64,
    /// Policy hot-swaps broadcast (version changes observed on the hub).
    pub swaps: u64,
    /// Control-queue publishes applied at epoch boundaries (targeted or
    /// fabric-wide).
    pub directed_publishes: u64,
    /// Shards shut down by kill windows.
    pub shard_kills: u64,
    /// Shards respawned after kill windows (re-synced to the latest
    /// published version).
    pub shard_respawns: u64,
    /// Shards lost to a dead transport (send failed or a barrier went
    /// unanswered past the stall deadline). Unlike fault-script kills,
    /// a disconnected shard is never respawned — its decisions fall
    /// back to shortest-path for the rest of the run.
    pub shard_disconnects: u64,
    /// Largest batched forward, in rows.
    pub max_batch_rows: u64,
    /// Policy version the fabric ended on.
    pub final_version: u64,
    /// Per-shard policy version at shutdown.
    pub shard_versions: Vec<u64>,
    /// Batched decisions answered by each shard.
    pub shard_batched: Vec<u64>,
    /// Fallback decisions attributed to each (down/delayed) shard.
    pub shard_fallback: Vec<u64>,
    /// Batched decisions per policy version, ascending by version.
    pub decisions_by_version: Vec<(u64, u64)>,
}

impl ServeReport {
    /// Whether every decision is accounted for: batched + fallback ==
    /// total. The fabric asserts this before returning.
    pub fn conserved(&self) -> bool {
        self.decisions == self.batched_decisions + self.fallback_decisions
    }
}

/// The result of a serving run: per-episode metrics plus the report.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutcome {
    /// Final metrics of each episode, in `episode_seeds` order —
    /// directly comparable to per-decision `evaluate` runs.
    pub metrics: Vec<Metrics>,
    /// The fabric's accounting.
    pub report: ServeReport,
}

/// Builds the servable policy from a published snapshot. Runs on the
/// frontend thread so a bad snapshot fails loudly there, never inside a
/// shard holding un-answered requests.
fn policy_from_snapshot(snap: &PolicySnapshot, degree: usize) -> CoordinationPolicy {
    CoordinationPolicy::new(
        snap.actor.clone(),
        degree,
        PolicyMetadata {
            algorithm: format!("hub-snapshot-v{}", snap.version),
            ..PolicyMetadata::default()
        },
    )
}

/// One shard as the frontend sees it.
pub(crate) struct ShardHandle<'scope> {
    /// Mailbox sender; `None` while the shard is killed.
    pub(crate) tx: Option<BoxTx<ShardMsg>>,
    /// Worker thread for locally-launched shards; `None` for shards that
    /// live in another process (their lifecycle is the connection's).
    pub(crate) join: Option<ScopedJoinHandle<'scope, ()>>,
    /// Policy version last delivered to this shard.
    pub(crate) version: u64,
    /// The shard's transport died (send failure, launch failure, or a
    /// stalled barrier). A dead shard is never respawned: the peer is
    /// gone, not scripted to come back like a fault-window kill.
    pub(crate) dead: bool,
}

impl ShardHandle<'_> {
    fn alive(&self) -> bool {
        self.tx.is_some()
    }

    /// A handle for a shard that could not be launched or whose
    /// transport failed: routes fall back immediately, never respawns.
    pub(crate) fn dead(version: u64) -> Self {
        ShardHandle {
            tx: None,
            join: None,
            version,
            dead: true,
        }
    }
}

/// Marks a shard's transport as dead: drops the mailbox (so routing
/// falls back), suppresses respawn, and counts the disconnect.
fn disconnect(h: &mut ShardHandle<'_>, report: &mut ServeReport) {
    h.tx = None;
    h.dead = true;
    report.shard_disconnects += 1;
}

/// How the frontend brings shard `index` up with a starting policy:
/// locally (spawn a worker thread over a transport channel) or remotely
/// (hand an accepted connection its `ShardInit`). The epoch loop is
/// launcher-agnostic — this is what keeps the in-process, loopback-TCP,
/// and multi-process serve paths on the *same* decision arithmetic.
pub(crate) trait ShardLauncher<'scope> {
    fn launch(
        &mut self,
        index: usize,
        policy: Arc<CoordinationPolicy>,
        version: u64,
    ) -> ShardHandle<'scope>;
}

/// Launches shard workers on scoped threads, wired over any transport.
struct LocalLauncher<'a, 'scope, 'env, Tr> {
    scope: &'a Scope<'scope, 'env>,
    transport: &'a Tr,
    cfg: &'a ServeConfig,
    num_shards: usize,
    num_nodes: usize,
    resp_tx: &'a BoxTx<Vec<DecisionResponse>>,
}

impl<'scope, Tr> ShardLauncher<'scope> for LocalLauncher<'_, 'scope, '_, Tr>
where
    Tr: Transport<ShardMsg> + Transport<Vec<DecisionResponse>>,
{
    fn launch(
        &mut self,
        index: usize,
        policy: Arc<CoordinationPolicy>,
        version: u64,
    ) -> ShardHandle<'scope> {
        let (tx, rx) = Transport::<ShardMsg>::channel(self.transport, self.cfg.mailbox_capacity);
        let responses = self.resp_tx.clone_box();
        let stochastic_seed = self.cfg.stochastic_seed;
        let quantized = self.cfg.quantized;
        let (num_shards, num_nodes) = (self.num_shards, self.num_nodes);
        let join = self.scope.spawn(move |_| {
            run_shard(ShardWorker {
                index,
                num_shards,
                num_nodes,
                stochastic_seed,
                quantized,
                policy,
                version,
                mailbox: rx,
                responses,
            });
        });
        ShardHandle {
            tx: Some(tx),
            join: Some(join),
            version,
            dead: false,
        }
    }
}

/// Falls back every still-unanswered decision routed to `shard` this
/// epoch: its transport died between route and response, so the stored
/// decision points are answered by shortest-path coordination instead.
#[allow(clippy::too_many_arguments)]
fn fall_back_routed(
    shard: usize,
    sims: &[Simulation],
    dps: &mut [Option<dosco_simnet::DecisionPoint>],
    routed_to: &mut [Option<usize>],
    actions: &mut [Option<Action>],
    report: &mut ServeReport,
    shard_fallback: &mut [u64],
    expected: &mut usize,
) {
    for e in 0..sims.len() {
        if routed_to[e] == Some(shard) && actions[e].is_none() {
            let dp = dps[e].take().expect("routed episode has a decision point");
            routed_to[e] = None;
            actions[e] = Some(dosco_baselines::sp_action(&sims[e], &dp));
            report.fallback_decisions += 1;
            shard_fallback[shard] += 1;
            *expected -= 1;
            registry::count(CounterKind::ServeFallbacks, 1);
        }
    }
}

/// Joins a shard thread, re-raising any panic from it.
fn join_shard(h: &mut ShardHandle<'_>) {
    if let Some(j) = h.join.take() {
        if let Err(payload) = j.join() {
            std::panic::resume_unwind(payload);
        }
    }
}

/// Serves `episode_seeds.len()` concurrent episodes of `scenario`
/// through the sharded fabric. See [`serve_with`] for the epoch hook.
///
/// # Panics
///
/// See [`serve_with`].
pub fn serve(
    policy: &CoordinationPolicy,
    hub: Option<&PolicySlot>,
    scenario: &ScenarioConfig,
    episode_seeds: &[u64],
    cfg: &ServeConfig,
) -> ServeOutcome {
    serve_with(policy, hub, scenario, episode_seeds, cfg, |_| {})
}

/// Like [`serve`], with `on_epoch(epoch)` invoked at every epoch
/// boundary *before* the hub poll. The hook is the deterministic
/// injection point: a test (or the example) publishes a snapshot to the
/// hub at an exact epoch and the swap lands at that boundary on every
/// run.
///
/// When `hub` is attached, the fabric deploys the hub's **latest**
/// snapshot and follows subsequent publishes; `policy` then only fixes
/// the observation contract (padded degree). Without a hub, `policy`
/// itself is served at version 0.
///
/// # Panics
///
/// Panics if `episode_seeds` is empty, the configuration is invalid,
/// the scenario is invalid, or a hub snapshot's actor does not match
/// the policy's observation contract (`4·Δ+4` in, `Δ+1` out).
pub fn serve_with(
    policy: &CoordinationPolicy,
    hub: Option<&PolicySlot>,
    scenario: &ScenarioConfig,
    episode_seeds: &[u64],
    cfg: &ServeConfig,
    on_epoch: impl FnMut(u64),
) -> ServeOutcome {
    serve_with_transport(policy, hub, scenario, episode_seeds, cfg, &InProcess, on_epoch)
}

/// Like [`serve_with`], but every mailbox and response channel is opened
/// by `transport`: with [`InProcess`] this *is* [`serve_with`]; with
/// `dosco_net::SocketLoopback` every request, flush barrier, swap, and
/// response crosses a framed, checksummed TCP stream — and the served
/// decisions are bit-identical (pinned by test). The truly multi-process
/// deployment (shards in other OS processes) is [`crate::remote`], built
/// on the same epoch loop.
///
/// # Panics
///
/// As [`serve_with`].
pub fn serve_with_transport<Tr>(
    policy: &CoordinationPolicy,
    hub: Option<&PolicySlot>,
    scenario: &ScenarioConfig,
    episode_seeds: &[u64],
    cfg: &ServeConfig,
    transport: &Tr,
    mut on_epoch: impl FnMut(u64),
) -> ServeOutcome
where
    Tr: Transport<ShardMsg> + Transport<Vec<DecisionResponse>>,
{
    cfg.validate().expect("serve configuration must be valid");
    assert!(!episode_seeds.is_empty(), "need at least one episode");
    let num_nodes = scenario.topology.num_nodes();
    let num_shards = cfg.num_shards.min(num_nodes);

    let mut sims: Vec<Simulation> = episode_seeds
        .iter()
        .map(|&s| cfg.build_sim(scenario, s))
        .collect();

    let (resp_tx, resp_rx) = Transport::<Vec<DecisionResponse>>::channel(transport, num_shards + 1);

    let (metrics, report) = crossbeam::thread::scope(|s| {
        let mut launcher = LocalLauncher {
            scope: s,
            transport,
            cfg,
            num_shards,
            num_nodes,
            resp_tx: &resp_tx,
        };
        serve_core(
            policy,
            hub,
            &mut sims,
            num_shards,
            cfg,
            &mut launcher,
            resp_rx.as_ref(),
            &mut on_epoch,
        )
    })
    .expect("serve scope");

    assert!(
        report.conserved(),
        "decision conservation violated: {} != {} batched + {} fallback",
        report.decisions,
        report.batched_decisions,
        report.fallback_decisions
    );
    ServeOutcome { metrics, report }
}

/// The launcher-agnostic epoch loop (see module docs for the four
/// phases). Shared verbatim by every serve entry point — in-process,
/// loopback-TCP, and multi-process — so transport and process topology
/// cannot change decision arithmetic.
#[allow(clippy::too_many_lines)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn serve_core<'scope>(
    policy: &CoordinationPolicy,
    hub: Option<&PolicySlot>,
    sims: &mut [Simulation],
    num_shards: usize,
    cfg: &ServeConfig,
    launcher: &mut dyn ShardLauncher<'scope>,
    resp_rx: &dyn Rx<Vec<DecisionResponse>>,
    on_epoch: &mut dyn FnMut(u64),
) -> (Vec<Metrics>, ServeReport) {
    let degree = policy.degree();
    let adapter = policy.adapter();
    let episodes = sims.len();

    // The policy being served: the hub's latest snapshot when attached,
    // else the caller's policy at version 0.
    let (mut current, mut current_version) = match hub {
        Some(h) => {
            let snap = h.latest();
            (Arc::new(policy_from_snapshot(&snap, degree)), snap.version)
        }
        None => (Arc::new(policy.clone()), 0),
    };

    let mut shards: Vec<ShardHandle> = (0..num_shards)
        .map(|i| launcher.launch(i, Arc::clone(&current), current_version))
        .collect();

    let mut report = ServeReport::default();
    let mut by_version: BTreeMap<u64, u64> = BTreeMap::new();
    let mut live = vec![true; episodes];
    let mut actions: Vec<Option<Action>> = vec![None; episodes];
    let mut starts: Vec<Option<Instant>> = vec![None; episodes];
    let mut routed = vec![false; num_shards];
    // Per-epoch record of what was routed where: enough to answer any
    // routed decision with the shortest-path fallback if the owning
    // shard's transport dies between route and response.
    let mut dps: Vec<Option<dosco_simnet::DecisionPoint>> = vec![None; episodes];
    let mut routed_to: Vec<Option<usize>> = vec![None; episodes];
    let mut events_scratch = Vec::new();
    let mut shard_batched = vec![0u64; num_shards];
    let mut shard_fallback = vec![0u64; num_shards];
    // The policy each shard *should* run. Hub publishes and All-scope
    // directives set every entry; targeted directives set a subset —
    // respawns and lag re-syncs always converge a shard onto its own
    // entry, so a killed canary shard comes back as a canary.
    let mut desired: Vec<(Arc<CoordinationPolicy>, u64)> =
        vec![(Arc::clone(&current), current_version); num_shards];
    let mut next_id: u64 = 0;
    let mut epoch: u64 = 0;

    loop {
        if cfg
            .cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::Relaxed))
        {
            epoch += 1;
            break;
        }
        on_epoch(epoch);

        // -- Epoch-boundary work: hot-swap poll, control directives,
        // fault transitions.
        if let Some(h) = hub {
            if h.version() != current_version {
                let snap = h.latest();
                current = Arc::new(policy_from_snapshot(&snap, degree));
                current_version = snap.version;
                desired.fill((Arc::clone(&current), current_version));
                report.swaps += 1;
                registry::count(CounterKind::ServeSwaps, 1);
            }
        }
        if let Some(q) = cfg.control.as_ref() {
            if q.is_pending() {
                for cmd in q.drain() {
                    let policy = Arc::new(policy_from_snapshot(&cmd.snapshot, degree));
                    let version = cmd.snapshot.version;
                    match &cmd.scope {
                        PublishScope::All => {
                            // `desired` is the source of truth for swaps
                            // and respawns; `current` itself is only read
                            // when rebuilt from a hub snapshot.
                            current_version = version;
                            desired.fill((Arc::clone(&policy), version));
                        }
                        PublishScope::Shards(targets) => {
                            for &t in targets {
                                if t < num_shards {
                                    desired[t] = (Arc::clone(&policy), version);
                                }
                            }
                        }
                    }
                    report.directed_publishes += 1;
                }
            }
        }
        let states: Vec<Option<FaultKind>> =
            (0..num_shards).map(|i| cfg.faults.state(i, epoch)).collect();
        for i in 0..num_shards {
            let h = &mut shards[i];
            if states[i] == Some(FaultKind::Kill) && h.alive() {
                // Window start: take the worker down for real.
                let tx = h.tx.take().expect("alive shard has a mailbox");
                let _ = tx.send(ShardMsg::Shutdown);
                drop(tx);
                join_shard(h);
                report.shard_kills += 1;
            } else if states[i].is_none() {
                let (want, want_version) = &desired[i];
                if !h.alive() {
                    // Window end: respawn, re-synced to the shard's
                    // desired policy (fresh mailbox, fresh state). A
                    // *disconnected* shard is not respawned — the peer
                    // is gone, not scripted to return.
                    if !h.dead {
                        *h = launcher.launch(i, Arc::clone(want), *want_version);
                        report.shard_respawns += 1;
                    }
                } else if h.version != *want_version {
                    // Reachable shard lagging its desired policy:
                    // deliver the swap at this boundary (covers the
                    // global broadcast, targeted publishes, rollback
                    // republishes, and post-delay re-sync).
                    let tx = h.tx.as_ref().expect("alive shard has a mailbox");
                    if tx
                        .send(ShardMsg::Swap {
                            policy: Arc::clone(want),
                            version: *want_version,
                        })
                        .is_ok()
                    {
                        h.version = *want_version;
                    } else {
                        // Dead peer mid-swap: degrade, don't panic.
                        disconnect(h, &mut report);
                    }
                }
            }
        }

        // -- Status publish: one snapshot per boundary, only when a
        // board is attached (detached fabrics skip in one branch).
        if let Some(board) = cfg.status.as_ref() {
            let mut arrived = 0;
            let mut completed = 0;
            let mut dropped = 0;
            for sim in sims.iter() {
                let m = sim.metrics();
                arrived += m.arrived;
                completed += m.completed;
                dropped += m.dropped_total();
            }
            board.publish(FabricStatus {
                epoch,
                live_episodes: live.iter().filter(|&&l| l).count() as u64,
                decisions: report.decisions,
                swaps: report.swaps,
                directed_publishes: report.directed_publishes,
                current_version,
                shards: shards
                    .iter()
                    .enumerate()
                    .map(|(i, h)| ShardStatus {
                        shard: i,
                        alive: h.alive(),
                        version: h.version,
                        batched_decisions: shard_batched[i],
                        fallback_decisions: shard_fallback[i],
                    })
                    .collect(),
                decisions_by_version: by_version.iter().map(|(&v, &n)| (v, n)).collect(),
                flows_arrived: arrived,
                flows_completed: completed,
                flows_dropped: dropped,
            });
        }

        // -- Collect one pending decision per live episode.
        let spans_on = dosco_obs::spans_enabled();
        let mut expected = 0usize;
        let mut fell_back = 0u64;
        routed.fill(false);
        dps.fill(None);
        routed_to.fill(None);
        for e in 0..episodes {
            if !live[e] {
                continue;
            }
            let sim = &mut sims[e];
            // Coordinator events are dropped, as the in-process
            // deployment's no-op `observe` does. Drained into a
            // recycled scratch buffer: no per-epoch allocation.
            sim.drain_events_into(&mut events_scratch);
            let Some(dp) = sim.next_decision() else {
                live[e] = false;
                continue;
            };
            if spans_on {
                starts[e] = Some(Instant::now());
            }
            let owner = shard_of(dp.node.0, num_shards);
            let mut fall_back = states[owner].is_some() || !shards[owner].alive();
            if !fall_back {
                let obs = adapter.observe(sim, &dp);
                let tx = shards[owner].tx.as_ref().expect("alive shard has a mailbox");
                if tx
                    .send(ShardMsg::Request(DecisionRequest {
                        id: next_id,
                        episode: e,
                        node: dp.node,
                        obs,
                    }))
                    .is_ok()
                {
                    next_id += 1;
                    expected += 1;
                    routed[owner] = true;
                    dps[e] = Some(dp);
                    routed_to[e] = Some(owner);
                } else {
                    // Dead peer discovered on route: degrade this (and
                    // every later) decision for the shard, don't panic.
                    disconnect(&mut shards[owner], &mut report);
                    fall_back = true;
                }
            }
            if fall_back {
                // Graceful degradation: the decision is answered now
                // by shortest-path coordination and counted — never
                // silently dropped.
                actions[e] = Some(dosco_baselines::sp_action(sim, &dp));
                report.fallback_decisions += 1;
                shard_fallback[owner] += 1;
                fell_back += 1;
                registry::count(CounterKind::ServeFallbacks, 1);
            }
        }
        if expected == 0 && fell_back == 0 {
            // Every episode reached its horizon.
            epoch += 1;
            break;
        }

        // -- Flush barriers, then gather one answer batch per routed
        // shard (exactly `expected` responses in total). A shard whose
        // transport dies at the barrier — or that never answers within
        // the stall deadline — is marked dead and its routed decisions
        // fall back to shortest-path; the epoch still completes.
        for i in 0..num_shards {
            if routed[i] {
                let ok = shards[i]
                    .tx
                    .as_ref()
                    .is_some_and(|tx| tx.send(ShardMsg::Flush { epoch }).is_ok());
                if !ok {
                    disconnect(&mut shards[i], &mut report);
                    routed[i] = false;
                    fall_back_routed(
                        i,
                        sims,
                        &mut dps,
                        &mut routed_to,
                        &mut actions,
                        &mut report,
                        &mut shard_fallback,
                        &mut expected,
                    );
                }
            }
        }
        let mut received = 0usize;
        let mut waiting = routed.iter().filter(|&&r| r).count();
        let mut last_progress = Instant::now();
        let mut idle = 0u32;
        while waiting > 0 {
            match resp_rx.try_recv() {
                Ok(answers) => {
                    last_progress = Instant::now();
                    idle = 0;
                    // One batch per routed shard per barrier. A batch
                    // from a shard no longer waited on is a straggler
                    // from a barrier that already fell back (the shard
                    // is dead; its decisions were answered) — dropped.
                    if !answers.first().is_some_and(|r| routed[r.shard]) {
                        continue;
                    }
                    routed[answers[0].shard] = false;
                    waiting -= 1;
                    received += answers.len();
                    for resp in answers {
                        actions[resp.episode] = Some(Action::from_index(resp.action_index));
                        *by_version.entry(resp.version).or_insert(0) += 1;
                        report.batched_decisions += 1;
                        shard_batched[resp.shard] += 1;
                        report.max_batch_rows = report.max_batch_rows.max(resp.batch_rows as u64);
                    }
                }
                Err(e) => {
                    let stalled = matches!(e, TryRecvError::Disconnected)
                        || last_progress.elapsed() >= cfg.gather_stall;
                    if stalled {
                        // Residual window: a shard that dies *after* its
                        // flush was delivered leaves nothing to read, so
                        // the only signal is silence. Declare every
                        // still-unanswered shard dead and degrade.
                        for i in 0..num_shards {
                            if routed[i] {
                                disconnect(&mut shards[i], &mut report);
                                routed[i] = false;
                                fall_back_routed(
                                    i,
                                    sims,
                                    &mut dps,
                                    &mut routed_to,
                                    &mut actions,
                                    &mut report,
                                    &mut shard_fallback,
                                    &mut expected,
                                );
                            }
                        }
                        waiting = 0;
                    } else if idle < 1024 {
                        // Yield first: on a loaded machine the shard
                        // thread needs this core to compute the batch.
                        idle += 1;
                        std::thread::yield_now();
                    } else {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                }
            }
        }
        debug_assert_eq!(received, expected, "every routed request answered once");

        // -- Apply in episode order.
        for e in 0..episodes {
            if let Some(a) = actions[e].take() {
                sims[e].apply(a);
                report.decisions += 1;
                registry::count(CounterKind::ServeDecisions, 1);
                if let Some(t0) = starts[e].take() {
                    registry::record_span_ns(
                        SpanKind::ServeDecision,
                        u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    );
                }
            }
        }
        epoch += 1;
    }

    // -- Graceful shutdown: barrier-free mailboxes are empty here.
    for h in &mut shards {
        if let Some(tx) = h.tx.take() {
            let _ = tx.send(ShardMsg::Shutdown);
        }
    }
    for h in &mut shards {
        join_shard(h);
    }

    report.epochs = epoch;
    report.final_version = current_version;
    report.shard_versions = shards.iter().map(|h| h.version).collect();
    report.shard_batched = shard_batched;
    report.shard_fallback = shard_fallback;
    report.decisions_by_version = by_version.into_iter().collect();
    let metrics: Vec<Metrics> = sims.iter().map(|sim| sim.metrics().clone()).collect();

    // Final status so post-run snapshots show the completed totals.
    if let Some(board) = cfg.status.as_ref() {
        let mut status = board.snapshot();
        status.epoch = report.epochs;
        status.live_episodes = 0;
        status.decisions = report.decisions;
        status.swaps = report.swaps;
        status.directed_publishes = report.directed_publishes;
        status.current_version = report.final_version;
        for (i, st) in status.shards.iter_mut().enumerate() {
            st.batched_decisions = report.shard_batched[i];
            st.fallback_decisions = report.shard_fallback[i];
            st.version = report.shard_versions[i];
        }
        status.decisions_by_version = report.decisions_by_version.clone();
        status.flows_arrived = metrics.iter().map(|m| m.arrived).sum();
        status.flows_completed = metrics.iter().map(|m| m.completed).sum();
        status.flows_dropped = metrics.iter().map(|m| m.dropped_total()).sum();
        board.publish(status);
    }
    (metrics, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosco_nn::mlp::{Activation, Mlp};
    use rand::SeedableRng;

    fn policy(degree: usize) -> CoordinationPolicy {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let actor = Mlp::new(&[4 * degree + 4, 16, degree + 1], Activation::Tanh, &mut rng);
        CoordinationPolicy::new(actor, degree, PolicyMetadata::default())
    }

    #[test]
    fn config_validation() {
        assert!(ServeConfig::new(1).validate().is_ok());
        assert!(ServeConfig::new(0).validate().is_err());
        let mut c = ServeConfig::new(2);
        c.mailbox_capacity = 1;
        assert!(c.validate().is_err());
        let mut c = ServeConfig::new(2);
        c.gather_stall = Duration::ZERO;
        assert!(c.validate().is_err());
        // Quantized serving is greedy-only: the decision-equivalence
        // contract is argmax agreement, which a sampled distribution
        // does not inherit.
        assert!(ServeConfig::new(2).with_quantized().validate().is_ok());
        assert!(ServeConfig::new(2)
            .with_quantized()
            .with_stochastic_seed(7)
            .validate()
            .is_err());
    }

    /// Drives `serve_core` directly with a custom launcher (the trait is
    /// crate-private), mirroring `serve_with_transport`'s wiring.
    fn run_core(
        launcher: &mut dyn ShardLauncher<'static>,
        cfg: &ServeConfig,
        num_shards: usize,
    ) -> (Vec<Metrics>, ServeReport) {
        let scenario = ScenarioConfig::paper_base(2).with_horizon(200.0);
        let p = policy(scenario.topology.network_degree());
        let mut sims: Vec<Simulation> = [1u64, 2]
            .iter()
            .map(|&s| Simulation::new(scenario.clone(), s))
            .collect();
        let (_resp_tx, resp_rx) =
            Transport::<Vec<DecisionResponse>>::channel(&InProcess, num_shards + 1);
        serve_core(
            &p,
            None,
            &mut sims,
            num_shards,
            cfg,
            launcher,
            resp_rx.as_ref(),
            &mut |_| {},
        )
    }

    /// Shards that cannot even be launched (e.g. a remote connection
    /// that failed its handshake) must degrade to the shortest-path
    /// fallback, not panic the frontend.
    #[test]
    fn dead_on_arrival_shards_degrade_to_fallback() {
        struct DeadLauncher;
        impl ShardLauncher<'static> for DeadLauncher {
            fn launch(
                &mut self,
                _index: usize,
                _policy: Arc<CoordinationPolicy>,
                version: u64,
            ) -> ShardHandle<'static> {
                ShardHandle::dead(version)
            }
        }
        let (metrics, report) = run_core(&mut DeadLauncher, &ServeConfig::new(2), 2);
        assert!(report.decisions > 0);
        assert!(report.conserved());
        assert_eq!(report.batched_decisions, 0);
        assert_eq!(report.fallback_decisions, report.decisions);
        // Dead handles are never respawned.
        assert_eq!(report.shard_respawns, 0);
        assert_eq!(metrics.len(), 2);
    }

    /// A transport that dies before the first routed request: the send
    /// fails, the shard is marked disconnected, and every one of its
    /// decisions is answered by the fallback.
    #[test]
    fn dead_transport_on_route_falls_back_without_panicking() {
        struct DroppedRxLauncher;
        impl ShardLauncher<'static> for DroppedRxLauncher {
            fn launch(
                &mut self,
                _index: usize,
                _policy: Arc<CoordinationPolicy>,
                version: u64,
            ) -> ShardHandle<'static> {
                let (tx, rx) = Transport::<ShardMsg>::channel(&InProcess, 4);
                drop(rx);
                ShardHandle {
                    tx: Some(tx),
                    join: None,
                    version,
                    dead: false,
                }
            }
        }
        let (_, report) = run_core(&mut DroppedRxLauncher, &ServeConfig::new(2), 2);
        assert!(report.conserved());
        assert_eq!(report.batched_decisions, 0);
        assert_eq!(report.fallback_decisions, report.decisions);
        assert!(report.shard_disconnects >= 1);
        assert_eq!(report.shard_respawns, 0);
    }

    /// A shard that swallows its requests and barrier without ever
    /// answering: the gather loop stalls out, declares it dead, and the
    /// routed decisions fall back from their stored decision points.
    #[test]
    fn unanswered_barrier_stalls_out_and_falls_back() {
        struct SilentLauncher;
        impl ShardLauncher<'static> for SilentLauncher {
            fn launch(
                &mut self,
                _index: usize,
                _policy: Arc<CoordinationPolicy>,
                version: u64,
            ) -> ShardHandle<'static> {
                let (tx, rx) = Transport::<ShardMsg>::channel(&InProcess, 64);
                // Consume everything, answer nothing: the frontend's
                // only signal is silence at the barrier.
                std::thread::spawn(move || while rx.recv().is_ok() {});
                ShardHandle {
                    tx: Some(tx),
                    join: None,
                    version,
                    dead: false,
                }
            }
        }
        let mut cfg = ServeConfig::new(1);
        cfg.gather_stall = Duration::from_millis(200);
        let (_, report) = run_core(&mut SilentLauncher, &cfg, 1);
        assert!(report.conserved());
        assert_eq!(report.batched_decisions, 0);
        assert_eq!(report.fallback_decisions, report.decisions);
        assert_eq!(report.shard_disconnects, 1);
        assert_eq!(report.shard_respawns, 0);
    }

    #[test]
    fn smoke_run_accounts_for_every_decision() {
        let scenario = ScenarioConfig::paper_base(2).with_horizon(200.0);
        let p = policy(scenario.topology.network_degree());
        let out = serve(&p, None, &scenario, &[1, 2], &ServeConfig::new(2));
        assert!(out.report.decisions > 0);
        assert!(out.report.conserved());
        assert_eq!(out.report.fallback_decisions, 0);
        assert_eq!(out.metrics.len(), 2);
        assert_eq!(out.report.final_version, 0);
        // All batched decisions served at version 0.
        assert_eq!(
            out.report.decisions_by_version,
            vec![(0, out.report.batched_decisions)]
        );
    }

    #[test]
    #[should_panic(expected = "at least one episode")]
    fn rejects_empty_episode_list() {
        let scenario = ScenarioConfig::paper_base(1);
        let p = policy(scenario.topology.network_degree());
        serve(&p, None, &scenario, &[], &ServeConfig::new(1));
    }

    /// More shards than nodes is clamped, not an error.
    #[test]
    fn clamps_shards_to_node_count() {
        let scenario = ScenarioConfig::paper_base(1).with_horizon(100.0);
        let p = policy(scenario.topology.network_degree());
        let out = serve(&p, None, &scenario, &[3], &ServeConfig::new(1000));
        assert!(out.report.conserved());
    }
}
