//! Trace sinks: the [`Recorder`] trait, the no-op [`NullRecorder`], and
//! the deterministic [`JsonlRecorder`].

use crate::event::{Event, Stream, SCHEMA_VERSION};
use parking_lot::Mutex;
use serde::{Serialize, Value};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// A sink for trace events. Implementations must be cheap to call from hot
/// paths and safe to share across threads.
pub trait Recorder: Send + Sync + std::fmt::Debug {
    /// Records one event on `stream`. Events within one stream arrive in
    /// emission order (the emitter is sequential); different streams may
    /// record concurrently.
    fn record(&self, stream: Stream, event: &Event);

    /// Persists everything recorded so far.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the sink.
    fn flush(&self) -> io::Result<()>;
}

/// The default sink: discards everything. Kept trivially inlinable so the
/// disabled path costs nothing beyond the enabled-check in [`crate::emit`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline(always)]
    fn record(&self, _stream: Stream, _event: &Event) {}

    #[inline(always)]
    fn flush(&self) -> io::Result<()> {
        Ok(())
    }
}

/// Per-stream line buffer: a sequence counter plus rendered JSONL lines.
#[derive(Debug, Default)]
struct StreamBuf {
    seq: u64,
    lines: Vec<String>,
}

/// Writes one schema-versioned JSON object per line, deterministically.
///
/// Lines are buffered per [`Stream`] as they are recorded (each stream is
/// fed by sequential code, so within-stream order is deterministic) and
/// written grouped by stream in sorted stream order on [`Recorder::flush`].
/// The file bytes therefore depend only on what was emitted — not on how
/// the OS scheduled the emitting threads. Two runs with the same seeds
/// produce byte-identical files.
///
/// Field order inside each line is fixed by the vendored serde's
/// insertion-ordered object model. The first line is a header carrying
/// [`SCHEMA_VERSION`] and the stream/event totals.
#[derive(Debug)]
pub struct JsonlRecorder {
    path: PathBuf,
    streams: Mutex<BTreeMap<Stream, StreamBuf>>,
}

impl JsonlRecorder {
    /// Creates a recorder that will write to `path` on flush.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        JsonlRecorder {
            path: path.into(),
            streams: Mutex::new(BTreeMap::new()),
        }
    }

    /// The output path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of events buffered so far.
    pub fn len(&self) -> usize {
        self.streams.lock().values().map(|b| b.lines.len()).sum()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the full JSONL contents (header plus all lines) without
    /// touching the filesystem. Exposed for tests.
    pub fn render(&self) -> String {
        let streams = self.streams.lock();
        let events: usize = streams.values().map(|b| b.lines.len()).sum();
        let header = Value::Object(vec![
            ("schema".to_string(), Value::UInt(u64::from(SCHEMA_VERSION))),
            ("generated_by".to_string(), Value::Str("dosco_obs".to_string())),
            ("streams".to_string(), Value::UInt(streams.len() as u64)),
            ("events".to_string(), Value::UInt(events as u64)),
        ]);
        let mut out = serde_json::to_string(&header).expect("header serializes");
        out.push('\n');
        for buf in streams.values() {
            for line in &buf.lines {
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }
}

impl Recorder for JsonlRecorder {
    fn record(&self, stream: Stream, event: &Event) {
        let mut streams = self.streams.lock();
        let buf = streams.entry(stream).or_default();
        let line = Value::Object(vec![
            ("stream".to_string(), Value::Str(stream.label())),
            ("seq".to_string(), Value::UInt(buf.seq)),
            ("event".to_string(), event.to_value()),
        ]);
        buf.seq += 1;
        buf.lines
            .push(serde_json::to_string(&line).expect("trace line serializes"));
    }

    fn flush(&self) -> io::Result<()> {
        std::fs::write(&self.path, self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seed: u64, t: f64) -> Event {
        Event::EpisodeStart {
            seed,
            horizon: t,
            nodes: 11,
            links: 14,
            ingresses: 2,
        }
    }

    #[test]
    fn null_recorder_discards() {
        let r = NullRecorder;
        r.record(Stream::sim(1), &sample(1, 10.0));
        r.flush().unwrap();
    }

    #[test]
    fn jsonl_render_is_independent_of_interleaving() {
        // Same per-stream sequences, recorded in different global orders:
        // identical bytes.
        let a = JsonlRecorder::new("/tmp/unused-a.jsonl");
        a.record(Stream::sim(1), &sample(1, 10.0));
        a.record(Stream::sim(2), &sample(2, 10.0));
        a.record(Stream::sim(1), &sample(1, 20.0));

        let b = JsonlRecorder::new("/tmp/unused-b.jsonl");
        b.record(Stream::sim(2), &sample(2, 10.0));
        b.record(Stream::sim(1), &sample(1, 10.0));
        b.record(Stream::sim(1), &sample(1, 20.0));

        assert_eq!(a.render(), b.render());
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn every_line_parses_and_header_counts() {
        let r = JsonlRecorder::new("/tmp/unused-c.jsonl");
        r.record(Stream::learner(), &Event::SnapshotPublished { version: 1, total_steps: 64 });
        r.record(Stream::actor(0), &Event::BatchProduced { actor: 0, version: 0, transitions: 64 });
        let text = r.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let header: Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(header.get("schema").and_then(Value::as_u64), Some(1));
        assert_eq!(header.get("streams").and_then(Value::as_u64), Some(2));
        assert_eq!(header.get("events").and_then(Value::as_u64), Some(2));
        for line in &lines[1..] {
            let v: Value = serde_json::from_str(line).unwrap();
            assert!(v.get("stream").is_some());
            assert!(v.get("seq").is_some());
            assert!(v.get("event").is_some());
        }
    }

    #[test]
    fn seq_numbers_are_per_stream() {
        let r = JsonlRecorder::new("/tmp/unused-d.jsonl");
        for _ in 0..2 {
            r.record(Stream::sim(1), &sample(1, 1.0));
            r.record(Stream::sim(2), &sample(2, 1.0));
        }
        let text = r.render();
        // sim:1 lines come first (sorted), each stream counts 0, 1.
        let seqs: Vec<u64> = text
            .lines()
            .skip(1)
            .map(|l| {
                let v: Value = serde_json::from_str(l).unwrap();
                v.get("seq").and_then(Value::as_u64).unwrap()
            })
            .collect();
        assert_eq!(seqs, vec![0, 1, 0, 1]);
    }

    #[test]
    fn flush_writes_file() {
        let path = std::env::temp_dir().join("dosco_obs_recorder_flush_test.jsonl");
        let r = JsonlRecorder::new(&path);
        r.record(Stream::sim(9), &sample(9, 5.0));
        r.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, r.render());
        let _ = std::fs::remove_file(&path);
    }
}
