//! The trace event schema: what gets written, one JSON object per line,
//! to a `DOSCO_TRACE` file.
//!
//! Every event belongs to a [`Stream`] — one logical emitter (a simulation
//! episode, a rollout actor, the learner) whose events are sequential and
//! deterministic under a fixed seed. The JSONL writer buffers per stream
//! and flushes streams in sorted order, so the file bytes do not depend on
//! thread scheduling (see [`crate::recorder::JsonlRecorder`]).
//!
//! All timestamps are simulation time or caller-supplied ticks (snapshot
//! versions, decision counts) — never wall clock — so two same-seed runs
//! produce identical traces.

use serde::{Deserialize, Serialize};

/// Version of the trace schema, written in the header line. Bump on any
/// change to [`Event`] field names, order, or meaning.
pub const SCHEMA_VERSION: u32 = 1;

/// The kind of logical emitter behind a [`Stream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StreamKind {
    /// Run-level events (one per process/run).
    Run,
    /// One simulation episode, identified by its traffic seed.
    Sim,
    /// One rollout actor thread, identified by its actor index.
    Actor,
    /// The learner loop.
    Learner,
}

impl StreamKind {
    fn tag(self) -> &'static str {
        match self {
            StreamKind::Run => "run",
            StreamKind::Sim => "sim",
            StreamKind::Actor => "actor",
            StreamKind::Learner => "learner",
        }
    }
}

/// A deterministic event stream: all events of one logical emitter, in
/// emission order. Two streams may be written concurrently from different
/// threads; events *within* one stream must come from sequential code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Stream {
    /// The emitter kind.
    pub kind: StreamKind,
    /// Emitter identity within the kind (sim seed, actor index, 0).
    pub id: u64,
}

impl Stream {
    /// The run-level stream.
    pub fn run() -> Self {
        Stream { kind: StreamKind::Run, id: 0 }
    }

    /// The stream of the simulation episode seeded with `seed`.
    pub fn sim(seed: u64) -> Self {
        Stream { kind: StreamKind::Sim, id: seed }
    }

    /// The stream of rollout actor `idx`.
    pub fn actor(idx: u64) -> Self {
        Stream { kind: StreamKind::Actor, id: idx }
    }

    /// The learner stream.
    pub fn learner() -> Self {
        Stream { kind: StreamKind::Learner, id: 0 }
    }

    /// Human-readable label, e.g. `sim:42`, used as the `stream` field of
    /// every trace line.
    pub fn label(&self) -> String {
        format!("{}:{}", self.kind.tag(), self.id)
    }
}

/// One trace event. Serialized as `{"VariantName": {fields...}}` with the
/// declared field order (the vendored serde preserves insertion order), so
/// the byte representation is deterministic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A simulation episode began (emitted from `Simulation::new`).
    EpisodeStart {
        /// Traffic seed of the episode.
        seed: u64,
        /// Episode horizon in simulation time.
        horizon: f64,
        /// Substrate node count.
        nodes: u64,
        /// Substrate link count.
        links: u64,
        /// Configured ingress count.
        ingresses: u64,
    },
    /// Periodic mid-episode sample, taken every `DOSCO_TRACE_SAMPLE`-th
    /// coordination decision. All quantities are as of the decision time.
    EpisodeSample {
        /// Simulation time of the sampled decision.
        time: f64,
        /// Decisions taken so far (the sample tick).
        decisions: u64,
        /// Flows arrived so far.
        arrived: u64,
        /// Flows completed so far.
        completed: u64,
        /// Flows dropped so far (all reasons).
        dropped: u64,
        /// Flows currently in the network.
        in_flight: u64,
        /// Success ratio over terminated flows, `null` while vacuous.
        success_ratio: Option<f64>,
        /// Mean node utilization `r_v / cap_v` over all nodes.
        node_util_mean: f64,
        /// Maximum node utilization.
        node_util_max: f64,
        /// Mean link utilization `r_l / cap_l` over all links.
        link_util_mean: f64,
        /// Maximum link utilization.
        link_util_max: f64,
        /// Placed component instances.
        instances: u64,
    },
    /// A simulation episode reached its horizon.
    EpisodeEnd {
        /// Final simulation time (the horizon).
        time: f64,
        /// Total flows arrived.
        arrived: u64,
        /// Total flows completed.
        completed: u64,
        /// Total flows dropped.
        dropped: u64,
        /// Flows still in flight at the horizon.
        in_flight: u64,
        /// Final success ratio, `null` if no flow terminated.
        success_ratio: Option<f64>,
        /// Mean end-to-end delay of completed flows, `null` if none.
        avg_e2e_delay: Option<f64>,
        /// Total coordination decisions.
        decisions: u64,
        /// Component instances started.
        instances_started: u64,
        /// Component instances stopped.
        instances_stopped: u64,
    },
    /// A rollout actor handed a batch to the experience channel.
    BatchProduced {
        /// Actor index.
        actor: u64,
        /// Policy snapshot version the batch was collected under.
        version: u64,
        /// Transitions in the batch.
        transitions: u64,
    },
    /// The learner consumed a batch into an update.
    BatchConsumed {
        /// Snapshot version the batch was collected under.
        version: u64,
        /// Learner version at consumption time.
        learner_version: u64,
        /// Observed staleness (`learner_version - version`).
        staleness: u64,
    },
    /// The learner published a new policy snapshot.
    SnapshotPublished {
        /// The published version.
        version: u64,
        /// Environment transitions trained on so far.
        total_steps: u64,
    },
    /// A substrate churn action was applied to a simulation episode.
    /// Additive variant: existing event lines are byte-unchanged, so the
    /// schema version stays at 1.
    ChurnApplied {
        /// Simulation time the action took effect.
        time: f64,
        /// Stable action label (`link-down`, `node-up`, `delay-spike`, …).
        action: String,
        /// Dense id of the affected link or node.
        target: u64,
        /// Degradation/spike factor, `null` for failures and repairs.
        factor: Option<f64>,
        /// Topology version after applying the action (monotonic from 1).
        topo_version: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_labels() {
        assert_eq!(Stream::sim(42).label(), "sim:42");
        assert_eq!(Stream::actor(1).label(), "actor:1");
        assert_eq!(Stream::learner().label(), "learner:0");
        assert_eq!(Stream::run().label(), "run:0");
    }

    #[test]
    fn streams_order_deterministically() {
        let mut v = vec![Stream::sim(7), Stream::actor(0), Stream::learner(), Stream::sim(3)];
        v.sort();
        assert_eq!(
            v,
            vec![Stream::sim(3), Stream::sim(7), Stream::actor(0), Stream::learner()]
        );
    }

    #[test]
    fn event_serialization_is_deterministic_and_round_trips() {
        let e = Event::BatchConsumed {
            version: 3,
            learner_version: 5,
            staleness: 2,
        };
        let a = serde_json::to_string(&e).unwrap();
        let b = serde_json::to_string(&e.clone()).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("\"BatchConsumed\""));
        let back: Event = serde_json::from_str(&a).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn vacuous_success_ratio_serializes_as_null() {
        let e = Event::EpisodeEnd {
            time: 0.0,
            arrived: 0,
            completed: 0,
            dropped: 0,
            in_flight: 0,
            success_ratio: None,
            avg_e2e_delay: None,
            decisions: 0,
            instances_started: 0,
            instances_stopped: 0,
        };
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains("\"success_ratio\":null"), "{json}");
    }
}
