//! Validated environment-variable parsing, shared across the workspace.
//!
//! Every crate that reads configuration from the environment follows the
//! same contract (first established by `ExpBudget::from_env` in
//! `dosco_bench` and now factored here): an unset or empty/whitespace-only
//! variable means "keep the default", and a set-but-malformed value is a
//! hard error that names the variable, the offending value, and what was
//! expected — never a silent fallback.

use std::str::FromStr;

/// A rejected environment override: names the variable and the offending
/// value instead of a bare parse panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvParseError {
    /// The environment variable that failed validation.
    pub var: &'static str,
    /// The value that could not be parsed or validated.
    pub value: String,
    /// What the variable expects.
    pub expected: &'static str,
}

impl std::fmt::Display for EnvParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid {}={:?}: expected {}",
            self.var, self.value, self.expected
        )
    }
}

impl std::error::Error for EnvParseError {}

/// Parses one override through `get` (injectable for tests — no
/// process-global environment mutation). Unset and empty/whitespace-only
/// values both mean "keep the default" (`Ok(None)`); anything else must
/// parse as `T` and satisfy `valid`, or the error names the variable and
/// raw value.
///
/// # Errors
///
/// Returns [`EnvParseError`] when the variable is set to a non-empty value
/// that does not parse or fails `valid`.
pub fn parse_lookup<T: FromStr>(
    get: &dyn Fn(&str) -> Option<String>,
    var: &'static str,
    expected: &'static str,
    valid: impl Fn(&T) -> bool,
) -> Result<Option<T>, EnvParseError> {
    let Some(raw) = get(var) else {
        return Ok(None);
    };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    match trimmed.parse::<T>() {
        Ok(v) if valid(&v) => Ok(Some(v)),
        _ => Err(EnvParseError {
            var,
            value: raw,
            expected,
        }),
    }
}

/// [`parse_lookup`] over the process environment.
///
/// # Errors
///
/// See [`parse_lookup`].
pub fn parse_env<T: FromStr>(
    var: &'static str,
    expected: &'static str,
    valid: impl Fn(&T) -> bool,
) -> Result<Option<T>, EnvParseError> {
    parse_lookup(&|v| std::env::var(v).ok(), var, expected, valid)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_of<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |var| {
            pairs
                .iter()
                .find(|(k, _)| *k == var)
                .map(|(_, v)| (*v).to_string())
        }
    }

    #[test]
    fn unset_and_empty_mean_default() {
        let get = env_of(&[("EMPTY", ""), ("BLANK", "  \t ")]);
        assert_eq!(
            parse_lookup::<u64>(&get, "UNSET", "a number", |_| true),
            Ok(None)
        );
        assert_eq!(
            parse_lookup::<u64>(&get, "EMPTY", "a number", |_| true),
            Ok(None)
        );
        assert_eq!(
            parse_lookup::<u64>(&get, "BLANK", "a number", |_| true),
            Ok(None)
        );
    }

    #[test]
    fn valid_values_parse_with_whitespace_trimmed() {
        let get = env_of(&[("N", " 42 ")]);
        assert_eq!(
            parse_lookup::<u64>(&get, "N", "a number", |&v| v > 0),
            Ok(Some(42))
        );
    }

    #[test]
    fn malformed_values_name_variable_value_and_expectation() {
        let get = env_of(&[("N", "nope")]);
        let err = parse_lookup::<u64>(&get, "N", "a positive integer", |_| true).unwrap_err();
        assert_eq!(err.var, "N");
        assert_eq!(err.value, "nope");
        assert_eq!(
            err.to_string(),
            "invalid N=\"nope\": expected a positive integer"
        );
    }

    #[test]
    fn validation_rejects_out_of_range_values() {
        let get = env_of(&[("N", "0")]);
        let err = parse_lookup::<u64>(&get, "N", "a positive integer", |&v| v >= 1).unwrap_err();
        assert_eq!(err.value, "0");
    }
}
