//! Scoped span timers for training hot paths.

use crate::registry::{record_span_ns, SpanKind};
use std::time::Instant;

/// A scoped timer: created by [`crate::span`], records its elapsed wall
/// time into the global registry when dropped. When span timing is
/// disabled (the default) the guard holds no clock and drop is a no-op —
/// the whole round trip costs one relaxed atomic load.
///
/// Span durations never enter the trace file (wall clock would break
/// byte-determinism); they surface only through [`crate::report`].
#[derive(Debug)]
#[must_use = "a span timer records on drop; binding it to `_` drops immediately"]
pub struct SpanTimer {
    kind: SpanKind,
    start: Option<Instant>,
}

impl SpanTimer {
    /// A live timer that records on drop.
    pub(crate) fn armed(kind: SpanKind) -> Self {
        SpanTimer {
            kind,
            start: Some(Instant::now()),
        }
    }

    /// A disarmed no-op timer.
    pub(crate) fn disarmed(kind: SpanKind) -> Self {
        SpanTimer { kind, start: None }
    }

    /// The instrumented section this timer belongs to.
    pub fn kind(&self) -> SpanKind {
        self.kind
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            record_span_ns(self.kind, ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{reset, span_snapshot, tests::REGISTRY_TEST_LOCK};

    #[test]
    fn armed_timer_records_on_drop() {
        let _guard = REGISTRY_TEST_LOCK.lock();
        reset();
        {
            let _t = SpanTimer::armed(SpanKind::RolloutCollect);
            std::hint::black_box(1 + 1);
        }
        let (count, total, _) = span_snapshot(SpanKind::RolloutCollect);
        assert_eq!(count, 1);
        assert!(total > 0 || cfg!(miri), "elapsed time should be nonzero");
    }

    #[test]
    fn disarmed_timer_records_nothing() {
        let _guard = REGISTRY_TEST_LOCK.lock();
        reset();
        {
            let _t = SpanTimer::disarmed(SpanKind::Gemm);
        }
        assert_eq!(span_snapshot(SpanKind::Gemm).0, 0);
    }
}
