//! The serializable per-run observability report: a snapshot of the whole
//! metrics registry, merged into `BENCH_PR4.json` by `perf_report`.

use crate::registry::{
    counter_value, gauge_value, histogram_snapshot, span_snapshot, CounterKind, GaugeKind,
    HistKind, SpanKind,
};
use serde::{Deserialize, Serialize};

/// One named monotonic counter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterStat {
    /// Stable snake_case name.
    pub name: String,
    /// Current value.
    pub value: u64,
}

/// One named last-value gauge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeStat {
    /// Stable snake_case name.
    pub name: String,
    /// Current value.
    pub value: f64,
}

/// One bucket of a histogram: observations with `value <= le` (and above
/// the previous bound); `le = null` is the overflow bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketStat {
    /// Inclusive upper bound, `null` for the overflow bucket.
    pub le: Option<f64>,
    /// Observations in this bucket.
    pub count: u64,
}

/// One named fixed-bucket histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramStat {
    /// Stable snake_case name.
    pub name: String,
    /// The buckets, in ascending bound order; the last is the overflow.
    pub buckets: Vec<BucketStat>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

/// One named span-timing accumulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanStat {
    /// Stable snake_case name.
    pub name: String,
    /// Times the section ran.
    pub count: u64,
    /// Total wall time across runs, milliseconds.
    pub total_ms: f64,
    /// Longest single run, milliseconds.
    pub max_ms: f64,
}

/// Snapshot of the global metrics registry for one run. The shape is
/// fixed — every known counter/gauge/histogram/span appears, zeroed if
/// untouched — so reports diff cleanly across runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsReport {
    /// Trace schema version this build writes.
    pub schema: u32,
    /// All counters.
    pub counters: Vec<CounterStat>,
    /// All gauges.
    pub gauges: Vec<GaugeStat>,
    /// All histograms.
    pub histograms: Vec<HistogramStat>,
    /// All span accumulators.
    pub spans: Vec<SpanStat>,
}

impl ObsReport {
    /// Captures the current registry state.
    pub fn capture() -> Self {
        let counters = CounterKind::ALL
            .iter()
            .map(|&k| CounterStat {
                name: k.name().to_string(),
                value: counter_value(k),
            })
            .collect();
        let gauges = GaugeKind::ALL
            .iter()
            .map(|&k| GaugeStat {
                name: k.name().to_string(),
                value: gauge_value(k),
            })
            .collect();
        let histograms = HistKind::ALL
            .iter()
            .map(|&k| {
                let (buckets, count, sum) = histogram_snapshot(k);
                let bounds = k.bounds();
                HistogramStat {
                    name: k.name().to_string(),
                    buckets: buckets
                        .into_iter()
                        .enumerate()
                        .map(|(i, count)| BucketStat {
                            le: bounds.get(i).copied(),
                            count,
                        })
                        .collect(),
                    count,
                    sum,
                }
            })
            .collect();
        let spans = SpanKind::ALL
            .iter()
            .map(|&k| {
                let (count, total_ns, max_ns) = span_snapshot(k);
                SpanStat {
                    name: k.name().to_string(),
                    count,
                    total_ms: total_ns as f64 / 1e6,
                    max_ms: max_ns as f64 / 1e6,
                }
            })
            .collect();
        ObsReport {
            schema: crate::SCHEMA_VERSION,
            counters,
            gauges,
            histograms,
            spans,
        }
    }

    /// Serializes the report to compact JSON. Deterministic by
    /// construction: struct fields serialize in declaration order and
    /// every collection is built from the fixed `ALL` enumeration of its
    /// kind, so identical registry state yields byte-identical output.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("in-memory serialization cannot fail")
    }

    /// The span stat named `name`, if known.
    pub fn span(&self, name: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// The counter stat named `name`, if known.
    pub fn counter(&self, name: &str) -> Option<&CounterStat> {
        self.counters.iter().find(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{count, observe, record_span_ns, reset, tests::REGISTRY_TEST_LOCK};

    #[test]
    fn capture_has_fixed_shape_and_round_trips() {
        let _guard = REGISTRY_TEST_LOCK.lock();
        reset();
        count(CounterKind::TraceEvents, 5);
        observe(HistKind::Staleness, 2.0);
        record_span_ns(SpanKind::Gemm, 1_500_000);
        let r = ObsReport::capture();
        assert_eq!(r.counters.len(), CounterKind::ALL.len());
        assert_eq!(r.gauges.len(), GaugeKind::ALL.len());
        assert_eq!(r.histograms.len(), HistKind::ALL.len());
        assert_eq!(r.spans.len(), SpanKind::ALL.len());
        assert_eq!(r.counter("trace_events").unwrap().value, 5);
        let g = r.span("gemm").unwrap();
        assert_eq!(g.count, 1);
        assert!((g.total_ms - 1.5).abs() < 1e-9);
        // Overflow bucket is the null-bounded last one.
        let h = r.histograms.iter().find(|h| h.name == "staleness").unwrap();
        assert_eq!(h.buckets.last().unwrap().le, None);
        assert_eq!(h.count, 1);
        let json = serde_json::to_string(&r).unwrap();
        let back: ObsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        reset();
    }

    /// The ops-surface contract: identical registry state serializes to
    /// byte-identical JSON, run after run. The state is rebuilt from
    /// scratch between captures (reset + identical updates), so the test
    /// pins ordering determinism, not object identity.
    #[test]
    fn registry_json_export_is_byte_identical_across_runs() {
        let _guard = REGISTRY_TEST_LOCK.lock();
        let build_state = || {
            reset();
            count(CounterKind::ServeDecisions, 17);
            count(CounterKind::ServeSwaps, 3);
            crate::registry::set_gauge(crate::registry::GaugeKind::LastSuccessRatio, 0.875);
            observe(HistKind::ServeBatchSize, 4.0);
            observe(HistKind::Staleness, 2.0);
            record_span_ns(SpanKind::ServeBatchForward, 2_000_000);
            ObsReport::capture().to_json()
        };
        let a = build_state();
        let b = build_state();
        assert_eq!(a, b, "identical registry state must serialize identically");
        // And the export is valid JSON that round-trips.
        let back: ObsReport = serde_json::from_str(&a).unwrap();
        assert_eq!(back.to_json(), a);
        reset();
    }

    #[test]
    fn untouched_registry_reports_zeros() {
        let _guard = REGISTRY_TEST_LOCK.lock();
        reset();
        let r = ObsReport::capture();
        assert!(r.counters.iter().all(|c| c.value == 0));
        assert!(r.spans.iter().all(|s| s.count == 0));
        assert!(r.histograms.iter().all(|h| h.count == 0));
    }
}
