//! The global metrics registry: a fixed set of counters, gauges,
//! fixed-bucket histograms, and span-timing accumulators, all lock-free
//! atomics. Snapshot with [`crate::report`], zero with [`crate::reset`].
//!
//! The registry is deliberately *not* part of the trace: span durations
//! are wall-clock and would break trace determinism, so they only surface
//! in the in-memory [`crate::ObsReport`].

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic event counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterKind {
    /// Trace events handed to the installed recorder.
    TraceEvents,
    /// Simulation episodes that emitted a trace stream.
    EpisodesTraced,
    /// Mid-episode samples taken at decision points.
    DecisionSamples,
    /// Decisions answered by the serving fabric (batched + fallback).
    ServeDecisions,
    /// Serve decisions degraded to the shortest-path fallback because the
    /// owning shard was down or delayed.
    ServeFallbacks,
    /// Policy hot-swaps broadcast to serving shards.
    ServeSwaps,
    /// Frames written to a `dosco_net` socket transport.
    NetFramesSent,
    /// Frames read from a `dosco_net` socket transport.
    NetFramesReceived,
    /// Payload + header bytes written to a `dosco_net` socket transport.
    NetBytesSent,
    /// Payload + header bytes read from a `dosco_net` socket transport.
    NetBytesReceived,
    /// Socket-transport sends that found the bounded outbound queue full
    /// (the net plane's backpressure signal, mirroring the runtime's
    /// `channel_full_stalls`).
    NetSocketStalls,
    /// Substrate churn actions applied by the simulator.
    ChurnEventsApplied,
    /// Shortest-path recomputations triggered by churn epochs.
    ChurnSpRecomputes,
    /// Flows killed by link/node failures (substrate churn).
    ChurnFlowsKilled,
    /// Component instances lost with failed nodes (substrate churn).
    ChurnInstancesLost,
    /// Flows dropped for exceeding node compute capacity.
    DropNodeCapacity,
    /// Flows dropped for exceeding link data-rate capacity.
    DropLinkCapacity,
    /// Flows dropped because their deadline expired.
    DropDeadlineExpired,
    /// Flows dropped because the agent picked a non-existing neighbor.
    DropInvalidAction,
    /// Flows dropped because their carrying link failed mid-transit.
    DropLinkFailure,
    /// Flows dropped because their hosting node failed.
    DropNodeFailure,
}

impl CounterKind {
    /// All counters, in report order.
    pub const ALL: [CounterKind; 21] = [
        CounterKind::TraceEvents,
        CounterKind::EpisodesTraced,
        CounterKind::DecisionSamples,
        CounterKind::ServeDecisions,
        CounterKind::ServeFallbacks,
        CounterKind::ServeSwaps,
        CounterKind::NetFramesSent,
        CounterKind::NetFramesReceived,
        CounterKind::NetBytesSent,
        CounterKind::NetBytesReceived,
        CounterKind::NetSocketStalls,
        CounterKind::ChurnEventsApplied,
        CounterKind::ChurnSpRecomputes,
        CounterKind::ChurnFlowsKilled,
        CounterKind::ChurnInstancesLost,
        CounterKind::DropNodeCapacity,
        CounterKind::DropLinkCapacity,
        CounterKind::DropDeadlineExpired,
        CounterKind::DropInvalidAction,
        CounterKind::DropLinkFailure,
        CounterKind::DropNodeFailure,
    ];

    /// Stable snake_case name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            CounterKind::TraceEvents => "trace_events",
            CounterKind::EpisodesTraced => "episodes_traced",
            CounterKind::DecisionSamples => "decision_samples",
            CounterKind::ServeDecisions => "serve_decisions",
            CounterKind::ServeFallbacks => "serve_fallbacks",
            CounterKind::ServeSwaps => "serve_swaps",
            CounterKind::NetFramesSent => "net_frames_sent",
            CounterKind::NetFramesReceived => "net_frames_received",
            CounterKind::NetBytesSent => "net_bytes_sent",
            CounterKind::NetBytesReceived => "net_bytes_received",
            CounterKind::NetSocketStalls => "net_socket_stalls",
            CounterKind::ChurnEventsApplied => "churn_events_applied",
            CounterKind::ChurnSpRecomputes => "churn_sp_recomputes",
            CounterKind::ChurnFlowsKilled => "churn_flows_killed",
            CounterKind::ChurnInstancesLost => "churn_instances_lost",
            CounterKind::DropNodeCapacity => "drop_node_capacity",
            CounterKind::DropLinkCapacity => "drop_link_capacity",
            CounterKind::DropDeadlineExpired => "drop_deadline_expired",
            CounterKind::DropInvalidAction => "drop_invalid_action",
            CounterKind::DropLinkFailure => "drop_link_failure",
            CounterKind::DropNodeFailure => "drop_node_failure",
        }
    }

    const fn idx(self) -> usize {
        self as usize
    }
}

/// Last-value gauges (f64, stored as bit patterns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GaugeKind {
    /// Success ratio at the most recent episode sample.
    LastSuccessRatio,
    /// In-flight flows at the most recent episode sample.
    LastInFlight,
    /// Peak node utilization seen at any sample.
    PeakNodeUtil,
    /// Peak link utilization seen at any sample.
    PeakLinkUtil,
    /// Mailbox depth of the most recently flushed serving shard.
    LastServeQueueDepth,
    /// Deepest serving-shard mailbox seen at any flush.
    PeakServeQueueDepth,
    /// Current substrate topology version (churn actions applied so far
    /// in the most recently sampled episode).
    TopoVersion,
    /// Success ratio over the sliding termination window of the most
    /// recently sampled churn episode (a fault's blast radius/recovery).
    WindowedSuccessRatio,
}

impl GaugeKind {
    /// All gauges, in report order.
    pub const ALL: [GaugeKind; 8] = [
        GaugeKind::LastSuccessRatio,
        GaugeKind::LastInFlight,
        GaugeKind::PeakNodeUtil,
        GaugeKind::PeakLinkUtil,
        GaugeKind::LastServeQueueDepth,
        GaugeKind::PeakServeQueueDepth,
        GaugeKind::TopoVersion,
        GaugeKind::WindowedSuccessRatio,
    ];

    /// Stable snake_case name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            GaugeKind::LastSuccessRatio => "last_success_ratio",
            GaugeKind::LastInFlight => "last_in_flight",
            GaugeKind::PeakNodeUtil => "peak_node_util",
            GaugeKind::PeakLinkUtil => "peak_link_util",
            GaugeKind::LastServeQueueDepth => "last_serve_queue_depth",
            GaugeKind::PeakServeQueueDepth => "peak_serve_queue_depth",
            GaugeKind::TopoVersion => "topo_version",
            GaugeKind::WindowedSuccessRatio => "windowed_success_ratio",
        }
    }

    const fn idx(self) -> usize {
        self as usize
    }
}

/// Fixed-bucket histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistKind {
    /// Policy staleness observed at batch consumption (versions).
    Staleness,
    /// Node utilization at episode samples.
    NodeUtil,
    /// Link utilization at episode samples.
    LinkUtil,
    /// Rows per batched forward in the serving fabric's shards.
    ServeBatchSize,
}

/// Upper bucket bounds for staleness (versions); a final overflow bucket
/// catches everything larger.
const STALENESS_BOUNDS: [f64; 7] = [0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0];
/// Upper bucket bounds for utilizations (fractions of capacity).
const UTIL_BOUNDS: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];
/// Upper bucket bounds for serve batch sizes (rows per forward).
const BATCH_BOUNDS: [f64; 6] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0];
/// Largest bucket count of any histogram (bounds + overflow).
const MAX_BUCKETS: usize = STALENESS_BOUNDS.len() + 1;

impl HistKind {
    /// All histograms, in report order.
    pub const ALL: [HistKind; 4] = [
        HistKind::Staleness,
        HistKind::NodeUtil,
        HistKind::LinkUtil,
        HistKind::ServeBatchSize,
    ];

    /// Stable snake_case name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            HistKind::Staleness => "staleness",
            HistKind::NodeUtil => "node_util",
            HistKind::LinkUtil => "link_util",
            HistKind::ServeBatchSize => "serve_batch_size",
        }
    }

    /// The inclusive upper bounds of this histogram's buckets; values above
    /// the last bound land in an overflow bucket.
    pub fn bounds(self) -> &'static [f64] {
        match self {
            HistKind::Staleness => &STALENESS_BOUNDS,
            HistKind::NodeUtil | HistKind::LinkUtil => &UTIL_BOUNDS,
            HistKind::ServeBatchSize => &BATCH_BOUNDS,
        }
    }

    const fn idx(self) -> usize {
        self as usize
    }
}

/// Instrumented hot-path sections timed by [`crate::span`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Blocked GEMM kernels (`matmul*_into` in `dosco_nn`).
    Gemm,
    /// K-FAC Kronecker-factor statistics updates.
    KfacStats,
    /// K-FAC damped Cholesky factor inversions.
    KfacInversion,
    /// Rollout collection (`RolloutCollector::collect`).
    RolloutCollect,
    /// Actor blocking on a full experience channel.
    ChannelSend,
    /// Learner blocking on an empty experience channel.
    ChannelRecv,
    /// Learner applying one update batch.
    LearnerUpdate,
    /// Snapshot clone + publish into the policy slot.
    SnapshotPublish,
    /// One batched forward (stack → GEMM → head) inside a serving shard.
    ServeBatchForward,
    /// One serve decision end to end: request creation to action applied.
    ServeDecision,
    /// Encoding one wire message (serde tree -> binary frame payload).
    NetEncode,
    /// Decoding one wire message (binary frame payload -> serde tree).
    NetDecode,
}

impl SpanKind {
    /// All spans, in report order.
    pub const ALL: [SpanKind; 12] = [
        SpanKind::Gemm,
        SpanKind::KfacStats,
        SpanKind::KfacInversion,
        SpanKind::RolloutCollect,
        SpanKind::ChannelSend,
        SpanKind::ChannelRecv,
        SpanKind::LearnerUpdate,
        SpanKind::SnapshotPublish,
        SpanKind::ServeBatchForward,
        SpanKind::ServeDecision,
        SpanKind::NetEncode,
        SpanKind::NetDecode,
    ];

    /// Stable snake_case name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Gemm => "gemm",
            SpanKind::KfacStats => "kfac_stats",
            SpanKind::KfacInversion => "kfac_inversion",
            SpanKind::RolloutCollect => "rollout_collect",
            SpanKind::ChannelSend => "channel_send",
            SpanKind::ChannelRecv => "channel_recv",
            SpanKind::LearnerUpdate => "learner_update",
            SpanKind::SnapshotPublish => "snapshot_publish",
            SpanKind::ServeBatchForward => "serve_batch_forward",
            SpanKind::ServeDecision => "serve_decision",
            SpanKind::NetEncode => "net_encode",
            SpanKind::NetDecode => "net_decode",
        }
    }

    const fn idx(self) -> usize {
        self as usize
    }
}

/// One span accumulator cell.
#[derive(Debug, Default)]
struct SpanCell {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

/// One histogram cell: bucket counts, total count, and the value sum
/// (f64 bits, updated by CAS — recording is rare enough that contention
/// is negligible).
#[derive(Debug)]
struct HistCell {
    buckets: [AtomicU64; MAX_BUCKETS],
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl HistCell {
    const fn new() -> Self {
        HistCell {
            buckets: [const { AtomicU64::new(0) }; MAX_BUCKETS],
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
        }
    }
}

impl SpanCell {
    const fn new() -> Self {
        SpanCell {
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

static SPANS: [SpanCell; SpanKind::ALL.len()] =
    [const { SpanCell::new() }; SpanKind::ALL.len()];
static COUNTERS: [AtomicU64; CounterKind::ALL.len()] =
    [const { AtomicU64::new(0) }; CounterKind::ALL.len()];
static GAUGES: [AtomicU64; GaugeKind::ALL.len()] =
    [const { AtomicU64::new(0) }; GaugeKind::ALL.len()];
static HISTS: [HistCell; HistKind::ALL.len()] =
    [const { HistCell::new() }; HistKind::ALL.len()];

/// Adds `n` to a counter.
#[inline]
pub fn count(kind: CounterKind, n: u64) {
    COUNTERS[kind.idx()].fetch_add(n, Ordering::Relaxed);
}

/// Reads a counter.
pub fn counter_value(kind: CounterKind) -> u64 {
    COUNTERS[kind.idx()].load(Ordering::Relaxed)
}

/// Sets a gauge to `value`.
#[inline]
pub fn set_gauge(kind: GaugeKind, value: f64) {
    GAUGES[kind.idx()].store(value.to_bits(), Ordering::Relaxed);
}

/// Raises a gauge to `value` if larger (peak tracking).
#[inline]
pub fn max_gauge(kind: GaugeKind, value: f64) {
    let cell = &GAUGES[kind.idx()];
    let mut cur = cell.load(Ordering::Relaxed);
    while f64::from_bits(cur) < value {
        match cell.compare_exchange_weak(
            cur,
            value.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => break,
            Err(seen) => cur = seen,
        }
    }
}

/// Reads a gauge.
pub fn gauge_value(kind: GaugeKind) -> f64 {
    f64::from_bits(GAUGES[kind.idx()].load(Ordering::Relaxed))
}

/// Records one observation into a histogram.
#[inline]
pub fn observe(kind: HistKind, value: f64) {
    let cell = &HISTS[kind.idx()];
    let bounds = kind.bounds();
    let bucket = bounds
        .iter()
        .position(|&b| value <= b)
        .unwrap_or(bounds.len());
    cell.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    cell.count.fetch_add(1, Ordering::Relaxed);
    let mut cur = cell.sum_bits.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + value).to_bits();
        match cell
            .sum_bits
            .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => break,
            Err(seen) => cur = seen,
        }
    }
}

/// Snapshot of one histogram: per-bucket counts aligned with
/// `kind.bounds()` plus a final overflow bucket, the observation count,
/// and the value sum.
pub fn histogram_snapshot(kind: HistKind) -> (Vec<u64>, u64, f64) {
    let cell = &HISTS[kind.idx()];
    let n = kind.bounds().len() + 1;
    let buckets = (0..n)
        .map(|i| cell.buckets[i].load(Ordering::Relaxed))
        .collect();
    (
        buckets,
        cell.count.load(Ordering::Relaxed),
        f64::from_bits(cell.sum_bits.load(Ordering::Relaxed)),
    )
}

/// Adds one timed section of `ns` nanoseconds to a span accumulator. This
/// is the raw entry point behind [`crate::span`]; callers that already
/// hold a duration (e.g. the runtime's counters) call it directly.
#[inline]
pub fn record_span_ns(kind: SpanKind, ns: u64) {
    let cell = &SPANS[kind.idx()];
    cell.count.fetch_add(1, Ordering::Relaxed);
    cell.total_ns.fetch_add(ns, Ordering::Relaxed);
    cell.max_ns.fetch_max(ns, Ordering::Relaxed);
}

/// Snapshot of one span accumulator: `(count, total_ns, max_ns)`.
pub fn span_snapshot(kind: SpanKind) -> (u64, u64, u64) {
    let cell = &SPANS[kind.idx()];
    (
        cell.count.load(Ordering::Relaxed),
        cell.total_ns.load(Ordering::Relaxed),
        cell.max_ns.load(Ordering::Relaxed),
    )
}

/// Zeroes every counter, gauge, histogram, and span accumulator (between
/// benchmark phases or tests).
pub fn reset() {
    for c in &COUNTERS {
        c.store(0, Ordering::Relaxed);
    }
    for g in &GAUGES {
        g.store(0, Ordering::Relaxed);
    }
    for h in &HISTS {
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
        h.count.store(0, Ordering::Relaxed);
        h.sum_bits.store(0, Ordering::Relaxed);
    }
    for s in &SPANS {
        s.count.store(0, Ordering::Relaxed);
        s.total_ns.store(0, Ordering::Relaxed);
        s.max_ns.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    // The registry is global; tests touching it run under this lock so
    // parallel test threads don't interleave resets.
    pub(crate) static REGISTRY_TEST_LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

    #[test]
    fn counters_and_gauges() {
        let _guard = REGISTRY_TEST_LOCK.lock();
        reset();
        count(CounterKind::TraceEvents, 2);
        count(CounterKind::TraceEvents, 1);
        assert_eq!(counter_value(CounterKind::TraceEvents), 3);
        set_gauge(GaugeKind::LastSuccessRatio, 0.75);
        assert_eq!(gauge_value(GaugeKind::LastSuccessRatio), 0.75);
        max_gauge(GaugeKind::PeakNodeUtil, 0.5);
        max_gauge(GaugeKind::PeakNodeUtil, 0.25); // lower: ignored
        assert_eq!(gauge_value(GaugeKind::PeakNodeUtil), 0.5);
        reset();
        assert_eq!(counter_value(CounterKind::TraceEvents), 0);
    }

    #[test]
    fn histogram_buckets_fixed_bounds() {
        let _guard = REGISTRY_TEST_LOCK.lock();
        reset();
        // Staleness bounds: 0,1,2,4,8,16,32 + overflow.
        observe(HistKind::Staleness, 0.0); // bucket 0
        observe(HistKind::Staleness, 1.0); // bucket 1 (inclusive upper)
        observe(HistKind::Staleness, 3.0); // bucket 3 (<=4)
        observe(HistKind::Staleness, 100.0); // overflow
        let (buckets, count, sum) = histogram_snapshot(HistKind::Staleness);
        assert_eq!(buckets, vec![1, 1, 0, 1, 0, 0, 0, 1]);
        assert_eq!(count, 4);
        assert!((sum - 104.0).abs() < 1e-12);
    }

    #[test]
    fn span_accumulates_and_tracks_max() {
        let _guard = REGISTRY_TEST_LOCK.lock();
        reset();
        record_span_ns(SpanKind::Gemm, 100);
        record_span_ns(SpanKind::Gemm, 300);
        record_span_ns(SpanKind::Gemm, 200);
        let (count, total, max) = span_snapshot(SpanKind::Gemm);
        assert_eq!((count, total, max), (3, 600, 300));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(SpanKind::SnapshotPublish.name(), "snapshot_publish");
        assert_eq!(SpanKind::ServeDecision.name(), "serve_decision");
        assert_eq!(CounterKind::EpisodesTraced.name(), "episodes_traced");
        assert_eq!(CounterKind::ServeFallbacks.name(), "serve_fallbacks");
        assert_eq!(CounterKind::NetBytesSent.name(), "net_bytes_sent");
        assert_eq!(CounterKind::NetSocketStalls.name(), "net_socket_stalls");
        assert_eq!(SpanKind::NetEncode.name(), "net_encode");
        assert_eq!(SpanKind::NetDecode.name(), "net_decode");
        assert_eq!(GaugeKind::PeakLinkUtil.name(), "peak_link_util");
        assert_eq!(GaugeKind::PeakServeQueueDepth.name(), "peak_serve_queue_depth");
        assert_eq!(CounterKind::ChurnEventsApplied.name(), "churn_events_applied");
        assert_eq!(CounterKind::DropLinkFailure.name(), "drop_link_failure");
        assert_eq!(GaugeKind::TopoVersion.name(), "topo_version");
        assert_eq!(GaugeKind::WindowedSuccessRatio.name(), "windowed_success_ratio");
        assert_eq!(HistKind::NodeUtil.name(), "node_util");
        assert_eq!(HistKind::Staleness.bounds().len() + 1, 8);
        // Every histogram fits the shared fixed-size bucket arrays.
        for h in HistKind::ALL {
            assert!(h.bounds().len() < MAX_BUCKETS, "{} overflows", h.name());
        }
    }
}
