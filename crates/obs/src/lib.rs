//! # dosco-obs — deterministic observability
//!
//! A near-zero-overhead-when-disabled observability layer for the whole
//! dosco stack, with three pieces:
//!
//! 1. **Trace events** ([`Event`]): schema-versioned structured events —
//!    per-episode success/utilization time series from the simulator,
//!    batch/snapshot lifecycle from the actor–learner runtime — recorded
//!    through a global [`Recorder`]. The default [`NullRecorder`] discards
//!    everything behind a single relaxed atomic check; [`JsonlRecorder`]
//!    (installed by [`init_from_env`] when `DOSCO_TRACE` names a file)
//!    buffers per deterministic [`Stream`] and writes one JSON object per
//!    line, byte-identical across same-seed runs. Timestamps are sim-time
//!    or caller ticks only — never wall clock.
//! 2. **Metrics registry** ([`registry`]): fixed counters, gauges, and
//!    fixed-bucket histograms (e.g. observed policy staleness), all
//!    lock-free atomics.
//! 3. **Span timers** ([`span`]): scoped wall-clock timers on training hot
//!    paths (GEMM, K-FAC inversion, rollout collection, channel waits,
//!    snapshot publishes). Disabled by default; when enabled they feed the
//!    registry, never the trace.
//!
//! [`report`] snapshots everything as a serializable [`ObsReport`].
//!
//! ## Environment variables
//!
//! - `DOSCO_TRACE=<path>`: [`init_from_env`] installs a [`JsonlRecorder`]
//!   writing there (empty value = disabled).
//! - `DOSCO_TRACE_SAMPLE=<n>`: take a mid-episode sample every `n`-th
//!   coordination decision (default 64).
//! - `DOSCO_SPANS=1`: also enable span timers.
//!
//! ## Determinism contract
//!
//! A trace is byte-identical across runs when every stream is emitted by
//! deterministic sequential code and no two concurrent emitters share a
//! stream. The stack guarantees distinct streams per simulation seed,
//! actor index, and learner; async-mode runtime timing is inherently
//! nondeterministic, so trace consumers wanting byte-stable files run the
//! runtime in sync mode (see `examples/actor_learner.rs`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod env;
pub mod event;
pub mod recorder;
pub mod registry;
pub mod report;
pub mod span;

pub use env::EnvParseError;
pub use event::{Event, Stream, StreamKind, SCHEMA_VERSION};
pub use recorder::{JsonlRecorder, NullRecorder, Recorder};
pub use registry::{CounterKind, GaugeKind, HistKind, SpanKind};
pub use report::ObsReport;
pub use span::SpanTimer;

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Fast-path gate for [`emit`]: true iff a recorder is installed.
static TRACE_ON: AtomicBool = AtomicBool::new(false);
/// Fast-path gate for [`span`].
static SPANS_ON: AtomicBool = AtomicBool::new(false);
/// Decision-sampling stride for mid-episode samples.
static SAMPLE_STRIDE: AtomicU64 = AtomicU64::new(DEFAULT_SAMPLE_STRIDE);
/// The installed recorder (std `RwLock`: const-constructible, and the
/// write lock is only taken at install/uninstall).
static RECORDER: RwLock<Option<Arc<dyn Recorder>>> = RwLock::new(None);

/// Default mid-episode sampling stride (decisions between samples).
pub const DEFAULT_SAMPLE_STRIDE: u64 = 64;

/// Whether a trace recorder is installed. One relaxed atomic load;
/// instrumentation sites branch on this before building any event.
#[inline(always)]
pub fn trace_enabled() -> bool {
    TRACE_ON.load(Ordering::Relaxed)
}

/// Whether span timers are armed. One relaxed atomic load.
#[inline(always)]
pub fn spans_enabled() -> bool {
    SPANS_ON.load(Ordering::Relaxed)
}

/// Installs `recorder` as the global trace sink and enables tracing.
/// Replaces (and returns) any previous recorder without flushing it.
pub fn install_recorder(recorder: Arc<dyn Recorder>) -> Option<Arc<dyn Recorder>> {
    let mut slot = RECORDER.write().expect("recorder lock poisoned");
    let old = slot.replace(recorder);
    TRACE_ON.store(true, Ordering::Release);
    old
}

/// Disables tracing and removes the recorder (unflushed), returning it.
pub fn uninstall_recorder() -> Option<Arc<dyn Recorder>> {
    TRACE_ON.store(false, Ordering::Release);
    RECORDER.write().expect("recorder lock poisoned").take()
}

/// Arms or disarms the span timers.
pub fn set_spans_enabled(on: bool) {
    SPANS_ON.store(on, Ordering::Release);
}

/// Sets the mid-episode sampling stride (clamped to ≥ 1).
pub fn set_sample_stride(stride: u64) {
    SAMPLE_STRIDE.store(stride.max(1), Ordering::Relaxed);
}

/// The current mid-episode sampling stride.
pub fn sample_stride() -> u64 {
    SAMPLE_STRIDE.load(Ordering::Relaxed)
}

/// Reads `DOSCO_TRACE` / `DOSCO_TRACE_SAMPLE` / `DOSCO_SPANS` and installs
/// a [`JsonlRecorder`] if a trace path is configured. Returns the trace
/// path if tracing was enabled. Empty-string variables count as unset.
pub fn init_from_env() -> Option<PathBuf> {
    if let Some(stride) = env_nonempty("DOSCO_TRACE_SAMPLE") {
        if let Ok(n) = stride.parse::<u64>() {
            set_sample_stride(n);
        }
    }
    if let Some(v) = env_nonempty("DOSCO_SPANS") {
        set_spans_enabled(v != "0");
    }
    let path = PathBuf::from(env_nonempty("DOSCO_TRACE")?);
    install_recorder(Arc::new(JsonlRecorder::new(path.clone())));
    Some(path)
}

fn env_nonempty(key: &str) -> Option<String> {
    match std::env::var(key) {
        Ok(v) if !v.trim().is_empty() => Some(v),
        _ => None,
    }
}

/// Emits one trace event on `stream`. The event closure runs only when a
/// recorder is installed, so the disabled path costs one relaxed load and
/// an untaken branch.
#[inline]
pub fn emit(stream: Stream, event: impl FnOnce() -> Event) {
    if trace_enabled() {
        emit_cold(stream, event());
    }
}

#[cold]
fn emit_cold(stream: Stream, event: Event) {
    let slot = RECORDER.read().expect("recorder lock poisoned");
    if let Some(recorder) = slot.as_ref() {
        recorder.record(stream, &event);
        registry::count(CounterKind::TraceEvents, 1);
    }
}

/// Flushes the installed recorder, if any.
///
/// # Errors
///
/// Propagates the recorder's I/O error.
pub fn flush() -> std::io::Result<()> {
    let slot = RECORDER.read().expect("recorder lock poisoned");
    match slot.as_ref() {
        Some(recorder) => recorder.flush(),
        None => Ok(()),
    }
}

/// Opens a scoped span timer for `kind`. Disabled (the default): returns a
/// disarmed guard — one relaxed load, no clock read. Enabled: the guard
/// records its elapsed wall time into the registry on drop.
#[inline]
pub fn span(kind: SpanKind) -> SpanTimer {
    if spans_enabled() {
        SpanTimer::armed(kind)
    } else {
        SpanTimer::disarmed(kind)
    }
}

/// Snapshots the metrics registry as a serializable [`ObsReport`].
pub fn report() -> ObsReport {
    ObsReport::capture()
}

/// Snapshots the metrics registry as deterministic JSON: identical
/// registry state always serializes to byte-identical output (fixed
/// field order, fixed counter/gauge/histogram/span enumeration order).
/// This is the payload the `dosco_ctl` `GET /metrics` endpoint serves.
pub fn report_json() -> String {
    ObsReport::capture().to_json()
}

/// Zeroes the metrics registry (counters, gauges, histograms, spans).
pub fn reset() {
    registry::reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global-state tests (recorder slot + registry) serialized here.
    static GLOBAL_TEST_LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

    #[test]
    fn emit_routes_to_installed_recorder_and_counts() {
        let _guard = GLOBAL_TEST_LOCK.lock();
        reset();
        assert!(!trace_enabled());
        emit(Stream::sim(1), || panic!("closure must not run while disabled"));
        let rec = Arc::new(JsonlRecorder::new("/tmp/unused-emit-test.jsonl"));
        install_recorder(rec.clone());
        assert!(trace_enabled());
        emit(Stream::sim(1), || Event::SnapshotPublished { version: 1, total_steps: 2 });
        assert_eq!(rec.len(), 1);
        assert_eq!(registry::counter_value(CounterKind::TraceEvents), 1);
        uninstall_recorder();
        assert!(!trace_enabled());
        reset();
    }

    #[test]
    fn span_disabled_by_default_enabled_records() {
        let _guard = GLOBAL_TEST_LOCK.lock();
        reset();
        assert!(!spans_enabled());
        drop(span(SpanKind::KfacInversion));
        assert_eq!(registry::span_snapshot(SpanKind::KfacInversion).0, 0);
        set_spans_enabled(true);
        drop(span(SpanKind::KfacInversion));
        assert_eq!(registry::span_snapshot(SpanKind::KfacInversion).0, 1);
        set_spans_enabled(false);
        reset();
    }

    #[test]
    fn sample_stride_clamps_to_one() {
        let _guard = GLOBAL_TEST_LOCK.lock();
        let before = sample_stride();
        set_sample_stride(0);
        assert_eq!(sample_stride(), 1);
        set_sample_stride(before);
    }

    #[test]
    fn flush_without_recorder_is_ok() {
        let _guard = GLOBAL_TEST_LOCK.lock();
        uninstall_recorder();
        flush().unwrap();
    }
}
