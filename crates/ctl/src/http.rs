//! The dependency-free ops HTTP server.
//!
//! A plain `std::net::TcpListener` with one acceptor thread and a small
//! bounded pool of worker threads — no async runtime, no external HTTP
//! crate. It speaks just enough HTTP/1.1 for an ops surface: `GET` with
//! `Content-Length`-framed JSON responses and `Connection: close` (one
//! request per connection). Four routes:
//!
//! | Route           | Body                                              |
//! |-----------------|---------------------------------------------------|
//! | `GET /healthz`  | liveness + service name                           |
//! | `GET /metrics`  | the full `dosco_obs` registry, deterministic JSON |
//! | `GET /snapshot` | published policy version + registry head          |
//! | `GET /shards`   | the fabric's live [`FabricStatus`] snapshot       |
//!
//! [`FabricStatus`]: dosco_serve::FabricStatus
//!
//! Configuration follows the workspace env contract
//! ([`dosco_obs::env`]): `DOSCO_CTL_ADDR` (a socket address; defaults to
//! an ephemeral loopback port) and `DOSCO_CTL_THREADS` (worker count).

use crate::jobs::{ServeJobSpec, TrainJobSpec};
use crate::state::CtlState;
use crossbeam::channel::{self, Receiver};
use dosco_obs::env::{parse_lookup, EnvParseError};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Largest request head (request line + headers) the server accepts.
const MAX_REQUEST_BYTES: usize = 8 * 1024;
/// Largest `POST` body (job specs are small JSON objects).
const MAX_BODY_BYTES: usize = 64 * 1024;
/// Per-read socket timeout: bounds each individual wait so a worker is
/// never parked indefinitely on a dead client.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(5);
/// Overall deadline for reading one complete request. A read timeout
/// *mid-request* resumes (a slow client dribbling a valid request one
/// byte at a time is still served); a client that cannot deliver a full
/// request within this window is cut off with a 400.
const REQUEST_DEADLINE: Duration = Duration::from_secs(10);

/// Ops server configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtlConfig {
    /// Bind address. The default `127.0.0.1:0` binds an ephemeral
    /// loopback port (read it back from [`CtlServer::addr`]).
    pub addr: String,
    /// Worker threads answering requests (the acceptor is separate).
    pub threads: usize,
}

impl Default for CtlConfig {
    fn default() -> Self {
        CtlConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
        }
    }
}

impl CtlConfig {
    /// Applies `DOSCO_CTL_ADDR` / `DOSCO_CTL_THREADS` overrides through
    /// an injectable lookup (tests pass a closure; [`CtlConfig::from_env`]
    /// passes the process environment). Unset or blank variables keep the
    /// defaults; malformed values are hard errors naming the variable.
    ///
    /// # Errors
    ///
    /// Returns [`EnvParseError`] for a value that does not parse as a
    /// socket address / thread count in `1..=64`.
    pub fn from_lookup(get: &dyn Fn(&str) -> Option<String>) -> Result<Self, EnvParseError> {
        let mut cfg = CtlConfig::default();
        if let Some(addr) = parse_lookup::<SocketAddr>(
            get,
            "DOSCO_CTL_ADDR",
            "a socket address like 127.0.0.1:8080",
            |_| true,
        )? {
            cfg.addr = addr.to_string();
        }
        if let Some(threads) = parse_lookup::<usize>(
            get,
            "DOSCO_CTL_THREADS",
            "a worker thread count in 1..=64",
            |&t| (1..=64).contains(&t),
        )? {
            cfg.threads = threads;
        }
        Ok(cfg)
    }

    /// [`CtlConfig::from_lookup`] over the process environment.
    ///
    /// # Errors
    ///
    /// See [`CtlConfig::from_lookup`].
    pub fn from_env() -> Result<Self, EnvParseError> {
        Self::from_lookup(&|v| std::env::var(v).ok())
    }
}

/// A running ops server. Dropping it does *not* stop the threads — call
/// [`CtlServer::shutdown`] for a clean stop (test suites and examples
/// should always do so, or the process lingers on join at exit).
#[derive(Debug)]
pub struct CtlServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl CtlServer {
    /// Binds `cfg.addr` and starts the acceptor plus `cfg.threads`
    /// workers, all answering from `state`.
    ///
    /// # Errors
    ///
    /// Returns the bind error, naming the requested address.
    pub fn start(cfg: &CtlConfig, state: Arc<CtlState>) -> io::Result<CtlServer> {
        let listener = TcpListener::bind(&cfg.addr).map_err(|e| {
            io::Error::new(e.kind(), format!("binding ctl server to {}: {e}", cfg.addr))
        })?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        // Bounded hand-off: a burst beyond the workers' capacity
        // backpressures the acceptor instead of queueing unboundedly.
        let (tx, rx) = channel::bounded::<TcpStream>(cfg.threads * 8);
        // The vendored channel has a single-consumer receiver; the pool
        // shares it behind a mutex (held only for the dequeue, never
        // while a request is being answered).
        let rx = Arc::new(std::sync::Mutex::new(rx));

        let workers = (0..cfg.threads.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("dosco-ctl-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &state))
                    .expect("spawning ctl worker thread")
            })
            .collect();

        let accept_stop = Arc::clone(&stop);
        let acceptor = std::thread::Builder::new()
            .name("dosco-ctl-accept".to_string())
            .spawn(move || {
                // `tx` lives here: when the acceptor exits, the channel
                // disconnects and every worker drains out.
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
            })
            .expect("spawning ctl acceptor thread");

        Ok(CtlServer {
            addr,
            stop,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The actually bound address (resolves the `:0` ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the workers, and joins every thread. A
    /// request already handed to a worker still completes.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the acceptor's blocking `accept` with one throwaway
        // connection; it observes `stop` and exits, disconnecting the
        // worker channel.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Worker body: answer connections until the acceptor disconnects.
fn worker_loop(rx: &std::sync::Mutex<Receiver<TcpStream>>, state: &CtlState) {
    loop {
        // A poisoned lock means a sibling worker panicked while holding
        // the dequeue mutex; the queue itself is still sound, so keep
        // serving instead of cascading the panic through the pool.
        let next = rx
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .recv();
        match next {
            Ok(stream) => handle_connection(stream, state),
            Err(_) => return,
        }
    }
}

/// Reads one request head, routes it, writes one framed response.
fn handle_connection(mut stream: TcpStream, state: &CtlState) {
    let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    let Some((head, body)) = read_request(&mut stream) else {
        respond(&mut stream, 400, "Bad Request", r#"{"error":"bad request"}"#);
        return;
    };
    let mut parts = head
        .lines()
        .next()
        .unwrap_or("")
        .split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        respond(&mut stream, 400, "Bad Request", r#"{"error":"bad request"}"#);
        return;
    };
    // The ops routes take no query parameters; tolerate and strip them.
    let path = target.split('?').next().unwrap_or(target);
    match method {
        "GET" => match route(state, path) {
            Some(body) => respond(&mut stream, 200, "OK", &body),
            None => respond(
                &mut stream,
                404,
                "Not Found",
                &format!(r#"{{"error":"not found","path":{}}}"#, json_str(path)),
            ),
        },
        "POST" => {
            let (status, reason, body) = route_post(state, path, &body);
            respond(&mut stream, status, reason, &body);
        }
        _ => respond(
            &mut stream,
            405,
            "Method Not Allowed",
            &format!(r#"{{"error":"method not allowed","method":{}}}"#, json_str(method)),
        ),
    }
}

/// The `GET` route table: `Some(body)` for known paths.
fn route(state: &CtlState, path: &str) -> Option<String> {
    match path {
        "/healthz" => Some(to_json(&state.healthz())),
        "/metrics" => Some(dosco_obs::report_json()),
        "/snapshot" => Some(to_json(&state.snapshot_response())),
        "/shards" => Some(to_json(&state.shards_response())),
        "/jobs" => Some(format!(r#"{{"jobs":{}}}"#, to_json(&state.jobs().list()))),
        _ => None,
    }
}

/// The `POST` route table: job control. `/jobs/train` and `/jobs/serve`
/// take a JSON spec body (empty body = all defaults) and answer with the
/// new job id; `/jobs/{id}/stop` requests a cooperative stop.
fn route_post(state: &CtlState, path: &str, body: &str) -> (u16, &'static str, String) {
    let parse_spec = |body: &str| -> Result<serde::Value, String> {
        if body.trim().is_empty() {
            Ok(serde::Value::Object(Vec::new()))
        } else {
            serde_json::from_str::<serde::Value>(body).map_err(|e| e.to_string())
        }
    };
    let bad = |msg: &str| {
        (
            400,
            "Bad Request",
            format!(r#"{{"error":{}}}"#, json_str(msg)),
        )
    };
    match path {
        "/jobs/train" => match parse_spec(body).and_then(|v| TrainJobSpec::from_json(&v)) {
            Ok(spec) => {
                let id = state.jobs().spawn_train(spec);
                (200, "OK", format!(r#"{{"id":{id},"kind":"train"}}"#))
            }
            Err(e) => bad(&e),
        },
        "/jobs/serve" => match parse_spec(body).and_then(|v| ServeJobSpec::from_json(&v)) {
            Ok(spec) => {
                let id = state.jobs().spawn_serve(spec);
                (200, "OK", format!(r#"{{"id":{id},"kind":"serve"}}"#))
            }
            Err(e) => bad(&e),
        },
        _ => {
            if let Some(id) = path
                .strip_prefix("/jobs/")
                .and_then(|rest| rest.strip_suffix("/stop"))
                .and_then(|id| id.parse::<u64>().ok())
            {
                let stopped = state.jobs().stop(id);
                if stopped {
                    (200, "OK", format!(r#"{{"id":{id},"stopped":true}}"#))
                } else {
                    (
                        404,
                        "Not Found",
                        format!(r#"{{"error":"no such job","id":{id}}}"#),
                    )
                }
            } else if route(state, path).is_some() {
                // A GET-only resource: method not allowed, not missing.
                (
                    405,
                    "Method Not Allowed",
                    r#"{"error":"method not allowed","method":"POST"}"#.to_string(),
                )
            } else {
                (
                    404,
                    "Not Found",
                    format!(r#"{{"error":"not found","path":{}}}"#, json_str(path)),
                )
            }
        }
    }
}

fn to_json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("in-memory serialization cannot fail")
}

/// Minimal JSON string quoting for the error bodies (paths and methods
/// are ASCII in practice; control characters are escaped defensively).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Reads one full request: the head up to the blank line, then — when a
/// `Content-Length` header is present — exactly that many body bytes.
/// Returns `None` on EOF mid-request, hard I/O errors, the overall
/// [`REQUEST_DEADLINE`] expiring, or oversized requests.
///
/// TCP gives no framing guarantees: the head can arrive split across
/// any number of segments and a body can dribble in one byte at a time,
/// with the per-read timeout ([`SOCKET_TIMEOUT`]) firing between bytes.
/// `Interrupted` always resumes; `WouldBlock`/`TimedOut` resume until
/// the deadline — a transient stall must not drop or truncate an
/// otherwise valid request. Generic over [`Read`] so the resume logic
/// is unit-testable against scripted streams.
fn read_request<R: Read>(stream: &mut R) -> Option<(String, String)> {
    let start = Instant::now();
    let mut data = Vec::new();
    let mut buf = [0u8; 1024];
    let mut read_more = |data: &mut Vec<u8>| -> Option<()> {
        loop {
            match stream.read(&mut buf) {
                Ok(0) => return None,
                Ok(n) => {
                    data.extend_from_slice(&buf[..n]);
                    return Some(());
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) && start.elapsed() < REQUEST_DEADLINE => {}
                Err(_) => return None,
            }
        }
    };
    let head_end = loop {
        if let Some(pos) = data.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        if data.len() > MAX_REQUEST_BYTES {
            return None;
        }
        read_more(&mut data)?;
    };
    let head = String::from_utf8(data[..head_end].to_vec()).ok()?;
    let content_length = head
        .lines()
        .skip(1)
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.trim()
                .eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse::<usize>().ok())?
        })
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return None;
    }
    while data.len() < head_end + content_length {
        read_more(&mut data)?;
    }
    let body = String::from_utf8(data[head_end..head_end + content_length].to_vec()).ok()?;
    Some((head, body))
}

/// Writes one complete `Content-Length`-framed JSON response.
fn respond(stream: &mut TcpStream, status: u16, reason: &str, body: &str) {
    let allow = if status == 405 {
        "Allow: GET, POST\r\n"
    } else {
        ""
    };
    let response = format!(
        "HTTP/1.1 {status} {reason}\r\n\
         Content-Type: application/json\r\n\
         Content-Length: {}\r\n\
         {allow}Connection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_of<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |var| {
            pairs
                .iter()
                .find(|(k, _)| *k == var)
                .map(|(_, v)| (*v).to_string())
        }
    }

    #[test]
    fn config_defaults_when_env_unset() {
        let cfg = CtlConfig::from_lookup(&env_of(&[])).unwrap();
        assert_eq!(cfg, CtlConfig::default());
        assert_eq!(cfg.addr, "127.0.0.1:0");
        assert_eq!(cfg.threads, 2);
    }

    #[test]
    fn config_applies_valid_overrides() {
        let get = env_of(&[
            ("DOSCO_CTL_ADDR", " 0.0.0.0:9090 "),
            ("DOSCO_CTL_THREADS", "8"),
        ]);
        let cfg = CtlConfig::from_lookup(&get).unwrap();
        assert_eq!(cfg.addr, "0.0.0.0:9090");
        assert_eq!(cfg.threads, 8);
    }

    #[test]
    fn config_rejects_malformed_addr_naming_the_variable() {
        let get = env_of(&[("DOSCO_CTL_ADDR", "not-an-addr")]);
        let err = CtlConfig::from_lookup(&get).unwrap_err();
        assert_eq!(err.var, "DOSCO_CTL_ADDR");
        assert_eq!(err.value, "not-an-addr");
        assert!(err.to_string().contains("socket address"), "{err}");
    }

    #[test]
    fn config_rejects_out_of_range_threads() {
        for bad in ["0", "65", "minus"] {
            let pairs = [("DOSCO_CTL_THREADS", bad)];
            let err = CtlConfig::from_lookup(&env_of(&pairs)).unwrap_err();
            assert_eq!(err.var, "DOSCO_CTL_THREADS", "{bad}");
        }
    }

    #[test]
    fn json_str_escapes_quotes_and_controls() {
        assert_eq!(json_str("plain"), "\"plain\"");
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("x\ny"), "\"x\\u000ay\"");
    }

    /// Delivers at most one byte per `read` with scripted transient
    /// errors interleaved — a TCP client at its most adversarial.
    struct DribbleStream {
        steps: std::collections::VecDeque<Result<u8, io::ErrorKind>>,
    }

    impl DribbleStream {
        fn of(bytes: &[u8], interleave: &[io::ErrorKind]) -> Self {
            let mut steps = std::collections::VecDeque::new();
            for (i, &b) in bytes.iter().enumerate() {
                if !interleave.is_empty() {
                    steps.push_back(Err(interleave[i % interleave.len()]));
                }
                steps.push_back(Ok(b));
            }
            DribbleStream { steps }
        }
    }

    impl Read for DribbleStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.steps.pop_front() {
                None => Ok(0),
                Some(Ok(b)) => {
                    buf[0] = b;
                    Ok(1)
                }
                Some(Err(kind)) => Err(kind.into()),
            }
        }
    }

    /// Regression: a head split across arbitrarily many reads, with a
    /// timeout or interrupt before every byte, must still parse —
    /// previously any `Err(_)` dropped the request as a 400.
    #[test]
    fn read_request_survives_split_head_and_transient_errors() {
        let raw = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
        let errs = [
            io::ErrorKind::Interrupted,
            io::ErrorKind::WouldBlock,
            io::ErrorKind::TimedOut,
        ];
        let mut stream = DribbleStream::of(raw, &errs);
        let (head, body) = read_request(&mut stream).expect("parsed");
        assert!(head.starts_with("GET /healthz HTTP/1.1"));
        assert!(body.is_empty());
    }

    /// Regression: a `Content-Length` body dribbling in one byte at a
    /// time across read timeouts must arrive complete, not truncated.
    #[test]
    fn read_request_survives_dribbled_body() {
        let raw = b"POST /jobs/train HTTP/1.1\r\nContent-Length: 13\r\n\r\n{\"epochs\": 1}";
        let errs = [io::ErrorKind::WouldBlock];
        let mut stream = DribbleStream::of(raw, &errs);
        let (head, body) = read_request(&mut stream).expect("parsed");
        assert!(head.starts_with("POST /jobs/train"));
        assert_eq!(body, "{\"epochs\": 1}");
    }

    /// EOF before the head completes is still a bad request.
    #[test]
    fn read_request_rejects_eof_mid_head() {
        let mut stream = DribbleStream::of(b"GET /healthz HTT", &[]);
        assert!(read_request(&mut stream).is_none());
    }

    /// EOF before `Content-Length` bytes arrive is a bad request, not a
    /// silently truncated body.
    #[test]
    fn read_request_rejects_eof_mid_body() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        let mut stream = DribbleStream::of(raw, &[]);
        assert!(read_request(&mut stream).is_none());
    }

    /// A hard I/O error (not a timeout) still fails the request.
    #[test]
    fn read_request_rejects_hard_errors() {
        let mut stream = DribbleStream::of(b"GET / HTTP/1.1\r\n\r\n", &[]);
        stream
            .steps
            .push_front(Err(io::ErrorKind::ConnectionReset));
        assert!(read_request(&mut stream).is_none());
    }

    #[test]
    fn start_and_shutdown_cleanly() {
        let server = CtlServer::start(&CtlConfig::default(), Arc::new(CtlState::new())).unwrap();
        let addr = server.addr();
        assert_ne!(addr.port(), 0, "ephemeral port resolved");
        server.shutdown();
        // After shutdown the listener is gone; a fresh server can bind a
        // fresh ephemeral port immediately.
        let again = CtlServer::start(&CtlConfig::default(), Arc::new(CtlState::new())).unwrap();
        again.shutdown();
    }
}
