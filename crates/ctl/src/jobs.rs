//! Background job control: spawn, observe, and stop training-runtime and
//! serving-fabric runs from the ops surface.
//!
//! A job is one background thread driving either
//! [`dosco_runtime::train_cancellable`] (a fresh A2C agent over
//! [`CoordEnv`] copies of the paper's base scenario) or a cancellable
//! [`dosco_serve::serve`] run (a fresh policy over concurrent episodes).
//! Both planes already expose cooperative cancellation — the runtime
//! checks its flag at every batch boundary, the fabric at every epoch
//! boundary — so `stop` is a flag store, never a kill: the job drains
//! out with its invariants intact (batch conservation, decision
//! accounting) and reports a partial summary.
//!
//! Specs arrive as JSON bodies with every field optional; unknown fields
//! are rejected so a typo'd knob fails loudly instead of silently running
//! the default.

use dosco_core::{CoordEnv, CoordinationPolicy, RewardConfig};
use dosco_core::policy::PolicyMetadata;
use dosco_nn::mlp::{Activation, Mlp};
use dosco_rl::a2c::{A2c, A2cConfig};
use dosco_rl::env::Env;
use dosco_runtime::{train_cancellable, Mode, RuntimeConfig};
use dosco_serve::ServeConfig;
use dosco_simnet::ScenarioConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Serialize, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A training-job spec, with defaults sized for an ops smoke run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainJobSpec {
    /// Environment transitions to train for.
    pub total_steps: usize,
    /// `Mode::Sync` (lockstep, bit-identical to serial) or `Mode::Async`.
    pub mode: Mode,
    /// Actor threads (forced to 1 by sync mode).
    pub n_actors: usize,
    /// Agent / environment seed base.
    pub seed: u64,
    /// Simulated-time horizon of each training episode.
    pub horizon: f64,
}

impl Default for TrainJobSpec {
    fn default() -> Self {
        TrainJobSpec {
            total_steps: 2_000,
            mode: Mode::Async,
            n_actors: 2,
            seed: 0,
            horizon: 300.0,
        }
    }
}

/// A serving-job spec, with defaults sized for an ops smoke run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeJobSpec {
    /// Concurrent episodes to serve.
    pub episodes: usize,
    /// Worker shards (clamped to the node count by the fabric).
    pub num_shards: usize,
    /// `Some(seed)` for stochastic serving, `None` for greedy.
    pub stochastic_seed: Option<u64>,
    /// Policy-init / episode seed base.
    pub seed: u64,
    /// Simulated-time horizon of each served episode.
    pub horizon: f64,
}

impl Default for ServeJobSpec {
    fn default() -> Self {
        ServeJobSpec {
            episodes: 2,
            num_shards: 2,
            stochastic_seed: None,
            seed: 0,
            horizon: 300.0,
        }
    }
}

fn spec_u64(obj: &Value, key: &str) -> Result<Option<u64>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field {key:?} must be a non-negative integer")),
    }
}

fn spec_f64(obj: &Value, key: &str) -> Result<Option<f64>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("field {key:?} must be a number")),
    }
}

/// Rejects unknown keys so a misspelled knob cannot silently run the
/// default configuration.
fn check_keys(spec: &Value, allowed: &[&str]) -> Result<(), String> {
    let Some(entries) = spec.as_object() else {
        return Err("job spec must be a JSON object".to_string());
    };
    for (k, _) in entries {
        if !allowed.contains(&k.as_str()) {
            return Err(format!("unknown field {k:?} (allowed: {allowed:?})"));
        }
    }
    Ok(())
}

impl TrainJobSpec {
    /// Parses a JSON body (`{}` and missing fields take defaults).
    ///
    /// # Errors
    ///
    /// A message naming the offending field.
    pub fn from_json(spec: &Value) -> Result<Self, String> {
        check_keys(
            spec,
            &["total_steps", "mode", "n_actors", "seed", "horizon"],
        )?;
        let mut out = TrainJobSpec::default();
        if let Some(v) = spec_u64(spec, "total_steps")? {
            out.total_steps = usize::try_from(v).map_err(|_| "total_steps too large")?;
        }
        if let Some(v) = spec.get("mode") {
            out.mode = match v.as_str() {
                Some("sync") => Mode::Sync,
                Some("async") => Mode::Async,
                _ => return Err(r#"field "mode" must be "sync" or "async""#.to_string()),
            };
        }
        if let Some(v) = spec_u64(spec, "n_actors")? {
            if v == 0 {
                return Err(r#"field "n_actors" must be at least 1"#.to_string());
            }
            out.n_actors = usize::try_from(v).map_err(|_| "n_actors too large")?;
        }
        if let Some(v) = spec_u64(spec, "seed")? {
            out.seed = v;
        }
        if let Some(v) = spec_f64(spec, "horizon")? {
            if !(v.is_finite() && v > 0.0) {
                return Err(r#"field "horizon" must be a positive number"#.to_string());
            }
            out.horizon = v;
        }
        Ok(out)
    }
}

impl ServeJobSpec {
    /// Parses a JSON body (`{}` and missing fields take defaults).
    ///
    /// # Errors
    ///
    /// A message naming the offending field.
    pub fn from_json(spec: &Value) -> Result<Self, String> {
        check_keys(
            spec,
            &["episodes", "num_shards", "stochastic_seed", "seed", "horizon"],
        )?;
        let mut out = ServeJobSpec::default();
        if let Some(v) = spec_u64(spec, "episodes")? {
            if v == 0 {
                return Err(r#"field "episodes" must be at least 1"#.to_string());
            }
            out.episodes = usize::try_from(v).map_err(|_| "episodes too large")?;
        }
        if let Some(v) = spec_u64(spec, "num_shards")? {
            if v == 0 {
                return Err(r#"field "num_shards" must be at least 1"#.to_string());
            }
            out.num_shards = usize::try_from(v).map_err(|_| "num_shards too large")?;
        }
        if let Some(v) = spec_u64(spec, "stochastic_seed")? {
            out.stochastic_seed = Some(v);
        }
        if let Some(v) = spec_u64(spec, "seed")? {
            out.seed = v;
        }
        if let Some(v) = spec_f64(spec, "horizon")? {
            if !(v.is_finite() && v > 0.0) {
                return Err(r#"field "horizon" must be a positive number"#.to_string());
            }
            out.horizon = v;
        }
        Ok(out)
    }
}

/// One job as `GET /jobs` reports it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct JobView {
    /// The id `POST /jobs/{kind}` returned.
    pub id: u64,
    /// `"train"` or `"serve"`.
    pub kind: String,
    /// `"running"` or `"done"`.
    pub state: String,
    /// Whether a stop was requested (the job may still be draining).
    pub stop_requested: bool,
    /// The job's summary line once done.
    pub summary: Option<String>,
}

struct Job {
    kind: &'static str,
    cancel: Arc<AtomicBool>,
    handle: Option<JoinHandle<String>>,
    summary: Option<String>,
}

impl Job {
    /// Joins a finished worker, caching its summary. Running jobs are
    /// left alone — this never blocks.
    fn reap(&mut self) {
        if self.handle.as_ref().is_some_and(JoinHandle::is_finished) {
            let handle = self.handle.take().expect("checked above");
            self.summary = Some(match handle.join() {
                Ok(s) => s,
                Err(_) => "job panicked".to_string(),
            });
        }
    }

    fn view(&self, id: u64) -> JobView {
        JobView {
            id,
            kind: self.kind.to_string(),
            state: if self.handle.is_some() { "running" } else { "done" }.to_string(),
            stop_requested: self.cancel.load(Ordering::Relaxed),
            summary: self.summary.clone(),
        }
    }
}

/// The job table behind the `POST /jobs/*` routes. Thread-safe; the HTTP
/// workers call it concurrently.
#[derive(Default)]
pub struct JobManager {
    jobs: Mutex<BTreeMap<u64, Job>>,
    next_id: AtomicU64,
}

impl std::fmt::Debug for JobManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobManager")
            .field("jobs", &self.jobs.lock().expect("job table poisoned").len())
            .finish()
    }
}

impl JobManager {
    /// An empty job table.
    #[must_use]
    pub fn new() -> Self {
        JobManager::default()
    }

    fn register(&self, job: Job) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        self.jobs
            .lock()
            .expect("job table poisoned")
            .insert(id, job);
        id
    }

    /// Spawns a cancellable training run and returns its job id.
    pub fn spawn_train(&self, spec: TrainJobSpec) -> u64 {
        let cancel = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&cancel);
        let handle = std::thread::Builder::new()
            .name("dosco-ctl-job-train".to_string())
            .spawn(move || run_train_job(&spec, &flag))
            .expect("spawning train job thread");
        self.register(Job {
            kind: "train",
            cancel,
            handle: Some(handle),
            summary: None,
        })
    }

    /// Spawns a cancellable serving run and returns its job id.
    pub fn spawn_serve(&self, spec: ServeJobSpec) -> u64 {
        let cancel = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&cancel);
        let handle = std::thread::Builder::new()
            .name("dosco-ctl-job-serve".to_string())
            .spawn(move || run_serve_job(&spec, &flag))
            .expect("spawning serve job thread");
        self.register(Job {
            kind: "serve",
            cancel,
            handle: Some(handle),
            summary: None,
        })
    }

    /// Requests a cooperative stop. Returns `false` for an unknown id.
    /// The job keeps running until its next cancellation point; poll
    /// `GET /jobs` for the drain.
    pub fn stop(&self, id: u64) -> bool {
        let jobs = self.jobs.lock().expect("job table poisoned");
        match jobs.get(&id) {
            Some(job) => {
                job.cancel.store(true, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// All jobs in id order, reaping finished workers on the way.
    pub fn list(&self) -> Vec<JobView> {
        let mut jobs = self.jobs.lock().expect("job table poisoned");
        jobs.iter_mut()
            .map(|(&id, job)| {
                job.reap();
                job.view(id)
            })
            .collect()
    }

    /// Stops every job and blocks until all workers have drained.
    pub fn shutdown(&self) {
        let mut jobs = self.jobs.lock().expect("job table poisoned");
        for job in jobs.values_mut() {
            job.cancel.store(true, Ordering::Relaxed);
        }
        for job in jobs.values_mut() {
            if let Some(handle) = job.handle.take() {
                job.summary = Some(match handle.join() {
                    Ok(s) => s,
                    Err(_) => "job panicked".to_string(),
                });
            }
        }
    }
}

/// The training-job body: a fresh A2C agent over `CoordEnv` copies of
/// the paper's base scenario, run through the cancellable runtime.
fn run_train_job(spec: &TrainJobSpec, cancel: &AtomicBool) -> String {
    let scenario = ScenarioConfig::paper_base(2).with_horizon(spec.horizon);
    let degree = scenario.topology.network_degree();
    let (obs_dim, num_actions) = (4 * degree + 4, degree + 1);
    let n_envs = (2 * spec.n_actors).max(2);
    let mut envs: Vec<Box<dyn Env>> = (0..n_envs)
        .map(|i| {
            Box::new(CoordEnv::new(
                scenario.clone(),
                RewardConfig::default(),
                spec.seed.wrapping_add(i as u64),
                None,
            )) as Box<dyn Env>
        })
        .collect();
    let mut agent = A2c::new(
        obs_dim,
        num_actions,
        A2cConfig {
            n_steps: 16,
            hidden: [32, 32],
            ..A2cConfig::default()
        },
        spec.seed,
    );
    let config = RuntimeConfig {
        mode: spec.mode,
        n_actors: spec.n_actors,
        channel_capacity: 4,
        minibatch_batches: 1,
        max_staleness: 64,
        actor_seed: spec.seed,
    };
    config.validate().expect("job runtime configuration");
    let outcome = train_cancellable(&mut agent, &mut envs, spec.total_steps, &config, cancel);
    format!(
        "trained {} steps over {} updates (mode {}, tail mean reward {:.4})",
        outcome.stats.total_steps,
        outcome.stats.mean_rewards.len(),
        outcome.report.mode,
        outcome.stats.tail_mean(10),
    )
}

/// The serving-job body: a fresh (random-init) policy served over
/// concurrent episodes through the cancellable fabric.
fn run_serve_job(spec: &ServeJobSpec, cancel: &AtomicBool) -> String {
    let scenario = ScenarioConfig::paper_base(2).with_horizon(spec.horizon);
    let degree = scenario.topology.network_degree();
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let actor = Mlp::new(&[4 * degree + 4, 32, degree + 1], Activation::Tanh, &mut rng);
    let policy = CoordinationPolicy::new(actor, degree, PolicyMetadata::default());
    let seeds: Vec<u64> = (0..spec.episodes)
        .map(|i| spec.seed.wrapping_add(i as u64 + 1))
        .collect();
    // The fabric polls its own `Arc` flag; the epoch hook mirrors the
    // job's flag into it (the hook runs at every epoch boundary, exactly
    // where the fabric checks).
    let shared = Arc::new(AtomicBool::new(cancel.load(Ordering::Relaxed)));
    let mut cfg = ServeConfig::new(spec.num_shards).with_cancel(Arc::clone(&shared));
    if let Some(s) = spec.stochastic_seed {
        cfg = cfg.with_stochastic_seed(s);
    }
    let outcome = dosco_serve::serve_with(&policy, None, &scenario, &seeds, &cfg, |_| {
        if cancel.load(Ordering::Relaxed) {
            shared.store(true, Ordering::Relaxed);
        }
    });
    format!(
        "served {} episodes over {} epochs: {} decisions ({} batched, {} fallback)",
        seeds.len(),
        outcome.report.epochs,
        outcome.report.decisions,
        outcome.report.batched_decisions,
        outcome.report.fallback_decisions,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json(s: &str) -> Value {
        serde_json::from_str::<Value>(s).expect("test JSON parses")
    }

    #[test]
    fn specs_default_and_override() {
        let t = TrainJobSpec::from_json(&json("{}")).unwrap();
        assert_eq!(t, TrainJobSpec::default());
        let t = TrainJobSpec::from_json(&json(
            r#"{"total_steps": 500, "mode": "sync", "seed": 9}"#,
        ))
        .unwrap();
        assert_eq!(t.total_steps, 500);
        assert_eq!(t.mode, Mode::Sync);
        assert_eq!(t.seed, 9);

        let s = ServeJobSpec::from_json(&json(r#"{"episodes": 3, "stochastic_seed": 7}"#)).unwrap();
        assert_eq!(s.episodes, 3);
        assert_eq!(s.stochastic_seed, Some(7));
    }

    #[test]
    fn specs_reject_unknown_and_malformed_fields() {
        let err = TrainJobSpec::from_json(&json(r#"{"totl_steps": 500}"#)).unwrap_err();
        assert!(err.contains("totl_steps"), "{err}");
        let err = TrainJobSpec::from_json(&json(r#"{"mode": "turbo"}"#)).unwrap_err();
        assert!(err.contains("mode"), "{err}");
        let err = ServeJobSpec::from_json(&json(r#"{"episodes": 0}"#)).unwrap_err();
        assert!(err.contains("episodes"), "{err}");
        let err = ServeJobSpec::from_json(&json(r#"[1,2]"#)).unwrap_err();
        assert!(err.contains("object"), "{err}");
    }

    #[test]
    fn jobs_run_stop_and_reap() {
        let mgr = JobManager::new();
        let id = mgr.spawn_train(TrainJobSpec {
            total_steps: 1_000_000_000, // far beyond the test's patience
            mode: Mode::Sync,
            n_actors: 1,
            seed: 1,
            horizon: 100.0,
        });
        assert!(mgr.stop(id), "known id stops");
        assert!(!mgr.stop(id + 999), "unknown id does not");
        mgr.shutdown();
        let jobs = mgr.list();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].state, "done");
        assert!(jobs[0].stop_requested);
        assert!(jobs[0].summary.as_deref().unwrap_or("").contains("trained"));
    }
}
