//! Shared state behind the ops endpoints: optional attachments to the
//! training plane (a [`PolicySlot`]), the serving plane (a
//! [`StatusBoard`]), and the artifact store (a [`PolicyRegistry`]).
//!
//! Every attachment is optional so the server can come up first and have
//! planes attached as they start; detached endpoints answer honestly
//! (`attached: false` / `null` fields) instead of erroring.

use crate::jobs::JobManager;
use crate::registry::{ArtifactMeta, PolicyRegistry};
use dosco_runtime::PolicySlot;
use dosco_serve::{FabricStatus, StatusBoard};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};

/// The `GET /healthz` response body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthResponse {
    /// Always `true` when the server answers at all.
    pub ok: bool,
    /// Service identifier.
    pub service: String,
}

/// The published policy slot, as `GET /snapshot` reports it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotView {
    /// Version of the currently published snapshot.
    pub version: u64,
    /// Parameter count of the snapshot's actor network.
    pub actor_params: usize,
    /// Parameter count of the snapshot's critic network.
    pub critic_params: usize,
    /// Whether the training runtime is shutting down.
    pub closed: bool,
}

/// The `GET /snapshot` response body: the live policy slot and the
/// registry's promoted head, each `null` while detached.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotResponse {
    /// The attached [`PolicySlot`]'s current state.
    pub slot: Option<SlotView>,
    /// The attached registry's promoted head entry.
    pub registry_head: Option<ArtifactMeta>,
}

/// The `GET /shards` response body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardsResponse {
    /// Whether a fabric's status board is attached.
    pub attached: bool,
    /// The board's latest snapshot (all-default while detached).
    pub status: FabricStatus,
}

/// Everything the ops endpoints read. Attachments can be installed at
/// any time from any thread; the HTTP workers read them per request.
#[derive(Debug, Default)]
pub struct CtlState {
    slot: Mutex<Option<Arc<PolicySlot>>>,
    board: Mutex<Option<Arc<StatusBoard>>>,
    registry: Mutex<Option<Arc<Mutex<PolicyRegistry>>>>,
    jobs: JobManager,
}

impl CtlState {
    /// Creates a state with nothing attached.
    pub fn new() -> Self {
        CtlState::default()
    }

    /// Attaches (or replaces) the training plane's policy slot.
    pub fn attach_slot(&self, slot: Arc<PolicySlot>) {
        *self.slot.lock().expect("ctl state poisoned") = Some(slot);
    }

    /// Attaches (or replaces) the serving fabric's status board.
    pub fn attach_board(&self, board: Arc<StatusBoard>) {
        *self.board.lock().expect("ctl state poisoned") = Some(board);
    }

    /// Attaches (or replaces) the policy registry.
    pub fn attach_registry(&self, registry: Arc<Mutex<PolicyRegistry>>) {
        *self.registry.lock().expect("ctl state poisoned") = Some(registry);
    }

    /// The background-job table behind the `POST /jobs/*` routes.
    pub fn jobs(&self) -> &JobManager {
        &self.jobs
    }

    /// The `GET /healthz` body.
    pub fn healthz(&self) -> HealthResponse {
        HealthResponse {
            ok: true,
            service: "dosco_ctl".to_string(),
        }
    }

    /// The `GET /snapshot` body.
    pub fn snapshot_response(&self) -> SnapshotResponse {
        let slot = self
            .slot
            .lock()
            .expect("ctl state poisoned")
            .as_ref()
            .map(|s| {
                let info = s.info();
                SlotView {
                    version: info.version,
                    actor_params: info.actor_params,
                    critic_params: info.critic_params,
                    closed: info.closed,
                }
            });
        let registry_head = self
            .registry
            .lock()
            .expect("ctl state poisoned")
            .as_ref()
            .and_then(|r| r.lock().expect("registry poisoned").head().cloned());
        SnapshotResponse {
            slot,
            registry_head,
        }
    }

    /// The `GET /shards` body.
    pub fn shards_response(&self) -> ShardsResponse {
        match self.board.lock().expect("ctl state poisoned").as_ref() {
            Some(board) => ShardsResponse {
                attached: true,
                status: board.snapshot(),
            },
            None => ShardsResponse {
                attached: false,
                status: FabricStatus::default(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosco_runtime::PolicySnapshot;
    use dosco_nn::mlp::{Activation, Mlp};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn detached_state_answers_honestly() {
        let state = CtlState::new();
        assert!(state.healthz().ok);
        let snap = state.snapshot_response();
        assert_eq!(snap.slot, None);
        assert_eq!(snap.registry_head, None);
        let shards = state.shards_response();
        assert!(!shards.attached);
        assert_eq!(shards.status, FabricStatus::default());
    }

    #[test]
    fn attached_slot_is_reflected_live() {
        let mut rng = StdRng::seed_from_u64(3);
        let slot = Arc::new(PolicySlot::new(PolicySnapshot {
            version: 5,
            actor: Mlp::new(&[2, 3, 2], Activation::Tanh, &mut rng),
            critic: Mlp::new(&[2, 3, 1], Activation::Tanh, &mut rng),
        }));
        let state = CtlState::new();
        state.attach_slot(Arc::clone(&slot));
        let view = state.snapshot_response().slot.unwrap();
        assert_eq!(view.version, 5);
        assert_eq!(view.actor_params, 17);
        assert!(!view.closed);
        slot.close();
        assert!(state.snapshot_response().slot.unwrap().closed);
    }

    #[test]
    fn responses_serialize_deterministically() {
        let state = CtlState::new();
        let a = serde_json::to_string(&state.snapshot_response()).unwrap();
        let b = serde_json::to_string(&state.snapshot_response()).unwrap();
        assert_eq!(a, b);
        let back: SnapshotResponse = serde_json::from_str(&a).unwrap();
        assert_eq!(back, state.snapshot_response());
    }
}
