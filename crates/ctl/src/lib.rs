//! The coordinator / control plane for the serving fabric: everything an
//! operator touches that is *not* on the decision hot path.
//!
//! Three pillars:
//!
//! - **Ops HTTP surface** ([`http`]): a dependency-free HTTP/1.1 server
//!   on `std::net::TcpListener` (bounded worker threads, no async)
//!   exposing `GET /metrics` (the full `dosco_obs` registry as
//!   deterministic JSON), `GET /snapshot` (published policy version and
//!   registry head), `GET /shards` (the fabric's live
//!   [`FabricStatus`](dosco_serve::FabricStatus)), and `GET /healthz`.
//! - **Versioned policy registry** ([`registry`]): an on-disk store of
//!   [`CoordinationPolicy`](dosco_core::CoordinationPolicy) artifacts
//!   with a manifest (version, parent, algorithm, checksum, creation
//!   step), an append-only promotion log, and integrity verification on
//!   every load — both the artifact's own checksummed header and the
//!   manifest's independent record must agree.
//! - **Canary lifecycle** ([`canary`]): publish a candidate snapshot to
//!   a shard subset, compare per-version decision accounting and flow
//!   metrics over an epoch window, then promote (broadcast to all
//!   shards) or roll back (republish the incumbent) — every transition
//!   delivered through the fabric's epoch-boundary swap path, so version
//!   accounting stays exact under canarying too.
//!
//! Cost model: the control plane rides entirely on epoch-boundary
//! attachments ([`ControlQueue`](dosco_serve::ControlQueue),
//! [`StatusBoard`](dosco_serve::StatusBoard)); a fabric with nothing
//! attached pays one `Option` check per epoch and nothing per decision.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![warn(missing_debug_implementations)]

pub mod canary;
pub mod http;
pub mod jobs;
pub mod registry;
pub mod state;

pub use canary::{
    run_canary, CanaryConfig, CanaryDecision, CanaryOutcome, CanaryReport, CanaryStats,
    ThresholdJudge,
};
pub use http::{CtlConfig, CtlServer};
pub use jobs::{JobManager, JobView, ServeJobSpec, TrainJobSpec};
pub use registry::{ArtifactMeta, PolicyRegistry, PromotionAction, PromotionRecord};
pub use state::{CtlState, HealthResponse, ShardsResponse, SlotView, SnapshotResponse};
