//! The canary lifecycle: candidate on a shard subset → observe an epoch
//! window → promote or roll back, all through epoch-boundary swaps.
//!
//! [`run_canary`] wires a [`ControlQueue`] and a [`StatusBoard`] into
//! one serving run and drives the state machine from the fabric's
//! deterministic epoch hook:
//!
//! 1. At `start_epoch`, snapshot the board (window start) and publish
//!    the candidate to `canary_shards` only.
//! 2. At `start_epoch + window`, snapshot the board again (window end),
//!    hand the [`CanaryStats`] — per-version decision deltas and flow
//!    metric deltas over the window — to the judge.
//! 3. [`CanaryDecision::Promote`]: publish the candidate through the
//!    hub, converging *every* shard at that boundary.
//!    [`CanaryDecision::Rollback`]: republish the incumbent to exactly
//!    the canary shards.
//!
//! Both transitions ride the fabric's single epoch-boundary swap path,
//! so `decisions_by_version` accounting stays exact through the whole
//! lifecycle: every decision is attributable to incumbent or candidate,
//! and the two buckets sum to the batched total.
//!
//! Because both window snapshots come from the same boundary-published
//! board, they lag real time identically — the deltas cover exactly
//! `window` epochs of traffic.

use dosco_core::policy::PolicyMetadata;
use dosco_core::CoordinationPolicy;
use dosco_runtime::{PolicySlot, PolicySnapshot};
use dosco_serve::{
    serve_with, ControlQueue, FabricStatus, PublishCmd, PublishScope, ServeConfig, ServeOutcome,
    StatusBoard,
};
use dosco_simnet::ScenarioConfig;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Shape of one canary experiment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CanaryConfig {
    /// The shard subset that serves the candidate during the window.
    pub canary_shards: Vec<usize>,
    /// Epoch the candidate lands (must be ≥ 1 so a window-start status
    /// snapshot exists).
    pub start_epoch: u64,
    /// Epochs of candidate traffic observed before judging (≥ 1).
    pub window: u64,
}

impl CanaryConfig {
    /// A canary on `canary_shards` starting at `start_epoch` for
    /// `window` epochs.
    pub fn new(canary_shards: Vec<usize>, start_epoch: u64, window: u64) -> Self {
        CanaryConfig {
            canary_shards,
            start_epoch,
            window,
        }
    }

    /// Checks the configuration is usable.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.canary_shards.is_empty() {
            return Err("canary_shards must name at least one shard".into());
        }
        if self.start_epoch == 0 {
            return Err("start_epoch must be at least 1".into());
        }
        if self.window == 0 {
            return Err("window must be at least 1 epoch".into());
        }
        Ok(())
    }
}

/// The judge's verdict at the end of the observation window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CanaryDecision {
    /// Broadcast the candidate to every shard.
    Promote,
    /// Republish the incumbent to the canary shards.
    Rollback,
}

/// What the judge sees: the board at both ends of the window, plus the
/// two versions under comparison. All `window_*` accessors are deltas
/// over the window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CanaryStats {
    /// Version serving everywhere before the canary.
    pub incumbent_version: u64,
    /// Version under trial on the canary shards.
    pub candidate_version: u64,
    /// Board snapshot taken at `start_epoch`, before the candidate
    /// landed.
    pub window_start: FabricStatus,
    /// Board snapshot taken at `start_epoch + window`, before the
    /// verdict is applied.
    pub window_end: FabricStatus,
}

impl CanaryStats {
    /// Batched decisions the candidate answered during the window.
    pub fn candidate_decisions(&self) -> u64 {
        self.window_end.decisions_at_version(self.candidate_version)
            - self.window_start.decisions_at_version(self.candidate_version)
    }

    /// Batched decisions the incumbent answered during the window.
    pub fn incumbent_decisions(&self) -> u64 {
        self.window_end.decisions_at_version(self.incumbent_version)
            - self.window_start.decisions_at_version(self.incumbent_version)
    }

    /// Total decisions applied during the window (batched + fallback).
    pub fn window_decisions(&self) -> u64 {
        self.window_end.decisions - self.window_start.decisions
    }

    /// Flows completed during the window, fabric-wide.
    pub fn window_flows_completed(&self) -> u64 {
        self.window_end.flows_completed - self.window_start.flows_completed
    }

    /// Flows dropped during the window, fabric-wide.
    pub fn window_flows_dropped(&self) -> u64 {
        self.window_end.flows_dropped - self.window_start.flows_dropped
    }

    /// The paper's success objective over flows that terminated during
    /// the window, or `None` when no flow terminated.
    pub fn window_success_ratio(&self) -> Option<f64> {
        let terminated = self.window_flows_completed() + self.window_flows_dropped();
        (terminated > 0).then(|| self.window_flows_completed() as f64 / terminated as f64)
    }

    /// The cumulative success ratio *before* the window — the baseline
    /// the window is compared against.
    pub fn baseline_success_ratio(&self) -> Option<f64> {
        self.window_start.success_ratio()
    }
}

/// The built-in judge: promote unless the candidate saw no traffic or
/// the window's success ratio dropped too far below the pre-window
/// baseline. Inject a closure into [`run_canary`] for anything fancier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdJudge {
    /// The candidate must have answered at least this many batched
    /// decisions during the window (a canary that served nothing proves
    /// nothing — roll back).
    pub min_candidate_decisions: u64,
    /// Largest tolerated drop of the window success ratio below the
    /// pre-window baseline (absolute, e.g. `0.05` = five points).
    pub max_success_drop: f64,
}

impl Default for ThresholdJudge {
    fn default() -> Self {
        ThresholdJudge {
            min_candidate_decisions: 1,
            max_success_drop: 0.05,
        }
    }
}

impl ThresholdJudge {
    /// The verdict for `stats`.
    pub fn decide(&self, stats: &CanaryStats) -> CanaryDecision {
        if stats.candidate_decisions() < self.min_candidate_decisions {
            return CanaryDecision::Rollback;
        }
        match (stats.baseline_success_ratio(), stats.window_success_ratio()) {
            (Some(baseline), Some(window)) if window + self.max_success_drop < baseline => {
                CanaryDecision::Rollback
            }
            // No baseline or no terminated flows in the window: nothing
            // contradicts the candidate.
            _ => CanaryDecision::Promote,
        }
    }
}

/// What the canary run concluded.
#[derive(Debug, Clone, PartialEq)]
pub struct CanaryReport {
    /// The verdict, or `None` when the episodes ended before the window
    /// completed (no transition was applied).
    pub decision: Option<CanaryDecision>,
    /// The stats the judge saw (`None` iff `decision` is).
    pub stats: Option<CanaryStats>,
    /// Version that served everywhere before the canary.
    pub incumbent_version: u64,
    /// Version under trial.
    pub candidate_version: u64,
}

/// A canary run's full result: the serving outcome plus the verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct CanaryOutcome {
    /// Metrics and fabric accounting of the underlying serving run.
    pub serve: ServeOutcome,
    /// The canary state machine's conclusion.
    pub report: CanaryReport,
}

/// Runs one serving workload under the canary lifecycle.
///
/// The incumbent serves everywhere from epoch 0; the candidate lands on
/// `canary.canary_shards` at `canary.start_epoch`; the judge decides at
/// `start_epoch + window`, and the verdict (promote everywhere / roll
/// the canary shards back) is applied at that same boundary. The run
/// then continues to episode completion so the verdict's effect is
/// visible in the final report.
///
/// `base_cfg` supplies shards/mailbox/stochastic/fault settings. A
/// status board already attached there is *reused* — attach the same
/// board to a [`CtlState`](crate::CtlState) and `GET /shards` watches
/// the canary live. Any control-queue attachment is replaced by the
/// driver's own (the state machine owns the directives).
///
/// # Panics
///
/// Panics if `canary` fails [`CanaryConfig::validate`], if the candidate
/// does not carry a version distinct from the incumbent (version
/// accounting could not separate them), or for any reason
/// [`serve_with`] panics.
pub fn run_canary(
    incumbent: Arc<PolicySnapshot>,
    candidate: Arc<PolicySnapshot>,
    scenario: &ScenarioConfig,
    episode_seeds: &[u64],
    base_cfg: &ServeConfig,
    canary: &CanaryConfig,
    mut judge: impl FnMut(&CanaryStats) -> CanaryDecision,
) -> CanaryOutcome {
    canary
        .validate()
        .expect("canary configuration must be valid");
    assert_ne!(
        incumbent.version, candidate.version,
        "candidate must carry a version distinct from the incumbent"
    );
    let degree = scenario.topology.network_degree();
    // The observation contract the fabric serves under; the hub supplies
    // the actual weights.
    let contract = CoordinationPolicy::new(
        incumbent.actor.clone(),
        degree,
        PolicyMetadata {
            algorithm: format!("canary-incumbent-v{}", incumbent.version),
            ..PolicyMetadata::default()
        },
    );
    let control = Arc::new(ControlQueue::new());
    let board = base_cfg
        .status
        .clone()
        .unwrap_or_else(|| Arc::new(StatusBoard::new()));
    let cfg = base_cfg
        .clone()
        .with_control(Arc::clone(&control))
        .with_status(Arc::clone(&board));
    let hub = PolicySlot::new((*incumbent).clone());

    let decide_epoch = canary.start_epoch + canary.window;
    let mut window_start: Option<FabricStatus> = None;
    let mut decision: Option<CanaryDecision> = None;
    let mut stats_out: Option<CanaryStats> = None;

    let serve = serve_with(&contract, Some(&hub), scenario, episode_seeds, &cfg, |epoch| {
        if epoch == canary.start_epoch {
            // The board holds the previous boundary's state; the
            // candidate's publish below lands at *this* boundary, so the
            // snapshot cleanly precedes all candidate traffic.
            window_start = Some(board.snapshot());
            control.push(PublishCmd {
                snapshot: Arc::clone(&candidate),
                scope: PublishScope::Shards(canary.canary_shards.clone()),
            });
        } else if epoch == decide_epoch {
            let stats = CanaryStats {
                incumbent_version: incumbent.version,
                candidate_version: candidate.version,
                window_start: window_start.take().expect("window start precedes window end"),
                window_end: board.snapshot(),
            };
            let verdict = judge(&stats);
            match verdict {
                // Promote through the hub: with a hub attached, the hub
                // is the fabric's source of truth for the "current"
                // policy, and its publish is the same epoch-boundary
                // swap. (An All-scope control publish would be reverted
                // by the next hub poll.)
                CanaryDecision::Promote => hub.publish(Arc::clone(&candidate)),
                CanaryDecision::Rollback => control.push(PublishCmd {
                    snapshot: Arc::clone(&incumbent),
                    scope: PublishScope::Shards(canary.canary_shards.clone()),
                }),
            }
            stats_out = Some(stats);
            decision = Some(verdict);
        }
    });

    CanaryOutcome {
        serve,
        report: CanaryReport {
            decision,
            stats: stats_out,
            incumbent_version: incumbent.version,
            candidate_version: candidate.version,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn status(decisions: u64, by_version: Vec<(u64, u64)>, completed: u64, dropped: u64) -> FabricStatus {
        FabricStatus {
            decisions,
            decisions_by_version: by_version,
            flows_completed: completed,
            flows_dropped: dropped,
            ..FabricStatus::default()
        }
    }

    fn stats(start: FabricStatus, end: FabricStatus) -> CanaryStats {
        CanaryStats {
            incumbent_version: 1,
            candidate_version: 2,
            window_start: start,
            window_end: end,
        }
    }

    #[test]
    fn config_validation() {
        assert!(CanaryConfig::new(vec![0], 1, 4).validate().is_ok());
        assert!(CanaryConfig::new(vec![], 1, 4).validate().is_err());
        assert!(CanaryConfig::new(vec![0], 0, 4).validate().is_err());
        assert!(CanaryConfig::new(vec![0], 1, 0).validate().is_err());
    }

    #[test]
    fn stats_deltas_are_window_relative() {
        let s = stats(
            status(100, vec![(1, 100)], 40, 10),
            status(180, vec![(1, 150), (2, 30)], 70, 20),
        );
        assert_eq!(s.incumbent_decisions(), 50);
        assert_eq!(s.candidate_decisions(), 30);
        assert_eq!(s.window_decisions(), 80);
        assert_eq!(s.window_flows_completed(), 30);
        assert_eq!(s.window_flows_dropped(), 10);
        assert_eq!(s.window_success_ratio(), Some(0.75));
        assert_eq!(s.baseline_success_ratio(), Some(0.8));
    }

    #[test]
    fn threshold_judge_promotes_healthy_candidates() {
        let judge = ThresholdJudge::default();
        // Window ratio 0.75 vs baseline 0.8: within the 0.05 tolerance.
        let s = stats(
            status(100, vec![(1, 100)], 40, 10),
            status(180, vec![(1, 150), (2, 30)], 70, 20),
        );
        assert_eq!(judge.decide(&s), CanaryDecision::Promote);
    }

    #[test]
    fn threshold_judge_rolls_back_idle_candidates() {
        let judge = ThresholdJudge::default();
        let s = stats(
            status(100, vec![(1, 100)], 40, 10),
            status(180, vec![(1, 180)], 70, 20),
        );
        assert_eq!(s.candidate_decisions(), 0);
        assert_eq!(judge.decide(&s), CanaryDecision::Rollback);
    }

    #[test]
    fn threshold_judge_rolls_back_success_regressions() {
        let judge = ThresholdJudge::default();
        // Baseline 0.8, window 0.5: far beyond the tolerated drop.
        let s = stats(
            status(100, vec![(1, 100)], 40, 10),
            status(180, vec![(1, 150), (2, 30)], 50, 20),
        );
        assert_eq!(judge.decide(&s), CanaryDecision::Rollback);
    }

    #[test]
    fn threshold_judge_tolerates_vacuous_windows() {
        let judge = ThresholdJudge::default();
        // Candidate served, but no flow terminated inside the window:
        // nothing contradicts it.
        let s = stats(
            status(100, vec![(1, 100)], 40, 10),
            status(180, vec![(1, 150), (2, 30)], 40, 10),
        );
        assert_eq!(s.window_success_ratio(), None);
        assert_eq!(judge.decide(&s), CanaryDecision::Promote);
    }
}
