//! The versioned policy registry: an on-disk artifact store with a
//! manifest, integrity verification, and an append-only promotion log.
//!
//! Layout under the registry root:
//!
//! ```text
//! root/
//!   manifest.json        # versions, parents, checksums, promoted head
//!   promotions.log       # append-only JSON lines (promote / rollback)
//!   policies/v{N}.json   # integrity-checked CoordinationPolicy artifacts
//! ```
//!
//! Every artifact is written through
//! [`CoordinationPolicy::save`](dosco_core::CoordinationPolicy::save), so
//! the file itself carries a checksummed header; the manifest records the
//! same payload length and FNV-1a 64 checksum *independently*. A load
//! verifies both and cross-checks them against each other — a registry
//! whose manifest and artifacts disagree (partial restore, manual edit)
//! fails loudly with the expected vs. actual values, never by silently
//! serving different weights than the manifest promises.

use dosco_core::policy::fnv1a64;
use dosco_core::CoordinationPolicy;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Format tag of the manifest file.
const REGISTRY_FORMAT: &str = "dosco-registry-v1";
/// Manifest file name under the registry root.
const MANIFEST_FILE: &str = "manifest.json";
/// Promotion log file name under the registry root.
const PROMOTIONS_FILE: &str = "promotions.log";
/// Directory holding the policy artifacts.
const POLICIES_DIR: &str = "policies";

/// One registered policy artifact, as recorded in the manifest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArtifactMeta {
    /// Registry version of this artifact (dense, starting at 0).
    pub version: u64,
    /// The promoted head at the time this artifact was published — the
    /// lineage link for "what was this trained to replace".
    pub parent: Option<u64>,
    /// Training algorithm, copied from the policy's metadata.
    pub algorithm: String,
    /// Environment transitions the policy was trained on, copied from
    /// the policy's metadata (`total_steps`).
    pub created_step: usize,
    /// Byte length of the policy JSON payload.
    pub payload_len: u64,
    /// FNV-1a 64 checksum of the payload, as 16 lowercase hex digits —
    /// recorded independently of the artifact file's own header.
    pub fnv64: String,
}

/// What a promotion-log record did to the head pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PromotionAction {
    /// `promote(version)`: the head moved forward to `version`.
    Promote,
    /// `rollback()`: the head moved back to the previous promotion.
    Rollback,
}

/// One line of the append-only promotion log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PromotionRecord {
    /// Position in the log (dense, starting at 0).
    pub seq: u64,
    /// Whether this was a promotion or a rollback.
    pub action: PromotionAction,
    /// The version the head moved *to*.
    pub version: u64,
    /// The head the move replaced.
    pub previous: Option<u64>,
    /// Operator-supplied reason (free-form).
    pub reason: String,
}

/// The manifest file's on-disk shape.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Manifest {
    /// Format tag ([`REGISTRY_FORMAT`]).
    format: String,
    /// The currently promoted version, if any.
    head: Option<u64>,
    /// Every published artifact, ascending by version.
    entries: Vec<ArtifactMeta>,
}

impl Default for Manifest {
    fn default() -> Self {
        Manifest {
            format: REGISTRY_FORMAT.to_string(),
            head: None,
            entries: Vec::new(),
        }
    }
}

/// A versioned, integrity-checked policy store rooted at a directory.
#[derive(Debug)]
pub struct PolicyRegistry {
    root: PathBuf,
    manifest: Manifest,
    /// Records already in the promotion log (the next record's `seq`).
    promotions: u64,
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

impl PolicyRegistry {
    /// Opens (or initializes) a registry rooted at `root`, creating the
    /// directory layout and an empty manifest when missing.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from the filesystem, or
    /// [`io::ErrorKind::InvalidData`] when an existing manifest is
    /// malformed or carries an unknown format tag; messages name the
    /// offending path.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(root.join(POLICIES_DIR)).map_err(|e| {
            io::Error::new(
                e.kind(),
                format!("creating registry directory {}: {e}", root.display()),
            )
        })?;
        let manifest_path = root.join(MANIFEST_FILE);
        let manifest = if manifest_path.exists() {
            let text = std::fs::read_to_string(&manifest_path).map_err(|e| {
                io::Error::new(
                    e.kind(),
                    format!("reading registry manifest {}: {e}", manifest_path.display()),
                )
            })?;
            let manifest: Manifest = serde_json::from_str(&text).map_err(|e| {
                invalid(format!(
                    "parsing registry manifest {}: {e}",
                    manifest_path.display()
                ))
            })?;
            if manifest.format != REGISTRY_FORMAT {
                return Err(invalid(format!(
                    "registry manifest {} has format {:?}, expected {REGISTRY_FORMAT:?}",
                    manifest_path.display(),
                    manifest.format
                )));
            }
            manifest
        } else {
            Manifest::default()
        };
        let promotions = {
            let log_path = root.join(PROMOTIONS_FILE);
            if log_path.exists() {
                let text = std::fs::read_to_string(&log_path).map_err(|e| {
                    io::Error::new(
                        e.kind(),
                        format!("reading promotion log {}: {e}", log_path.display()),
                    )
                })?;
                text.lines().filter(|l| !l.trim().is_empty()).count() as u64
            } else {
                0
            }
        };
        let registry = PolicyRegistry {
            root,
            manifest,
            promotions,
        };
        registry.write_manifest()?;
        Ok(registry)
    }

    /// The registry root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the artifact file for `version`.
    fn artifact_path(&self, version: u64) -> PathBuf {
        self.root.join(POLICIES_DIR).join(format!("v{version}.json"))
    }

    /// Writes the manifest via a temp file + rename, so a crash mid-write
    /// never leaves a truncated manifest behind.
    fn write_manifest(&self) -> io::Result<()> {
        let path = self.root.join(MANIFEST_FILE);
        let tmp = self.root.join(format!("{MANIFEST_FILE}.tmp"));
        let json = serde_json::to_string_pretty(&self.manifest)
            .expect("in-memory serialization cannot fail");
        std::fs::write(&tmp, json).map_err(|e| {
            io::Error::new(e.kind(), format!("writing manifest {}: {e}", tmp.display()))
        })?;
        std::fs::rename(&tmp, &path).map_err(|e| {
            io::Error::new(
                e.kind(),
                format!("replacing manifest {}: {e}", path.display()),
            )
        })
    }

    /// Appends one record to the promotion log.
    fn append_promotion(
        &mut self,
        action: PromotionAction,
        version: u64,
        previous: Option<u64>,
        reason: &str,
    ) -> io::Result<()> {
        let record = PromotionRecord {
            seq: self.promotions,
            action,
            version,
            previous,
            reason: reason.to_string(),
        };
        let path = self.root.join(PROMOTIONS_FILE);
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| {
                io::Error::new(
                    e.kind(),
                    format!("opening promotion log {}: {e}", path.display()),
                )
            })?;
        let line = serde_json::to_string(&record).expect("in-memory serialization cannot fail");
        writeln!(file, "{line}").map_err(|e| {
            io::Error::new(
                e.kind(),
                format!("appending to promotion log {}: {e}", path.display()),
            )
        })?;
        self.promotions += 1;
        Ok(())
    }

    /// Publishes `policy` as the next registry version: writes the
    /// integrity-checked artifact, verifies it loads back, and records it
    /// in the manifest with the current head as its parent. Publishing
    /// does *not* move the head — that is what [`PolicyRegistry::promote`]
    /// is for.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from writing the artifact or manifest; the
    /// artifact is read back and verified before the manifest records it.
    pub fn publish(&mut self, policy: &CoordinationPolicy) -> io::Result<ArtifactMeta> {
        let version = self.manifest.entries.last().map_or(0, |e| e.version + 1);
        let json = policy.to_json().map_err(|e| {
            invalid(format!("serializing policy for registry v{version}: {e}"))
        })?;
        let path = self.artifact_path(version);
        policy.save(&path)?;
        // Read-back verification: the artifact on disk must parse and
        // pass its own header checks before the manifest vouches for it.
        CoordinationPolicy::load(&path)?;
        let meta = ArtifactMeta {
            version,
            parent: self.manifest.head,
            algorithm: policy.metadata.algorithm.clone(),
            created_step: policy.metadata.total_steps,
            payload_len: json.len() as u64,
            fnv64: format!("{:016x}", fnv1a64(json.as_bytes())),
        };
        self.manifest.entries.push(meta.clone());
        self.write_manifest()?;
        Ok(meta)
    }

    /// Loads the artifact for `version`, verifying the file's own header
    /// *and* cross-checking the manifest's independently recorded length
    /// and checksum against what the file actually contains.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::NotFound`] for unknown versions;
    /// [`io::ErrorKind::InvalidData`] when the artifact fails its header
    /// checks or disagrees with the manifest — the message names the
    /// path and the expected vs. actual checksum.
    pub fn load(&self, version: u64) -> io::Result<CoordinationPolicy> {
        let meta = self.meta(version).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!(
                    "version v{version} is not in registry {}",
                    self.root.display()
                ),
            )
        })?;
        let path = self.artifact_path(version);
        let policy = CoordinationPolicy::load(&path)?;
        let json = policy
            .to_json()
            .expect("in-memory serialization cannot fail");
        let actual = format!("{:016x}", fnv1a64(json.as_bytes()));
        if json.len() as u64 != meta.payload_len || actual != meta.fnv64 {
            return Err(invalid(format!(
                "registry artifact {} disagrees with the manifest: manifest records \
                 {} bytes / checksum {}, artifact holds {} bytes / checksum {}",
                path.display(),
                meta.payload_len,
                meta.fnv64,
                json.len(),
                actual
            )));
        }
        Ok(policy)
    }

    /// Loads the currently promoted policy.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::NotFound`] when nothing has been promoted yet;
    /// otherwise see [`PolicyRegistry::load`].
    pub fn load_head(&self) -> io::Result<CoordinationPolicy> {
        let head = self.manifest.head.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("registry {} has no promoted head", self.root.display()),
            )
        })?;
        self.load(head)
    }

    /// Moves the promoted head to `version` and appends a `Promote`
    /// record to the log.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::NotFound`] for unknown versions,
    /// [`io::ErrorKind::InvalidInput`] when `version` is already the
    /// head, plus I/O errors from persisting the move.
    pub fn promote(&mut self, version: u64, reason: &str) -> io::Result<()> {
        if self.meta(version).is_none() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!(
                    "cannot promote v{version}: not in registry {}",
                    self.root.display()
                ),
            ));
        }
        if self.manifest.head == Some(version) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("v{version} is already the promoted head"),
            ));
        }
        let previous = self.manifest.head;
        self.manifest.head = Some(version);
        self.write_manifest()?;
        self.append_promotion(PromotionAction::Promote, version, previous, reason)
    }

    /// Moves the head back to the version the last log record replaced
    /// and appends a `Rollback` record. Rolling back a rollback returns
    /// to the version the rollback left (the log is the full history).
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidInput`] when there is no promotion to roll
    /// back, or the last move replaced nothing (no earlier head), plus
    /// I/O errors from persisting the move.
    pub fn rollback(&mut self, reason: &str) -> io::Result<u64> {
        let head = self.manifest.head.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("registry {} has no promoted head", self.root.display()),
            )
        })?;
        let last = self.promotion_log()?.pop().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("registry {} has an empty promotion log", self.root.display()),
            )
        })?;
        let target = last.previous.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("v{head} was the first promotion: no previous head to roll back to"),
            )
        })?;
        self.manifest.head = Some(target);
        self.write_manifest()?;
        self.append_promotion(PromotionAction::Rollback, target, Some(head), reason)?;
        Ok(target)
    }

    /// The currently promoted head's manifest entry, if any.
    pub fn head(&self) -> Option<&ArtifactMeta> {
        self.manifest
            .head
            .and_then(|version| self.meta(version))
    }

    /// The manifest entry for `version`, if published.
    pub fn meta(&self, version: u64) -> Option<&ArtifactMeta> {
        self.manifest.entries.iter().find(|e| e.version == version)
    }

    /// Every published version, ascending.
    pub fn versions(&self) -> Vec<u64> {
        self.manifest.entries.iter().map(|e| e.version).collect()
    }

    /// Parses the full promotion log.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] for malformed lines (naming the
    /// line number), plus I/O errors from reading the file.
    pub fn promotion_log(&self) -> io::Result<Vec<PromotionRecord>> {
        let path = self.root.join(PROMOTIONS_FILE);
        if !path.exists() {
            return Ok(Vec::new());
        }
        let text = std::fs::read_to_string(&path).map_err(|e| {
            io::Error::new(
                e.kind(),
                format!("reading promotion log {}: {e}", path.display()),
            )
        })?;
        let mut records = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let record: PromotionRecord = serde_json::from_str(line).map_err(|e| {
                invalid(format!(
                    "parsing promotion log {} line {}: {e}",
                    path.display(),
                    lineno + 1
                ))
            })?;
            records.push(record);
        }
        Ok(records)
    }

    /// A one-line human-readable description of the registry state.
    pub fn describe(&self) -> String {
        let mut s = format!(
            "registry {} — {} version(s)",
            self.root.display(),
            self.manifest.entries.len()
        );
        match self.manifest.head {
            Some(h) => {
                let _ = write!(s, ", head v{h}");
            }
            None => s.push_str(", nothing promoted"),
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosco_core::policy::PolicyMetadata;
    use dosco_nn::mlp::{Activation, Mlp};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn policy(seed: u64, steps: usize) -> CoordinationPolicy {
        let mut rng = StdRng::seed_from_u64(seed);
        let actor = Mlp::new(&[16, 8, 4], Activation::Tanh, &mut rng);
        CoordinationPolicy::new(
            actor,
            3,
            PolicyMetadata {
                algorithm: format!("test-alg-{seed}"),
                total_steps: steps,
                ..PolicyMetadata::default()
            },
        )
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dosco-registry-test-{tag}-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn publish_load_promote_rollback_lifecycle() {
        let root = temp_root("lifecycle");
        let mut reg = PolicyRegistry::open(&root).unwrap();
        assert!(reg.head().is_none());
        assert_eq!(reg.versions(), Vec::<u64>::new());

        let m0 = reg.publish(&policy(1, 100)).unwrap();
        let m1 = reg.publish(&policy(2, 200)).unwrap();
        assert_eq!((m0.version, m0.parent), (0, None));
        // v1 was published before anything was promoted.
        assert_eq!((m1.version, m1.parent), (1, None));
        assert_eq!(reg.versions(), vec![0, 1]);
        assert_eq!(m1.algorithm, "test-alg-2");
        assert_eq!(m1.created_step, 200);

        // Loads verify against both the artifact header and the manifest.
        let p0 = reg.load(0).unwrap();
        assert_eq!(p0.metadata.algorithm, "test-alg-1");
        assert_eq!(reg.load(9).unwrap_err().kind(), io::ErrorKind::NotFound);
        assert_eq!(reg.load_head().unwrap_err().kind(), io::ErrorKind::NotFound);

        reg.promote(0, "initial deploy").unwrap();
        assert_eq!(reg.head().unwrap().version, 0);
        assert_eq!(reg.load_head().unwrap().metadata.algorithm, "test-alg-1");
        // Lineage: published after a promotion records the head as parent.
        let m2 = reg.publish(&policy(3, 300)).unwrap();
        assert_eq!(m2.parent, Some(0));

        reg.promote(2, "canary passed").unwrap();
        assert_eq!(reg.head().unwrap().version, 2);
        assert_eq!(
            reg.promote(2, "again").unwrap_err().kind(),
            io::ErrorKind::InvalidInput
        );

        let restored = reg.rollback("latency regression").unwrap();
        assert_eq!(restored, 0);
        assert_eq!(reg.head().unwrap().version, 0);

        let log = reg.promotion_log().unwrap();
        assert_eq!(log.len(), 3);
        assert_eq!(log[0].seq, 0);
        assert_eq!(log[0].action, PromotionAction::Promote);
        assert_eq!((log[0].version, log[0].previous), (0, None));
        assert_eq!((log[1].version, log[1].previous), (2, Some(0)));
        assert_eq!(log[2].action, PromotionAction::Rollback);
        assert_eq!((log[2].version, log[2].previous), (0, Some(2)));
        assert_eq!(log[2].reason, "latency regression");

        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn reopen_restores_manifest_head_and_log() {
        let root = temp_root("reopen");
        {
            let mut reg = PolicyRegistry::open(&root).unwrap();
            reg.publish(&policy(1, 10)).unwrap();
            reg.publish(&policy(2, 20)).unwrap();
            reg.promote(1, "ship").unwrap();
        }
        let mut reg = PolicyRegistry::open(&root).unwrap();
        assert_eq!(reg.versions(), vec![0, 1]);
        assert_eq!(reg.head().unwrap().version, 1);
        assert_eq!(reg.promotion_log().unwrap().len(), 1);
        // New versions continue the sequence; the log seq continues too.
        let m = reg.publish(&policy(3, 30)).unwrap();
        assert_eq!(m.version, 2);
        reg.promote(2, "next").unwrap();
        let log = reg.promotion_log().unwrap();
        assert_eq!(log.last().unwrap().seq, 1);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn load_detects_manifest_artifact_disagreement() {
        let root = temp_root("disagree");
        let mut reg = PolicyRegistry::open(&root).unwrap();
        reg.publish(&policy(1, 10)).unwrap();
        // Overwrite the artifact with a *valid* save of different weights:
        // the file's own header passes, only the manifest cross-check can
        // catch the swap.
        policy(9, 10).save(reg.artifact_path(0)).unwrap();
        let err = reg.load(0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(msg.contains("disagrees with the manifest"), "{msg}");
        assert!(msg.contains(&reg.meta(0).unwrap().fnv64), "{msg}");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn open_rejects_unknown_manifest_format() {
        let root = temp_root("badformat");
        std::fs::create_dir_all(&root).unwrap();
        std::fs::write(
            root.join(MANIFEST_FILE),
            r#"{"format":"dosco-registry-v999","head":null,"entries":[]}"#,
        )
        .unwrap();
        let err = PolicyRegistry::open(&root).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("dosco-registry-v999"), "{err}");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn rollback_without_history_is_rejected() {
        let root = temp_root("nohistory");
        let mut reg = PolicyRegistry::open(&root).unwrap();
        assert_eq!(
            reg.rollback("nope").unwrap_err().kind(),
            io::ErrorKind::InvalidInput
        );
        reg.publish(&policy(1, 10)).unwrap();
        reg.promote(0, "first").unwrap();
        // The first promotion replaced nothing: no target to restore.
        assert_eq!(
            reg.rollback("nope").unwrap_err().kind(),
            io::ErrorKind::InvalidInput
        );
        std::fs::remove_dir_all(&root).ok();
    }
}
