//! End-to-end exercises of the ops HTTP surface over real TCP: route
//! coverage, live queries while a serving fabric runs, and the
//! deterministic-JSON contract of `GET /metrics`.

use dosco_core::policy::PolicyMetadata;
use dosco_core::CoordinationPolicy;
use dosco_ctl::{
    CtlConfig, CtlServer, CtlState, HealthResponse, PolicyRegistry, ShardsResponse,
    SnapshotResponse,
};
use dosco_nn::mlp::{Activation, Mlp};
use dosco_obs::ObsReport;
use dosco_runtime::{PolicySlot, PolicySnapshot};
use dosco_serve::{serve, ServeConfig, StatusBoard};
use dosco_simnet::ScenarioConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};

/// A minimal HTTP/1.1 GET (or arbitrary-method) round trip: returns the
/// status code and the body.
fn http_request(addr: SocketAddr, method: &str, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to ctl server");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .expect("write request");
    stream.flush().expect("flush request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    // Sanity on framing: Content-Length matches the delivered body.
    let content_length: usize = response
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length header")
        .trim()
        .parse()
        .expect("numeric Content-Length");
    assert_eq!(content_length, body.len(), "framing mismatch: {response}");
    (status, body)
}

fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    http_request(addr, "GET", path)
}

fn actor(degree: usize, seed: u64) -> Mlp {
    let mut rng = StdRng::seed_from_u64(seed);
    Mlp::new(&[4 * degree + 4, 24, degree + 1], Activation::Tanh, &mut rng)
}

fn critic(degree: usize, seed: u64) -> Mlp {
    let mut rng = StdRng::seed_from_u64(seed);
    Mlp::new(&[4 * degree + 4, 24, 1], Activation::Tanh, &mut rng)
}

/// The big one: server up, planes attached, fabric serving — every
/// endpoint answers live, and `/metrics` is byte-deterministic once the
/// registry is quiescent.
#[test]
fn ops_endpoints_answer_live_during_a_serving_run() {
    let scenario = ScenarioConfig::paper_base(2).with_horizon(400.0);
    let degree = scenario.topology.network_degree();
    let policy = CoordinationPolicy::new(
        actor(degree, 1),
        degree,
        PolicyMetadata {
            algorithm: "ops-http-test".into(),
            total_steps: 1234,
            ..PolicyMetadata::default()
        },
    );

    // Registry with the policy published and promoted.
    let root = std::env::temp_dir().join(format!("dosco-ctl-ops-http-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let mut registry = PolicyRegistry::open(&root).unwrap();
    registry.publish(&policy).unwrap();
    registry.promote(0, "ops test deploy").unwrap();
    let registry = Arc::new(Mutex::new(registry));

    // Training-plane slot and serving-plane board.
    let hub = Arc::new(PolicySlot::new(PolicySnapshot {
        version: 7,
        actor: actor(degree, 1),
        critic: critic(degree, 2),
    }));
    let board = Arc::new(StatusBoard::new());

    let state = Arc::new(CtlState::new());
    state.attach_slot(Arc::clone(&hub));
    state.attach_board(Arc::clone(&board));
    state.attach_registry(Arc::clone(&registry));
    let server = CtlServer::start(&CtlConfig::default(), Arc::clone(&state)).unwrap();
    let addr = server.addr();

    // Serve in a background thread while the main thread queries.
    let outcome = std::thread::scope(|s| {
        let cfg = ServeConfig::new(3).with_status(Arc::clone(&board));
        let (policy, hub, scenario) = (&policy, &hub, &scenario);
        let serve_handle =
            s.spawn(move || serve(policy, Some(hub), scenario, &[3, 7, 13], &cfg));

        // Query the live endpoints while (or right after) the fabric
        // runs; every response must parse regardless of timing.
        let (code, body) = http_get(addr, "/healthz");
        assert_eq!(code, 200);
        let health: HealthResponse = serde_json::from_str(&body).unwrap();
        assert!(health.ok);
        assert_eq!(health.service, "dosco_ctl");

        let (code, body) = http_get(addr, "/metrics");
        assert_eq!(code, 200);
        let report: ObsReport = serde_json::from_str(&body).unwrap();
        assert!(!report.counters.is_empty(), "registry enumerates counters");

        let (code, body) = http_get(addr, "/shards");
        assert_eq!(code, 200);
        let shards: ShardsResponse = serde_json::from_str(&body).unwrap();
        assert!(shards.attached);

        serve_handle.join().expect("serve thread")
    });
    assert!(outcome.report.conserved());
    assert!(outcome.report.decisions > 0);

    // Post-run: /shards reflects the final published status exactly.
    let (code, body) = http_get(addr, "/shards");
    assert_eq!(code, 200);
    let shards: ShardsResponse = serde_json::from_str(&body).unwrap();
    assert!(shards.attached);
    assert_eq!(shards.status, board.snapshot());
    assert_eq!(shards.status.decisions, outcome.report.decisions);
    assert_eq!(shards.status.live_episodes, 0);
    assert_eq!(shards.status.shards.len(), 3);
    assert_eq!(shards.status.current_version, 7);

    // /snapshot: the slot's live info plus the registry head.
    let (code, body) = http_get(addr, "/snapshot");
    assert_eq!(code, 200);
    let snap: SnapshotResponse = serde_json::from_str(&body).unwrap();
    let slot = snap.slot.expect("slot attached");
    assert_eq!(slot.version, 7);
    assert_eq!(slot.actor_params, hub.latest().actor.num_params());
    assert!(!slot.closed);
    let head = snap.registry_head.expect("registry attached with a head");
    assert_eq!(head.version, 0);
    assert_eq!(head.algorithm, "ops-http-test");
    assert_eq!(head.created_step, 1234);

    // /metrics determinism: with the registry quiescent (fabric done),
    // two exports are byte-identical — order is pinned by construction,
    // not by accident of iteration.
    let (_, first) = http_get(addr, "/metrics");
    let (_, second) = http_get(addr, "/metrics");
    assert_eq!(first, second, "metrics export must be byte-deterministic");
    let report: ObsReport = serde_json::from_str(&first).unwrap();
    let names: Vec<&str> = report.counters.iter().map(|c| c.name.as_str()).collect();
    let mut sorted_check = names.clone();
    sorted_check.dedup();
    assert_eq!(names.len(), sorted_check.len(), "no duplicate counters");

    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

/// Unknown paths 404 (naming the path), non-GET methods 405, and the
/// server stays healthy afterwards.
#[test]
fn unknown_routes_and_methods_are_rejected_politely() {
    let server = CtlServer::start(&CtlConfig::default(), Arc::new(CtlState::new())).unwrap();
    let addr = server.addr();

    let (code, body) = http_get(addr, "/nope");
    assert_eq!(code, 404);
    assert!(body.contains("/nope"), "404 names the path: {body}");

    let (code, body) = http_request(addr, "POST", "/metrics");
    assert_eq!(code, 405);
    assert!(body.contains("POST"), "405 names the method: {body}");

    // Query strings are tolerated on known routes.
    let (code, _) = http_get(addr, "/healthz?probe=1");
    assert_eq!(code, 200);

    // Still alive after the rejects.
    let (code, _) = http_get(addr, "/healthz");
    assert_eq!(code, 200);
    server.shutdown();
}

/// Detached endpoints answer honestly rather than erroring.
#[test]
fn detached_state_serves_nulls() {
    let server = CtlServer::start(&CtlConfig::default(), Arc::new(CtlState::new())).unwrap();
    let addr = server.addr();
    let (code, body) = http_get(addr, "/snapshot");
    assert_eq!(code, 200);
    let snap: SnapshotResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(snap.slot, None);
    assert_eq!(snap.registry_head, None);
    let (code, body) = http_get(addr, "/shards");
    assert_eq!(code, 200);
    let shards: ShardsResponse = serde_json::from_str(&body).unwrap();
    assert!(!shards.attached);
    server.shutdown();
}

/// A POST round trip with a JSON body (the job-control routes).
fn http_post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to ctl server");
    write!(
        stream,
        "POST {path} HTTP/1.1\r\nHost: localhost\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    stream.flush().expect("flush request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Job control end to end over real HTTP: spawn a training job and a
/// serving job, list them, stop the long one, and watch both drain to
/// `done` with honest summaries. Malformed specs fail with 400 naming
/// the offending field.
#[test]
fn job_control_routes_spawn_stop_and_report() {
    let state = Arc::new(CtlState::new());
    let server = CtlServer::start(&CtlConfig::default(), Arc::clone(&state)).unwrap();
    let addr = server.addr();

    // A quick serve job: finishes on its own.
    let (code, body) = http_post(addr, "/jobs/serve", r#"{"episodes": 1, "horizon": 60.0}"#);
    assert_eq!(code, 200, "{body}");
    assert!(body.contains(r#""kind":"serve""#), "{body}");

    // A training job sized to outlive the test unless stopped.
    let (code, body) = http_post(
        addr,
        "/jobs/train",
        r#"{"total_steps": 100000000, "mode": "sync", "n_actors": 1, "horizon": 60.0}"#,
    );
    assert_eq!(code, 200, "{body}");
    let train_id: u64 = body
        .split("\"id\":")
        .nth(1)
        .and_then(|s| s.split(&[',', '}'][..]).next())
        .and_then(|s| s.trim().parse().ok())
        .expect("train job id in response");

    let (code, body) = http_get(addr, "/jobs");
    assert_eq!(code, 200);
    assert!(body.contains(r#""kind":"train""#), "{body}");

    // Stop the trainer; unknown ids 404.
    let (code, body) = http_post(addr, &format!("/jobs/{train_id}/stop"), "");
    assert_eq!(code, 200, "{body}");
    assert!(body.contains(r#""stopped":true"#), "{body}");
    let (code, _) = http_post(addr, "/jobs/999999/stop", "");
    assert_eq!(code, 404);

    // Malformed specs fail loudly, naming the field.
    let (code, body) = http_post(addr, "/jobs/train", r#"{"total_stepz": 5}"#);
    assert_eq!(code, 400);
    assert!(body.contains("total_stepz"), "{body}");
    let (code, body) = http_post(addr, "/jobs/serve", r#"{"episodes": 0}"#);
    assert_eq!(code, 400);
    assert!(body.contains("episodes"), "{body}");

    // Both jobs drain to done (the stopped trainer cooperatively, the
    // serve job by finishing its episode).
    state.jobs().shutdown();
    let (code, body) = http_get(addr, "/jobs");
    assert_eq!(code, 200);
    assert!(!body.contains(r#""state":"running""#), "{body}");
    assert!(body.contains("served 1 episodes"), "{body}");

    server.shutdown();
}
