//! Dribbling-client regression tests for the ops HTTP server: a client
//! that writes its request one byte at a time, sleeping between bytes,
//! must get a complete answer — TCP makes no promise that a request
//! head or body arrives in one segment.

use dosco_ctl::{CtlConfig, CtlServer, CtlState};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn start_server() -> CtlServer {
    CtlServer::start(&CtlConfig::default(), Arc::new(CtlState::new())).expect("start ctl server")
}

/// Writes `request` one byte at a time with a pause between bytes, then
/// reads the full response, returning the status code and body.
fn dribbled_request(addr: SocketAddr, request: &str, pause: Duration) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let _ = stream.set_nodelay(true);
    for &b in request.as_bytes() {
        stream.write_all(&[b]).expect("write byte");
        stream.flush().expect("flush byte");
        std::thread::sleep(pause);
    }
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// A GET whose head arrives one byte per segment is still answered 200.
#[test]
fn get_head_dribbled_one_byte_at_a_time_is_served() {
    let server = start_server();
    let (status, body) = dribbled_request(
        server.addr(),
        "GET /healthz HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n",
        Duration::from_millis(2),
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"ok\""), "{body}");
    server.shutdown();
}

/// A POST whose `Content-Length` body dribbles in after the head must
/// be read completely: the malformed-spec error proves the server
/// parsed the *full* body rather than truncating it at a stall.
#[test]
fn post_body_dribbled_one_byte_at_a_time_is_read_completely() {
    let server = start_server();
    let body = "{\"horizon\": \"not a number\"}";
    let request = format!(
        "POST /jobs/serve HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    let (status, resp) = dribbled_request(server.addr(), &request, Duration::from_millis(2));
    // The spec is intentionally invalid: a 400 naming the field means
    // the whole body arrived and was parsed. A truncated body would
    // have been invalid JSON or hung the request entirely.
    assert_eq!(status, 400, "{resp}");
    assert!(resp.contains("error"), "{resp}");
    server.shutdown();
}
