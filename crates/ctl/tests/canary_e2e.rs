//! End-to-end canary lifecycle against the real serving fabric.
//!
//! The keystone test uses a candidate with **identical weights** to the
//! incumbent (only the version differs): the canary machinery must be
//! metrics-invisible — every episode's `Metrics` exactly equals a run
//! with no canary at all — while the version accounting still splits
//! decisions exactly between incumbent and candidate buckets.

use dosco_core::policy::PolicyMetadata;
use dosco_core::CoordinationPolicy;
use dosco_ctl::{run_canary, CanaryConfig, CanaryDecision, CanaryStats, ThresholdJudge};
use dosco_nn::mlp::{Activation, Mlp};
use dosco_runtime::PolicySnapshot;
use dosco_serve::{serve, ServeConfig};
use dosco_simnet::ScenarioConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const SEEDS: &[u64] = &[3, 7, 13, 29];
const SHARDS: usize = 4;
const CANARY_SHARDS: &[usize] = &[1, 2];
const INCUMBENT: u64 = 1;
const CANDIDATE: u64 = 2;

fn scenario() -> ScenarioConfig {
    ScenarioConfig::paper_base(2).with_horizon(400.0)
}

fn actor(degree: usize, seed: u64) -> Mlp {
    let mut rng = StdRng::seed_from_u64(seed);
    Mlp::new(&[4 * degree + 4, 24, degree + 1], Activation::Tanh, &mut rng)
}

fn critic(degree: usize, seed: u64) -> Mlp {
    let mut rng = StdRng::seed_from_u64(seed);
    Mlp::new(&[4 * degree + 4, 24, 1], Activation::Tanh, &mut rng)
}

fn snapshot(version: u64, actor: Mlp, degree: usize) -> Arc<PolicySnapshot> {
    Arc::new(PolicySnapshot {
        version,
        actor,
        critic: critic(degree, 99),
    })
}

/// The no-canary baseline: the same weights served hub-less.
fn baseline(degree: usize) -> dosco_serve::ServeOutcome {
    let policy =
        CoordinationPolicy::new(actor(degree, 1), degree, PolicyMetadata::default());
    serve(&policy, None, &scenario(), SEEDS, &ServeConfig::new(SHARDS))
}

/// Shared assertions: exact two-bucket accounting over the whole run.
fn assert_exact_two_bucket_accounting(r: &dosco_serve::ServeReport) {
    assert!(r.conserved(), "{r:?}");
    assert_eq!(r.fallback_decisions, 0, "no faults scripted: {r:?}");
    let versions: Vec<u64> = r.decisions_by_version.iter().map(|&(v, _)| v).collect();
    assert_eq!(versions, vec![INCUMBENT, CANDIDATE], "{r:?}");
    let total: u64 = r.decisions_by_version.iter().map(|&(_, n)| n).sum();
    assert_eq!(total, r.batched_decisions, "buckets sum exactly: {r:?}");
    assert!(
        r.decisions_by_version.iter().all(|&(_, n)| n > 0),
        "both versions served: {r:?}"
    );
}

/// Window stats are internally exact: candidate + incumbent deltas cover
/// every decision applied during the window.
fn assert_exact_window_accounting(stats: &CanaryStats) {
    assert_eq!(stats.incumbent_version, INCUMBENT);
    assert_eq!(stats.candidate_version, CANDIDATE);
    assert!(stats.candidate_decisions() > 0, "{stats:?}");
    assert!(stats.incumbent_decisions() > 0, "{stats:?}");
    assert_eq!(
        stats.candidate_decisions() + stats.incumbent_decisions(),
        stats.window_decisions(),
        "every window decision is attributed to exactly one version: {stats:?}"
    );
}

/// Promote path with an identical-weights candidate: the fabric
/// converges on the candidate version everywhere, the decision buckets
/// split exactly, and the episode metrics are *bit-identical* to a run
/// that never canaried (for every shard, canary or not).
#[test]
fn promote_converges_all_shards_and_is_metrics_invisible() {
    let scenario = scenario();
    let degree = scenario.topology.network_degree();
    let base = baseline(degree);

    let out = run_canary(
        snapshot(INCUMBENT, actor(degree, 1), degree),
        snapshot(CANDIDATE, actor(degree, 1), degree),
        &scenario,
        SEEDS,
        &ServeConfig::new(SHARDS),
        &CanaryConfig::new(CANARY_SHARDS.to_vec(), 4, 6),
        |stats| ThresholdJudge::default().decide(stats),
    );

    assert_eq!(out.report.decision, Some(CanaryDecision::Promote));
    assert_exact_window_accounting(out.report.stats.as_ref().unwrap());
    let r = &out.serve.report;
    assert_exact_two_bucket_accounting(r);
    // Promotion converged every shard on the candidate.
    assert_eq!(r.final_version, CANDIDATE, "{r:?}");
    assert!(
        r.shard_versions.iter().all(|&v| v == CANDIDATE),
        "promotion reaches every shard: {r:?}"
    );
    // One targeted publish (the canary) + one hub swap (the promote).
    assert_eq!(r.directed_publishes, 1, "{r:?}");
    assert_eq!(r.swaps, 1, "{r:?}");
    // Identical weights ⇒ identical decisions ⇒ exactly equal Metrics,
    // per episode, canary shards and non-canary shards alike.
    assert_eq!(out.serve.metrics, base.metrics);
    assert_eq!(r.decisions, base.report.decisions);
    assert_eq!(r.batched_decisions, base.report.batched_decisions);
}

/// Rollback path: the incumbent is restored on the canary shards, the
/// fabric ends fully on the incumbent, and metrics are again exactly the
/// no-canary baseline.
#[test]
fn rollback_restores_the_incumbent_everywhere() {
    let scenario = scenario();
    let degree = scenario.topology.network_degree();
    let base = baseline(degree);

    let out = run_canary(
        snapshot(INCUMBENT, actor(degree, 1), degree),
        snapshot(CANDIDATE, actor(degree, 1), degree),
        &scenario,
        SEEDS,
        &ServeConfig::new(SHARDS),
        &CanaryConfig::new(CANARY_SHARDS.to_vec(), 4, 6),
        |_| CanaryDecision::Rollback,
    );

    assert_eq!(out.report.decision, Some(CanaryDecision::Rollback));
    assert_exact_window_accounting(out.report.stats.as_ref().unwrap());
    let r = &out.serve.report;
    assert_exact_two_bucket_accounting(r);
    // The incumbent is restored everywhere; the fabric-wide current
    // version never moved.
    assert_eq!(r.final_version, INCUMBENT, "{r:?}");
    assert!(
        r.shard_versions.iter().all(|&v| v == INCUMBENT),
        "rollback restores every shard: {r:?}"
    );
    // Two targeted publishes: candidate out, incumbent back.
    assert_eq!(r.directed_publishes, 2, "{r:?}");
    assert_eq!(r.swaps, 0, "no hub publish on the rollback path: {r:?}");
    assert_eq!(out.serve.metrics, base.metrics);
}

/// A genuinely different candidate still promotes cleanly: conservation
/// and convergence hold even when decisions actually change.
#[test]
fn divergent_candidate_promotes_with_exact_accounting() {
    let scenario = scenario();
    let degree = scenario.topology.network_degree();

    let out = run_canary(
        snapshot(INCUMBENT, actor(degree, 1), degree),
        snapshot(CANDIDATE, actor(degree, 77), degree),
        &scenario,
        SEEDS,
        &ServeConfig::new(SHARDS),
        &CanaryConfig::new(vec![0], 3, 5),
        |_| CanaryDecision::Promote,
    );

    assert_eq!(out.report.decision, Some(CanaryDecision::Promote));
    let r = &out.serve.report;
    assert!(r.conserved(), "{r:?}");
    assert_eq!(r.final_version, CANDIDATE);
    assert!(r.shard_versions.iter().all(|&v| v == CANDIDATE));
    let total: u64 = r.decisions_by_version.iter().map(|&(_, n)| n).sum();
    assert_eq!(total, r.batched_decisions);
    let stats = out.report.stats.as_ref().unwrap();
    assert!(stats.candidate_decisions() > 0);
}

/// Episodes ending before the window completes: no verdict, no
/// transition — and the run still conserves.
#[test]
fn unfinished_window_applies_no_transition() {
    let scenario = ScenarioConfig::paper_base(1).with_horizon(60.0);
    let degree = scenario.topology.network_degree();

    let out = run_canary(
        snapshot(INCUMBENT, actor(degree, 1), degree),
        snapshot(CANDIDATE, actor(degree, 1), degree),
        &scenario,
        &[5],
        &ServeConfig::new(2),
        // A window far past the short horizon.
        &CanaryConfig::new(vec![0], 2, 100_000),
        |_| CanaryDecision::Promote,
    );

    assert_eq!(out.report.decision, None);
    assert!(out.report.stats.is_none());
    let r = &out.serve.report;
    assert!(r.conserved(), "{r:?}");
    // The candidate landed (targeted publish) but was never judged.
    assert_eq!(r.directed_publishes, 1, "{r:?}");
    assert_eq!(r.final_version, INCUMBENT, "{r:?}");
}

/// The driver rejects a candidate that reuses the incumbent's version:
/// the two would be indistinguishable in the accounting.
#[test]
#[should_panic(expected = "version distinct from the incumbent")]
fn rejects_version_collisions() {
    let scenario = scenario();
    let degree = scenario.topology.network_degree();
    run_canary(
        snapshot(3, actor(degree, 1), degree),
        snapshot(3, actor(degree, 2), degree),
        &scenario,
        SEEDS,
        &ServeConfig::new(SHARDS),
        &CanaryConfig::new(vec![0], 1, 1),
        |_| CanaryDecision::Promote,
    );
}
