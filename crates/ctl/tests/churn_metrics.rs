//! `/metrics` under substrate churn: the drop-cause series and the
//! time-windowed success ratio must appear in the ops surface, and the
//! export must stay byte-deterministic.
//!
//! Runs in its own test binary so the global metrics registry is not
//! shared with other ops-surface tests.

use dosco_chaos::{ChurnAction, ChurnSchedule};
use dosco_core::policy::PolicyMetadata;
use dosco_core::CoordinationPolicy;
use dosco_ctl::{CtlConfig, CtlServer, CtlState};
use dosco_nn::mlp::{Activation, Mlp};
use dosco_obs::ObsReport;
use dosco_serve::{serve, ServeConfig};
use dosco_simnet::ScenarioConfig;
use dosco_topology::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to ctl server");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .expect("write request");
    stream.flush().expect("flush request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn metrics_expose_drop_causes_and_windowed_success_ratio_under_churn() {
    let scenario = ScenarioConfig::paper_base(2).with_horizon(400.0);
    let degree = scenario.topology.network_degree();
    let mut rng = StdRng::seed_from_u64(11);
    let actor = Mlp::new(&[4 * degree + 4, 24, degree + 1], Activation::Tanh, &mut rng);
    let policy = CoordinationPolicy::new(actor, degree, PolicyMetadata::default());

    // Kill ingress v0 at t=120 with no repair: every later arrival there
    // is a guaranteed node-failure drop.
    let timeline = ChurnSchedule::none()
        .at(120.0, ChurnAction::NodeDown(NodeId(0)))
        .compile(&scenario.topology, scenario.horizon, 0)
        .expect("valid schedule");
    let cfg = ServeConfig::new(2).with_churn(timeline);
    let outcome = serve(&policy, None, &scenario, &[3, 7], &cfg);
    assert!(
        outcome.metrics.iter().any(|m| m.dropped_total() > 0),
        "dead ingress must drop flows"
    );

    let server = CtlServer::start(&CtlConfig::default(), Arc::new(CtlState::new())).unwrap();
    let addr = server.addr();
    let (code, first) = http_get(addr, "/metrics");
    assert_eq!(code, 200);
    let (_, second) = http_get(addr, "/metrics");
    assert_eq!(first, second, "metrics export must be byte-deterministic");

    let report: ObsReport = serde_json::from_str(&first).unwrap();
    let counter = |name: &str| -> u64 {
        report
            .counters
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("counter {name} missing from /metrics"))
            .value
    };
    let gauge = |name: &str| -> f64 {
        report
            .gauges
            .iter()
            .find(|g| g.name == name)
            .unwrap_or_else(|| panic!("gauge {name} missing from /metrics"))
            .value
    };

    // The full drop-cause series is enumerated even when zero.
    for name in [
        "drop_node_capacity",
        "drop_link_capacity",
        "drop_deadline_expired",
        "drop_invalid_action",
        "drop_link_failure",
        "drop_node_failure",
    ] {
        let _ = counter(name);
    }
    assert!(counter("drop_node_failure") > 0, "dead-ingress arrivals");
    assert!(counter("churn_events_applied") >= 2, "one per episode");
    assert!(counter("churn_flows_killed") > 0);
    let _ = counter("churn_instances_lost"); // whether v0 hosts instances is policy-dependent
    assert!(counter("churn_sp_recomputes") >= 2);

    assert!(gauge("topo_version") >= 1.0);
    let ratio = gauge("windowed_success_ratio");
    assert!(
        (0.0..=1.0).contains(&ratio),
        "windowed success ratio {ratio} out of range"
    );

    server.shutdown();
}
