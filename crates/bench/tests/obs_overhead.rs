//! Pins the "near-zero when disabled" contract of `dosco_obs`: with no
//! recorder installed and spans disarmed, the per-decision cost added to
//! the `sim_throughput` hot path must stay below 1% of the simulator's
//! own per-decision cost.
//!
//! Rather than an A/B wall-clock diff (too noisy for a sub-1% bound on a
//! shared CI host), the test measures both sides directly: the disabled
//! instrumentation primitives cost a few nanoseconds per call, while one
//! simulator decision costs microseconds — so the ratio has orders of
//! magnitude of headroom around the 1% line.

use dosco_baselines::gcasp::Gcasp;
use dosco_bench::scenarios::base_scenario;
use dosco_simnet::Simulation;
use std::hint::black_box;
use std::time::Instant;

/// Best-of-`reps` wall time of `f`, in nanoseconds.
fn time_ns<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    best
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "the <1% contract is for optimized builds (benches run in \
              release, debug never inlines the guards); run with --release"
)]
fn disabled_observability_costs_under_one_percent_per_decision() {
    // Force the disabled configuration regardless of the environment.
    dosco_obs::uninstall_recorder();
    dosco_obs::set_spans_enabled(false);

    // Per-decision cost of the sim_throughput episode workload (GCASP on
    // the base scenario). The instrumented Simulation is the system under
    // test, so this timing already *includes* the disabled-path checks.
    let scenario = base_scenario(2, dosco_traffic::ArrivalPattern::paper_poisson(), 1_000.0);
    let mut decisions = 0u64;
    let episode_ns = time_ns(3, || {
        let mut sim = Simulation::new(scenario.clone(), 7);
        let mut g = Gcasp::new();
        decisions = sim.run(&mut g).decisions;
        decisions
    });
    assert!(decisions > 100, "workload too small to measure: {decisions}");
    let ns_per_decision = episode_ns / decisions as f64;

    // Cost of the disabled instrumentation per decision. The episode path
    // pays one gate in `Simulation::apply` (a pre-captured `Option` check,
    // cheaper than the atomic measured here); GEMM / K-FAC / rollout paths
    // pay one disarmed span guard per *batch*, not per decision. Measuring
    // the atomic trace gate AND a span guard per iteration is therefore
    // already a strict superset of the real per-decision work.
    const CALLS: u64 = 1_000_000;
    let gate_ns = time_ns(3, || {
        let mut acc = 0u64;
        for i in 0..CALLS {
            acc += u64::from(dosco_obs::trace_enabled());
            let _guard = dosco_obs::span(black_box(dosco_obs::SpanKind::RolloutCollect));
            acc += i & 1;
        }
        acc
    });
    let overhead_per_decision = gate_ns / CALLS as f64;

    let ratio = overhead_per_decision / ns_per_decision;
    assert!(
        ratio < 0.01,
        "disabled-path overhead {overhead_per_decision:.2} ns/decision is \
         {:.3}% of the {ns_per_decision:.0} ns/decision episode cost \
         (must stay < 1%)",
        ratio * 100.0
    );
}
