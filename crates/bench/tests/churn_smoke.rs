//! Release-mode smoke gate for the million-flow simulation core.
//!
//! Drives 100k concurrent flows through `dosco_simnet` on a synthetic
//! 100-node grid — a 10x-scaled-down version of the `perf_report`
//! million-flow runs — and asserts the storage contracts that make the
//! full-scale run viable:
//!
//! - the run finishes inside a bounded wall clock,
//! - the flow slab's resident size equals its live-flow high-water mark
//!   (free slots are reused, never leaked), and
//! - doubling the steady-state portion of the episode does not grow the
//!   slabs at all: memory is flat over time, not merely sub-linear.
//!
//! Ignored by default so plain `cargo test` (debug) stays fast;
//! `scripts/check.sh` runs it with `--release -- --include-ignored`.

use dosco_bench::scenarios::churn_scenario;
use dosco_simnet::Simulation;
use std::time::Instant;

const INTERVAL: f64 = 10.0;
const DWELL: f64 = 10_000.0;

/// Runs the 10x10-grid churn scenario to `horizon` and returns the sim.
fn run_to(horizon: f64) -> Simulation {
    let topo = dosco_topology::generators::grid(10, 10, 1.0, 1.0);
    let mut sim = Simulation::new(churn_scenario(topo, INTERVAL, DWELL, horizon), 7);
    sim.run(&mut dosco_baselines::ShortestPath::new());
    sim
}

#[test]
#[ignore = "release-mode smoke gate; run via scripts/check.sh"]
fn hundred_k_flow_smoke() {
    let t = Instant::now();
    let sim = run_to(1.2 * DWELL);
    let elapsed = t.elapsed();

    let m = sim.metrics();
    assert_eq!(m.dropped.values().sum::<u64>(), 0, "churn flows never drop");
    assert!(m.completed > 0, "some flows must have completed");
    // 100 ingresses / interval 10 x dwell 10k ≈ 100k concurrent.
    assert!(
        sim.peak_live_flows() >= 100_000,
        "peak live flows {} below the 100k smoke target",
        sim.peak_live_flows()
    );
    // The slab never allocates beyond its live high-water mark: every
    // terminated flow's slot is reused before a new one is carved out.
    assert_eq!(
        sim.flow_slab_capacity(),
        sim.peak_live_flows(),
        "flow slab resident size must equal the live-flow peak"
    );
    assert!(
        sim.peak_queued_events() >= sim.peak_live_flows(),
        "each live flow holds at least one scheduled event"
    );
    // Generous bound (~10x observed on a single-core host): this is a
    // regression tripwire for accidental O(n^2) behavior, not a perf SLO.
    assert!(
        elapsed.as_secs() < 120,
        "100k-flow smoke took {elapsed:?}; the event queue or flow table \
         has regressed superlinearly"
    );
}

#[test]
#[ignore = "release-mode smoke gate; run via scripts/check.sh"]
fn steady_state_memory_is_flat() {
    // Same scenario, twice the steady-state time: every byte of slab
    // growth past warm-up would show up as a capacity difference here.
    let short = run_to(1.2 * DWELL);
    let long = run_to(2.4 * DWELL);
    assert!(long.metrics().arrived > short.metrics().arrived);
    assert_eq!(
        short.flow_slab_capacity(),
        long.flow_slab_capacity(),
        "flow slab grew with episode length: storage is not constant-memory"
    );
    assert_eq!(
        short.event_slab_capacity(),
        long.event_slab_capacity(),
        "event queue slab grew with episode length"
    );
}
