//! Release-mode smoke gate for the chaos subsystem at scale.
//!
//! Drives the 10x10-grid scenario (~10k steady-state concurrent flows)
//! under a stochastic per-link failure process and asserts that
//!
//! - the run finishes inside a bounded wall clock (fault application,
//!   victim killing, and per-epoch path recomputes stay sub-linear),
//! - churn really happened (events applied, paths recomputed, flows
//!   killed), and
//! - flow conservation holds through every fault and repair: every
//!   arrived flow either completed, dropped, or is still live at the
//!   horizon.
//!
//! Ignored by default so plain `cargo test` (debug) stays fast;
//! `scripts/check.sh` runs it with `--release -- --include-ignored`.

use dosco_bench::scenarios::churn_scenario;
use dosco_chaos::{ChurnSchedule, StochasticChurn};
use dosco_simnet::Simulation;
use std::time::Instant;

#[test]
#[ignore = "release-mode smoke gate; run via scripts/check.sh"]
fn substrate_churn_smoke_is_bounded_and_conserves_flows() {
    let topo = dosco_topology::generators::grid(10, 10, 1.0, 1.0);
    let cfg = churn_scenario(topo, 10.0, 1_000.0, 1_500.0);
    let timeline = ChurnSchedule::none()
        .with_stochastic(StochasticChurn::default().with_link_failures(500.0, 50.0))
        .compile(&cfg.topology, cfg.horizon, 3)
        .expect("valid schedule");

    let t = Instant::now();
    let mut sim = Simulation::with_churn(cfg, 7, timeline);
    sim.run(&mut dosco_baselines::ShortestPath::new());
    let elapsed = t.elapsed();

    let m = sim.metrics().clone();
    let stats = *sim.churn_stats().expect("churn was active");
    assert!(stats.events_applied > 50, "churn must actually fire");
    assert!(stats.sp_recomputes > 50, "failures affect routing");
    assert!(stats.flows_killed_link > 0, "in-transit victims exist");
    assert!(m.completed > 0, "service survives between faults");
    assert_eq!(
        m.arrived,
        m.completed + m.dropped.values().sum::<u64>() + sim.live_flows() as u64,
        "conservation through every fault and repair"
    );
    // Generous bound (~10x observed): a tripwire for superlinear victim
    // scans or per-event path recomputes, not a perf SLO.
    assert!(
        elapsed.as_secs() < 120,
        "substrate churn smoke took {elapsed:?}; fault application has \
         regressed superlinearly"
    );
}
