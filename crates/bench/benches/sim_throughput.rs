//! Simulator throughput: decisions per second on each evaluation topology
//! under the GCASP heuristic — the capacity-planning number for the
//! training loop (how many env transitions a core can generate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dosco_baselines::gcasp::Gcasp;
use dosco_bench::runner::Algo;
use dosco_bench::scenarios::topology_scenario;
use dosco_core::{CoordEnv, RewardConfig};
use dosco_nn::mlp::Mlp;
use dosco_nn::par;
use dosco_rl::rollout::RolloutCollector;
use dosco_rl::Env;
use dosco_simnet::Simulation;
use dosco_topology::zoo;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_episode(c: &mut Criterion) {
    let mut group = c.benchmark_group("simnet/episode-1000ms");
    group.sample_size(10);
    for topo in zoo::all() {
        let name = topo.name().to_string();
        let scenario = topology_scenario(topo, 1_000.0);
        group.bench_with_input(BenchmarkId::from_parameter(&name), &scenario, |b, s| {
            b.iter(|| {
                let mut sim = Simulation::new(s.clone(), 7);
                let mut g = Gcasp::new();
                black_box(sim.run(&mut g).decisions)
            })
        });
    }
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    // Isolated decision-step cost on the base scenario.
    let scenario = dosco_bench::base_scenario(
        5,
        dosco_traffic::ArrivalPattern::paper_poisson(),
        2_000.0,
    );
    c.bench_function("simnet/step-and-apply", |b| {
        b.iter_batched(
            || Simulation::new(scenario.clone(), 3),
            |mut sim| {
                let mut g = Gcasp::new();
                use dosco_simnet::Coordinator;
                let mut n = 0;
                while let Some(dp) = sim.next_decision() {
                    let a = g.decide(&sim, &dp);
                    sim.apply(a);
                    n += 1;
                    if n >= 200 {
                        break;
                    }
                }
                black_box(n)
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

/// Rollout collection over 8 parallel coordination envs, 1 vs 4 pool
/// threads — env stepping fans out, policy sampling stays serial.
fn bench_rollout_collection(c: &mut Criterion) {
    let scenario = dosco_bench::base_scenario(
        2,
        dosco_traffic::ArrivalPattern::paper_poisson(),
        200.0,
    );
    let degree = scenario.topology.network_degree();
    let (obs_dim, num_actions) = (4 * degree + 4, degree + 1);
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let actor = Mlp::paper_arch(obs_dim, num_actions, &mut rng);
    let critic = Mlp::paper_arch(obs_dim, 1, &mut rng);
    let mut group = c.benchmark_group("simnet/rollout-8-envs-16-steps");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_function(format!("{threads}-threads"), |b| {
            b.iter(|| {
                par::with_threads(threads, || {
                    let mut envs: Vec<Box<dyn Env>> = (0..8)
                        .map(|i| {
                            Box::new(CoordEnv::new(
                                scenario.clone(),
                                RewardConfig::default(),
                                100 + i,
                                None,
                            )) as Box<dyn Env>
                        })
                        .collect();
                    let mut col = RolloutCollector::new(&mut envs);
                    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
                    black_box(
                        col.collect(&mut envs, &actor, &critic, 16, 0.99, 0.95, &mut rng)
                            .reward_sum,
                    )
                })
            })
        });
    }
    group.finish();
}

/// Multi-seed evaluation fan-out (`Algo::evaluate`), 1 vs 4 pool threads.
fn bench_eval_fan_out(c: &mut Criterion) {
    let scenario = dosco_bench::base_scenario(
        2,
        dosco_traffic::ArrivalPattern::paper_poisson(),
        500.0,
    );
    let seeds: Vec<u64> = (0..8).collect();
    let mut group = c.benchmark_group("simnet/eval-8-seed-fan-out");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_function(
            BenchmarkId::from_parameter(format!("{threads}-threads")),
            |b| {
                b.iter(|| {
                    par::with_threads(threads, || {
                        black_box(Algo::Gcasp.evaluate(&scenario, &seeds).mean_success)
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_episode, bench_event_queue, bench_rollout_collection, bench_eval_fan_out
}
criterion_main!(benches);
