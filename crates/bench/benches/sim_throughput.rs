//! Simulator throughput: decisions per second on each evaluation topology
//! under the GCASP heuristic — the capacity-planning number for the
//! training loop (how many env transitions a core can generate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dosco_baselines::gcasp::Gcasp;
use dosco_bench::scenarios::topology_scenario;
use dosco_simnet::Simulation;
use dosco_topology::zoo;
use std::hint::black_box;

fn bench_episode(c: &mut Criterion) {
    let mut group = c.benchmark_group("simnet/episode-1000ms");
    group.sample_size(10);
    for topo in zoo::all() {
        let name = topo.name().to_string();
        let scenario = topology_scenario(topo, 1_000.0);
        group.bench_with_input(BenchmarkId::from_parameter(&name), &scenario, |b, s| {
            b.iter(|| {
                let mut sim = Simulation::new(s.clone(), 7);
                let mut g = Gcasp::new();
                black_box(sim.run(&mut g).decisions)
            })
        });
    }
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    // Isolated decision-step cost on the base scenario.
    let scenario = dosco_bench::base_scenario(
        5,
        dosco_traffic::ArrivalPattern::paper_poisson(),
        2_000.0,
    );
    c.bench_function("simnet/step-and-apply", |b| {
        b.iter_batched(
            || Simulation::new(scenario.clone(), 3),
            |mut sim| {
                let mut g = Gcasp::new();
                use dosco_simnet::Coordinator;
                let mut n = 0;
                while let Some(dp) = sim.next_decision() {
                    let a = g.decide(&sim, &dp);
                    sim.apply(a);
                    n += 1;
                    if n >= 200 {
                        break;
                    }
                }
                black_box(n)
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_episode, bench_event_queue
}
criterion_main!(benches);
