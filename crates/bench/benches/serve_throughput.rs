//! Serving-plane throughput: decisions per second through the sharded
//! `dosco_serve` fabric (batched inference) versus the per-decision
//! in-process `DistributedAgents` loop, over the same episode workload.
//!
//! Three configurations, all serving the identical greedy policy on the
//! paper base scenario with 8 concurrent episodes:
//! - `per-decision`: `dosco_core::eval::evaluate` per episode — one
//!   un-batched forward per decision (the baseline deployment),
//! - `serve-1-shard`: the fabric with a single shard — all episodes'
//!   decisions batch into one forward per epoch,
//! - `serve-2-shards`: two shards — smaller batches, but two workers.
//!
//! The outcomes are bit-identical across all three (the fabric's
//! determinism contract); only the wall clock differs.

use criterion::{criterion_group, criterion_main, Criterion};
use dosco_bench::scenarios::base_scenario;
use dosco_core::policy::PolicyMetadata;
use dosco_core::CoordinationPolicy;
use dosco_nn::mlp::Mlp;
use dosco_serve::{serve, ServeConfig};
use rand::SeedableRng;
use std::hint::black_box;

const EPISODES: u64 = 8;

fn workload() -> (CoordinationPolicy, dosco_simnet::ScenarioConfig, Vec<u64>) {
    let scenario = base_scenario(2, dosco_traffic::ArrivalPattern::paper_poisson(), 400.0);
    let degree = scenario.topology.network_degree();
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let actor = Mlp::paper_arch(4 * degree + 4, degree + 1, &mut rng);
    let policy = CoordinationPolicy::new(actor, degree, PolicyMetadata::default());
    (policy, scenario, (0..EPISODES).collect())
}

fn bench_serve_throughput(c: &mut Criterion) {
    let (policy, scenario, seeds) = workload();
    let mut group = c.benchmark_group("serve/8-episodes");

    group.bench_function("per-decision", |b| {
        b.iter(|| {
            for &s in &seeds {
                black_box(dosco_core::eval::evaluate(&policy, &scenario, s));
            }
        })
    });

    group.bench_function("serve-1-shard", |b| {
        b.iter(|| black_box(serve(&policy, None, &scenario, &seeds, &ServeConfig::new(1))))
    });

    group.bench_function("serve-2-shards", |b| {
        b.iter(|| black_box(serve(&policy, None, &scenario, &seeds, &ServeConfig::new(2))))
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_serve_throughput
}
criterion_main!(benches);
