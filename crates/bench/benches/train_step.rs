//! Training-step cost: A2C (RMSprop) versus ACKTR (K-FAC) updates on the
//! paper's 2×256 networks, plus the K-FAC inversion in isolation — the
//! ablation data for the "natural gradient is affordable" design choice.

use criterion::{criterion_group, criterion_main, Criterion};
use dosco_nn::kfac::{Kfac, KfacConfig};
use dosco_nn::linalg::damped_inverse;
use dosco_nn::matrix::Matrix;
use dosco_nn::mlp::{Activation, Mlp};
use dosco_nn::optim::{Optimizer, RmsProp};
use dosco_nn::par;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const OBS: usize = 16; // Abilene: 4·3+4
const ACTS: usize = 4;
const BATCH: usize = 64; // 16 steps × 4 envs

fn setup() -> (Mlp, Matrix) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let net = Mlp::paper_arch(OBS, ACTS, &mut rng);
    let x = Matrix::from_fn(BATCH, OBS, |r, c| ((r * 13 + c * 7) % 17) as f32 / 17.0 - 0.5);
    (net, x)
}

fn rand_matrix(rows: usize, cols: usize, rng: &mut rand::rngs::StdRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0f32..1.0))
}

fn bench_forward_backward(c: &mut Criterion) {
    let (net, x) = setup();
    c.bench_function("train/forward-backward-64x(16-256-256-4)", |b| {
        b.iter(|| {
            let cache = net.forward_cached(black_box(&x));
            let grads = net.backward(&cache, &cache.output);
            black_box(grads.global_norm())
        })
    });
}

/// Blocked vs naive kernels and 1 vs 4 pool threads, at the paper's
/// per-update GEMM size and a larger 256-batch / 512-wide size.
fn bench_gemm_kernels(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    for &(batch, width) in &[(BATCH, 256usize), (256usize, 512usize)] {
        let x = rand_matrix(batch, width, &mut rng);
        let w = rand_matrix(width, width, &mut rng);
        let d = rand_matrix(batch, width, &mut rng);
        let mut group = c.benchmark_group(format!("train/gemm-fwd-bwd-{batch}x{width}"));
        group.sample_size(20);
        group.bench_function("naive-reference", |b| {
            b.iter(|| {
                black_box((
                    x.matmul_ref(&w),
                    d.matmul_transpose_ref(&w),
                    x.transpose_matmul_ref(&d),
                ))
            })
        });
        group.bench_function("blocked-1-thread", |b| {
            b.iter(|| {
                par::with_threads(1, || {
                    black_box((x.matmul(&w), d.matmul_transpose(&w), x.transpose_matmul(&d)))
                })
            })
        });
        group.bench_function("blocked-4-threads", |b| {
            b.iter(|| {
                par::with_threads(4, || {
                    black_box((x.matmul(&w), d.matmul_transpose(&w), x.transpose_matmul(&d)))
                })
            })
        });
        group.finish();
    }
}

/// Forward+backward at 256-batch on a 512-wide net, 1 vs 4 threads.
fn bench_forward_backward_scaling(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let net = Mlp::new(&[OBS, 512, 512, ACTS], Activation::Tanh, &mut rng);
    let x = rand_matrix(256, OBS, &mut rng);
    let mut group = c.benchmark_group("train/forward-backward-256x(16-512-512-4)");
    group.sample_size(20);
    for threads in [1usize, 4] {
        group.bench_function(format!("{threads}-threads"), |b| {
            b.iter(|| {
                par::with_threads(threads, || {
                    let cache = net.forward_cached(black_box(&x));
                    let grads = net.backward(&cache, &cache.output);
                    black_box(grads.global_norm())
                })
            })
        });
    }
    group.finish();
}

fn bench_rmsprop_step(c: &mut Criterion) {
    let (mut net, x) = setup();
    let mut opt = RmsProp::with_lr(7e-3);
    c.bench_function("train/a2c-rmsprop-step", |b| {
        b.iter(|| {
            let cache = net.forward_cached(&x);
            let grads = net.backward(&cache, &cache.output);
            opt.step(&mut net, &grads);
            black_box(net.num_params())
        })
    });
}

fn bench_kfac_step(c: &mut Criterion) {
    let (mut net, x) = setup();
    let mut kfac = Kfac::new(&net, KfacConfig::default());
    c.bench_function("train/acktr-kfac-step", |b| {
        b.iter(|| {
            let cache = net.forward_cached(&x);
            let grads = net.backward(&cache, &cache.output);
            let fg: Vec<&Matrix> = grads.layers.iter().map(|l| &l.preact_grads).collect();
            kfac.update_stats(&cache, &fg);
            kfac.step(&mut net, &grads).expect("spd factors");
            black_box(net.num_params())
        })
    });
}

/// Fresh K-FAC first step (factor stats + all Cholesky inversions — the
/// per-layer parallel stages) at 1 vs 4 threads on a 512-wide net.
fn bench_kfac_scaling(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let net = Mlp::new(&[OBS, 512, 512, ACTS], Activation::Tanh, &mut rng);
    let x = rand_matrix(256, OBS, &mut rng);
    let cache = net.forward_cached(&x);
    let grads = net.backward(&cache, &cache.output);
    let fg: Vec<&Matrix> = grads.layers.iter().map(|l| &l.preact_grads).collect();
    let mut group = c.benchmark_group("train/kfac-stats+inversions-512");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_function(format!("{threads}-threads"), |b| {
            b.iter(|| {
                par::with_threads(threads, || {
                    let mut net = net.clone();
                    let mut kfac = Kfac::new(&net, KfacConfig::default());
                    kfac.update_stats(&cache, &fg);
                    kfac.step(&mut net, &grads).expect("spd factors");
                    black_box(net.num_params())
                })
            })
        });
    }
    group.finish();
}

fn bench_kfac_inversion(c: &mut Criterion) {
    // The 257×257 damped inversion that K-FAC amortizes over
    // `inverse_period` updates.
    let n = 257;
    let b = Matrix::from_fn(n, n, |r, c| ((r * 31 + c * 17) % 13) as f32 / 13.0 - 0.5);
    let m = b.matmul_transpose(&b).scaled(1.0 / n as f32);
    let mut group = c.benchmark_group("train/kfac-inversion-257");
    group.sample_size(20);
    group.bench_function("damped-cholesky", |bch| {
        bch.iter(|| black_box(damped_inverse(black_box(&m), 0.01).expect("spd")))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_forward_backward, bench_gemm_kernels, bench_forward_backward_scaling,
        bench_rmsprop_step, bench_kfac_step, bench_kfac_scaling, bench_kfac_inversion
}
criterion_main!(benches);
