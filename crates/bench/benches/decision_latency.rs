//! Criterion bench behind **Fig. 9b**: per-decision inference latency.
//!
//! The distributed agent's decision cost depends only on the network
//! degree Δ_G (observation size 4Δ+4), not the network size; the
//! centralized agent's rule update scales with the number of nodes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dosco_core::policy::{CoordinationPolicy, PolicyMetadata};
use dosco_nn::{Activation, Mlp};
use dosco_topology::zoo;
use rand::SeedableRng;
use std::hint::black_box;

fn policy_for_degree(degree: usize) -> CoordinationPolicy {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let actor = Mlp::paper_arch(4 * degree + 4, degree + 1, &mut rng);
    CoordinationPolicy::new(actor, degree, PolicyMetadata::default())
}

fn bench_distributed_decision(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9b/distributed-decision");
    for topo in zoo::all() {
        let degree = topo.network_degree();
        let policy = policy_for_degree(degree);
        let obs = vec![0.1f32; 4 * degree + 4];
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}-n{}", topo.name(), topo.num_nodes())),
            &obs,
            |b, obs| b.iter(|| black_box(policy.act(black_box(obs)))),
        );
    }
    group.finish();
}

fn bench_centralized_decision(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9b/centralized-rule-update");
    for topo in zoo::all() {
        let nodes = topo.num_nodes();
        // The centralized actor maps a |V| snapshot to |V|·3 rule weights.
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let actor = Mlp::new(&[nodes, 64, 64, nodes * 3], Activation::Tanh, &mut rng);
        let snapshot = dosco_nn::Matrix::row_vector(&vec![0.5f32; nodes]);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}-n{nodes}", topo.name())),
            &snapshot,
            |b, snap| b.iter(|| black_box(actor.forward(black_box(snap)))),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_distributed_decision, bench_centralized_decision
}
criterion_main!(benches);
