//! Actor–learner runtime throughput: environment transitions trained per
//! second through `dosco_runtime` versus the algorithm's serial loop, on
//! a lightweight synthetic environment so the runtime machinery (channel
//! transport, snapshot broadcast, clock gate) dominates the measurement
//! rather than the simulator.
//!
//! Three configurations over the same A2C workload:
//! - `serial`: `A2c::train` (the baseline path),
//! - `runtime-sync`: the lockstep runtime (bit-identical result; measures
//!   pure transport overhead),
//! - `runtime-async`: two overlapped actors (the speedup path on
//!   multi-core hosts).

use criterion::{criterion_group, criterion_main, Criterion};
use dosco_rl::a2c::{A2c, A2cConfig};
use dosco_rl::env::{Env, StepResult};
use dosco_runtime::{train, RuntimeConfig};
use std::hint::black_box;

/// A cheap deterministic chain MDP (10 states, 2 actions): observation is
/// a 4-dim encoding of the state, reward +1 at the end of the chain.
struct Chain {
    state: usize,
    steps: usize,
}

impl Chain {
    fn obs(&self) -> Vec<f32> {
        let x = self.state as f32 / 10.0;
        vec![x, 1.0 - x, (x * 3.0).sin(), (x * 3.0).cos()]
    }
}

impl Env for Chain {
    fn obs_dim(&self) -> usize {
        4
    }

    fn num_actions(&self) -> usize {
        2
    }

    fn reset(&mut self) -> Vec<f32> {
        self.state = 0;
        self.steps = 0;
        self.obs()
    }

    fn step(&mut self, action: usize) -> StepResult {
        self.steps += 1;
        self.state = if action == 1 {
            (self.state + 1).min(9)
        } else {
            self.state.saturating_sub(1)
        };
        let done = self.state == 9 || self.steps >= 40;
        let reward = if self.state == 9 { 1.0 } else { -0.02 };
        let obs = if done { self.reset() } else { self.obs() };
        StepResult { obs, reward, done }
    }
}

fn envs(n: usize) -> Vec<Box<dyn Env>> {
    (0..n)
        .map(|_| Box::new(Chain { state: 0, steps: 0 }) as Box<dyn Env>)
        .collect()
}

fn config() -> A2cConfig {
    A2cConfig {
        n_steps: 8,
        hidden: [16, 16],
        ..A2cConfig::default()
    }
}

const TOTAL_STEPS: usize = 512;
const N_ENVS: usize = 4;

fn bench_runtime_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime/a2c-512-steps");

    group.bench_function("serial", |b| {
        b.iter(|| {
            let mut agent = A2c::new(4, 2, config(), 1);
            let mut e = envs(N_ENVS);
            black_box(agent.train(&mut e, TOTAL_STEPS))
        })
    });

    group.bench_function("runtime-sync", |b| {
        b.iter(|| {
            let mut agent = A2c::new(4, 2, config(), 1);
            let mut e = envs(N_ENVS);
            black_box(train(&mut agent, &mut e, TOTAL_STEPS, &RuntimeConfig::sync()))
        })
    });

    group.bench_function("runtime-async-2", |b| {
        let cfg = RuntimeConfig::async_with_actors(2);
        b.iter(|| {
            let mut agent = A2c::new(4, 2, config(), 1);
            let mut e = envs(N_ENVS);
            black_box(train(&mut agent, &mut e, TOTAL_STEPS, &cfg))
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_runtime_throughput
}
criterion_main!(benches);
