//! Experiment harness shared by the table/figure reproduction binaries.
//!
//! Every evaluation figure compares the same four algorithms
//! (Sec. V-A3) on scenario variations of the Abilene base scenario:
//! the **distributed DRL** approach (the paper's contribution), the
//! **centralized DRL** baseline, the **GCASP** heuristic, and greedy
//! **SP**. This crate packages scenario construction, training, running,
//! and table printing so each `src/bin/figN.rs` binary stays a thin
//! parameter sweep.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod report;
pub mod runner;
pub mod scenarios;

pub use report::{print_series, SeriesPoint};
pub use runner::{Algo, EvalStats, ExpBudget};
pub use scenarios::base_scenario;
