//! Regenerates **Table I**: real-world network topologies and their size
//! and degree statistics.
//!
//! ```text
//! cargo run -p dosco-bench --release --bin table1
//! ```

use dosco_topology::zoo;

fn main() {
    println!("TABLE I: Real-world network topologies [9]");
    println!(
        "{:<14} {:>5} {:>5}   Degree (Min./Max./Avg.)",
        "Network", "Nodes", "Edges"
    );
    for row in zoo::table1() {
        println!("{row}");
    }
    println!("\ncsv:");
    println!("network,nodes,edges,min_degree,max_degree,avg_degree");
    for row in zoo::table1() {
        println!(
            "{},{},{},{},{},{:.2}",
            row.name, row.nodes, row.edges, row.degree.min, row.degree.max, row.degree.avg
        );
    }
}
