//! Prints the training reward curve of one agent — a diagnostic for
//! sizing the training budget of the experiment binaries.

use dosco_bench::report::flag_value;
use dosco_bench::scenarios::{base_scenario, pattern_by_name};
use dosco_core::policy::{CoordinationPolicy, PolicyMetadata};
use dosco_core::{CoordEnv, RewardConfig};
use dosco_rl::a2c::{A2c, A2cConfig};
use dosco_rl::acktr::{Acktr, AcktrConfig};
use dosco_rl::env::Env;
use dosco_rl::ppo::{Ppo, PpoConfig};

enum Agent {
    Acktr(Acktr),
    A2c(A2c),
    Ppo(Ppo),
}

impl Agent {
    fn train(&mut self, envs: &mut [Box<dyn Env>], steps: usize) -> dosco_rl::a2c::TrainStats {
        match self {
            Agent::Acktr(a) => a.train(envs, steps),
            Agent::A2c(a) => a.train(envs, steps),
            Agent::Ppo(a) => a.train(envs, steps),
        }
    }

    fn actor(&self) -> &dosco_nn::Mlp {
        match self {
            Agent::Acktr(a) => a.actor(),
            Agent::A2c(a) => a.actor(),
            Agent::Ppo(a) => a.actor(),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let pattern = pattern_by_name(
        flag_value(&args, "--pattern").as_deref().unwrap_or("poisson"),
    );
    let ingress: usize = flag_value(&args, "--ingress")
        .map(|v| v.parse().expect("--ingress must be an integer"))
        .unwrap_or(2);
    let steps: usize = flag_value(&args, "--steps")
        .map(|v| v.parse().expect("--steps must be an integer"))
        .unwrap_or(50_000);
    let lr: f32 = flag_value(&args, "--lr")
        .map(|v| v.parse().expect("--lr must be a number"))
        .unwrap_or(0.25);
    let ent: f32 = flag_value(&args, "--ent")
        .map(|v| v.parse().expect("--ent must be a number"))
        .unwrap_or(0.01);
    let seed: u64 = flag_value(&args, "--seed")
        .map(|v| v.parse().expect("--seed must be an integer"))
        .unwrap_or(0);

    let scenario = base_scenario(ingress, pattern, 5_000.0);
    let mut envs: Vec<Box<dyn Env>> = (0..4)
        .map(|i| {
            Box::new(CoordEnv::new(
                scenario.clone(),
                RewardConfig::default(),
                seed * 1000 + i,
                None,
            )) as Box<dyn Env>
        })
        .collect();
    let obs_dim = 4 * scenario.topology.network_degree() + 4;
    let acts = scenario.topology.network_degree() + 1;
    let norm = args.iter().any(|a| a == "--norm");
    let n_steps: usize = flag_value(&args, "--nsteps")
        .map(|v| v.parse().expect("--nsteps must be an integer"))
        .unwrap_or(16);
    let algo = flag_value(&args, "--algo").unwrap_or_else(|| "acktr".into());
    let gamma: f32 = flag_value(&args, "--gamma")
        .map(|v| v.parse().expect("--gamma must be a number"))
        .unwrap_or(0.99);
    let mut agent = match algo.as_str() {
        "acktr" => Agent::Acktr(Acktr::new(
            obs_dim,
            acts,
            AcktrConfig {
                lr,
                ent_coef: ent,
                normalize_advantages: norm,
                n_steps,
                gamma,
                ..AcktrConfig::default()
            },
            seed,
        )),
        "a2c" => Agent::A2c(A2c::new(
            obs_dim,
            acts,
            A2cConfig {
                ent_coef: ent,
                normalize_advantages: norm,
                n_steps,
                ..A2cConfig::default()
            },
            seed,
        )),
        "ppo" => Agent::Ppo(Ppo::new(
            obs_dim,
            acts,
            PpoConfig {
                ent_coef: ent,
                hidden: [256, 256],
                ..PpoConfig::default()
            },
            seed,
        )),
        other => panic!("unknown algo {other:?}"),
    };

    let chunk = 4_000;
    let mut done = 0;
    while done < steps {
        let stats = agent.train(&mut envs, chunk);
        done += chunk;
        // Evaluate greedily on a short episode.
        let policy = CoordinationPolicy::new(
            agent.actor().clone(),
            scenario.topology.network_degree(),
            PolicyMetadata::default(),
        );
        let m = dosco_core::eval::evaluate(&policy, &scenario.clone().with_horizon(2_000.0), 777);
        use dosco_simnet::DropReason;
        println!(
            "steps {:>7}  mean_reward {:>7.3}  greedy_success {:.3}  (ok {} node {} link {} ddl {} inval {} holds {})",
            done,
            stats.tail_mean(50),
            m.success_ratio(),
            m.completed,
            m.dropped_for(DropReason::NodeCapacity),
            m.dropped_for(DropReason::LinkCapacity),
            m.dropped_for(DropReason::DeadlineExpired),
            m.dropped_for(DropReason::InvalidAction),
            m.holds,
        );
    }
}
