//! Regenerates **Fig. 7**: percentage of successful flows and average
//! end-to-end delay while varying the flow deadline
//! `τ_f ∈ {20, 30, 40, 50}`; ingress {v1, v2}, Poisson arrivals.
//!
//! ```text
//! cargo run -p dosco-bench --release --bin fig7
//! ```
//!
//! The DRL agent is retrained per deadline (as in Sec. V-C: "just by
//! retraining the DRL agent for each scenario but without changing any
//! hyperparameters").

use dosco_bench::report::{print_series, SeriesPoint};
use dosco_bench::runner::{train_central_drl, train_dist_drl_cached, Algo, ExpBudget};
use dosco_bench::scenarios::base_scenario;
use dosco_traffic::ArrivalPattern;

fn main() {
    let budget = ExpBudget::from_env();
    let mut points = Vec::new();
    for &deadline in &[20.0f64, 30.0, 40.0, 50.0] {
        let scenario = base_scenario(2, ArrivalPattern::paper_poisson(), budget.horizon)
            .with_deadline(deadline);
        let dist = train_dist_drl_cached(
            &format!("fig7-ddl{}", deadline as u64),
            &scenario,
            &budget,
        );
        let central = train_central_drl(&scenario, &budget);
        for algo in [
            Algo::DistDrl(dist),
            Algo::CentralDrl(central),
            Algo::Gcasp,
            Algo::Sp,
        ] {
            let stats = algo.evaluate(&scenario, &budget.eval_seeds);
            eprintln!(
                "[fig7] deadline={deadline} {:<10} success {:.3} ± {:.3}  e2e {}",
                algo.name(),
                stats.mean_success,
                stats.std_success,
                stats
                    .mean_e2e_delay
                    .map_or("-".into(), |d| format!("{d:.1} ms")),
            );
            points.push(SeriesPoint {
                algo: algo.name(),
                x: format!("{}", deadline as u64),
                stats,
            });
        }
    }
    print_series(
        "Fig 7",
        "successful flows & avg end-to-end delay vs deadline",
        &points,
        true,
    );
}
