//! Ablations beyond the paper (DESIGN.md §3): the contribution of the
//! design choices the paper motivates qualitatively.
//!
//! 1. **Reward shaping** (Sec. IV-B3): shaped vs sparse-only rewards.
//! 2. **Training algorithm** (Sec. IV-C2): ACKTR vs A2C vs PPO at the same
//!    step budget.
//! 3. **Training architecture** (Sec. IV-C1): centralized training with a
//!    shared network (the paper's choice) vs fully distributed per-node
//!    training, with and without federated averaging.
//!
//! ```text
//! cargo run -p dosco-bench --release --bin ablations
//! ```

use dosco_bench::report::{print_series, SeriesPoint};
use dosco_bench::runner::{Algo, ExpBudget};
use dosco_bench::scenarios::base_scenario;
use dosco_core::train::{train_distributed, Algorithm, TrainConfig};
use dosco_core::RewardConfig;
use dosco_traffic::ArrivalPattern;

fn main() {
    let budget = ExpBudget::from_env();
    let scenario = base_scenario(2, ArrivalPattern::paper_poisson(), budget.horizon);
    let mut points = Vec::new();

    // --- Reward shaping ablation.
    for (label, reward) in [
        ("shaped", RewardConfig::default()),
        ("sparse", RewardConfig::sparse_only()),
    ] {
        let mut cfg: TrainConfig = budget.train_config();
        cfg.reward = reward;
        let trained = train_distributed(&scenario, &cfg);
        let stats = Algo::DistDrl(trained.policy).evaluate(&scenario, &budget.eval_seeds);
        eprintln!(
            "[ablation] reward={label}: {:.3} ± {:.3}",
            stats.mean_success, stats.std_success
        );
        points.push(SeriesPoint {
            algo: if label == "shaped" { "reward:shaped" } else { "reward:sparse" },
            x: "poisson-2ingress".into(),
            stats,
        });
    }

    // --- Algorithm ablation at the same budget.
    for (label, algorithm) in [
        ("ACKTR", Algorithm::Acktr),
        ("A2C", Algorithm::A2c),
        ("PPO", Algorithm::Ppo),
    ] {
        let mut cfg = budget.train_config();
        cfg.algorithm = algorithm;
        let trained = train_distributed(&scenario, &cfg);
        let stats = Algo::DistDrl(trained.policy).evaluate(&scenario, &budget.eval_seeds);
        eprintln!(
            "[ablation] algo={label}: {:.3} ± {:.3}",
            stats.mean_success, stats.std_success
        );
        points.push(SeriesPoint {
            algo: match label {
                "ACKTR" => "algo:ACKTR",
                "A2C" => "algo:A2C",
                _ => "algo:PPO",
            },
            x: "poisson-2ingress".into(),
            stats,
        });
    }

    // --- Training-architecture ablation (Sec. IV-C1): per-node training
    // with/without FedAvg sync, deployed as genuinely different per-node
    // networks.
    use dosco_core::federated::{train_per_node, FederatedConfig};
    use dosco_simnet::Simulation;
    for (label, sync) in [("per-node+fedavg", Some(2_000)), ("per-node", None)] {
        let fed_cfg = FederatedConfig {
            total_decisions: budget.train_steps,
            sync_interval: sync,
            ..FederatedConfig::default()
        };
        let policies = train_per_node(&scenario, &fed_cfg, 0);
        let metrics: Vec<dosco_simnet::Metrics> = budget
            .eval_seeds
            .iter()
            .map(|&seed| {
                let s = dosco_bench::runner::scenario_with_capacity_seed(&scenario, seed);
                let mut c = policies.clone();
                let mut sim = Simulation::new(s, seed);
                sim.run(&mut c).clone()
            })
            .collect();
        let stats = dosco_bench::runner::EvalStats::from_metrics(metrics);
        eprintln!(
            "[ablation] arch={label}: {:.3} ± {:.3}",
            stats.mean_success, stats.std_success
        );
        points.push(SeriesPoint {
            algo: if sync.is_some() { "arch:per-node+fedavg" } else { "arch:per-node" },
            x: "poisson-2ingress".into(),
            stats,
        });
    }

    print_series("Ablations", "design-choice contributions", &points, false);
}
