//! Machine-readable performance report for the parallel compute layer,
//! the actor–learner runtime, and the serving plane: times the blocked
//! GEMM kernels against the retained naive references, the pool-parallel
//! stages (forward/backward, K-FAC, rollout collection, eval fan-out) at
//! 1 vs 4 worker threads, serial vs actor–learner training throughput
//! (`dosco_runtime`), the observability layer's trace-capture overhead
//! (`dosco_obs`), per-decision vs batched sharded inference
//! (`dosco_serve`, with decisions/sec in the record note), and the
//! control plane's ops costs (`dosco_ctl`: HTTP `/metrics` round trips
//! vs in-process export, registry publish/load vs a bare policy save),
//! then writes `BENCH_PR6.json` at the repo root (or `--out <path>`).
//!
//! Span timers are armed for the whole run, so the report also embeds an
//! `obs` snapshot: per-kind span totals (GEMM, K-FAC, rollout collection,
//! channel waits, snapshot publishes, serve batch forwards) plus trace
//! counters, the serve batch-size histogram, and fallback/swap counters.
//!
//! All timings are best-of-N wall clock. Thread-scaling numbers are only
//! meaningful when the host has multiple cores; the report records the
//! host's parallelism and annotates each record so single-core runs are
//! not mistaken for a regression.

use dosco_bench::report::{flag_value, write_json_report, BenchRecord, BenchReport};
use dosco_bench::runner::Algo;
use dosco_bench::scenarios::base_scenario;
use dosco_core::{CoordEnv, RewardConfig};
use dosco_nn::kfac::{Kfac, KfacConfig};
use dosco_nn::matrix::Matrix;
use dosco_nn::mlp::{Activation, Mlp};
use dosco_nn::par;
use dosco_rl::rollout::RolloutCollector;
use dosco_rl::Env;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

/// Best-of-`reps` wall time of `f`, in milliseconds.
fn time_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn rand_matrix(rows: usize, cols: usize, rng: &mut rand::rngs::StdRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| {
        use rand::Rng;
        rng.gen_range(-1.0f32..1.0)
    })
}

/// Naive vs blocked kernels over a forward/backward-shaped GEMM chain:
/// `X·W` (forward), `D·Wᵀ` (input grad), `Xᵀ·D` (weight grad).
fn gemm_fwd_bwd(batch: usize, width: usize, note: &str) -> BenchRecord {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let x = rand_matrix(batch, width, &mut rng);
    let w = rand_matrix(width, width, &mut rng);
    let d = rand_matrix(batch, width, &mut rng);
    let reps = if batch * width * width > 1 << 24 { 5 } else { 12 };
    let naive = time_ms(reps, || {
        (x.matmul_ref(&w), d.matmul_transpose_ref(&w), x.transpose_matmul_ref(&d))
    });
    let blocked = time_ms(reps, || {
        (x.matmul(&w), d.matmul_transpose(&w), x.transpose_matmul(&d))
    });
    BenchRecord::new(
        &format!("gemm/fwd-bwd-{batch}x{width}"),
        "naive triple-loop kernels (seed)",
        "cache-blocked kernels (this PR)",
        naive,
        blocked,
        note,
    )
}

/// The same blocked kernels at 1 vs 4 pool threads.
fn gemm_threads(batch: usize, width: usize, note: &str) -> BenchRecord {
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let x = rand_matrix(batch, width, &mut rng);
    let w = rand_matrix(width, width, &mut rng);
    let d = rand_matrix(batch, width, &mut rng);
    let run = || (x.matmul(&w), d.matmul_transpose(&w), x.transpose_matmul(&d));
    let t1 = time_ms(8, || par::with_threads(1, run));
    let t4 = time_ms(8, || par::with_threads(4, run));
    BenchRecord::new(
        &format!("gemm/threads-{batch}x{width}"),
        "blocked, 1 thread",
        "blocked, 4 threads",
        t1,
        t4,
        note,
    )
}

/// Full forward+backward on the paper architecture at 1 vs 4 threads.
fn mlp_threads(batch: usize, note: &str) -> BenchRecord {
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let net = Mlp::paper_arch(16, 4, &mut rng);
    let x = rand_matrix(batch, 16, &mut rng);
    let run = || {
        let cache = net.forward_cached(&x);
        net.backward(&cache, &cache.output)
    };
    let t1 = time_ms(8, || par::with_threads(1, run));
    let t4 = time_ms(8, || par::with_threads(4, run));
    BenchRecord::new(
        &format!("mlp/fwd-bwd-{batch}x(16-256-256-4)"),
        "1 thread",
        "4 threads",
        t1,
        t4,
        note,
    )
}

/// K-FAC factor statistics + Cholesky inversions at 1 vs 4 threads.
fn kfac_threads(note: &str) -> BenchRecord {
    let mut rng = rand::rngs::StdRng::seed_from_u64(19);
    let net = Mlp::new(&[16, 512, 512, 4], Activation::Tanh, &mut rng);
    let x = rand_matrix(256, 16, &mut rng);
    let cache = net.forward_cached(&x);
    let grads = net.backward(&cache, &cache.output);
    let fg: Vec<&Matrix> = grads.layers.iter().map(|l| &l.preact_grads).collect();
    // Fresh K-FAC each run: the first step computes factor stats AND the
    // damped Cholesky inversions (the parallelized per-layer stages).
    let run = || {
        let mut net = net.clone();
        let mut kfac = Kfac::new(&net, KfacConfig::default());
        kfac.update_stats(&cache, &fg);
        kfac.step(&mut net, &grads).expect("spd factors");
        net.num_params()
    };
    let t1 = time_ms(5, || par::with_threads(1, run));
    let t4 = time_ms(5, || par::with_threads(4, run));
    BenchRecord::new(
        "kfac/stats+inversions-512-wide",
        "1 thread",
        "4 threads",
        t1,
        t4,
        note,
    )
}

/// Rollout collection (8 envs × 16 steps on the base scenario) at 1 vs 4
/// threads — the env steps fan out, sampling stays serial.
fn rollout_threads(note: &str) -> BenchRecord {
    let scenario = base_scenario(2, dosco_traffic::ArrivalPattern::paper_poisson(), 200.0);
    let degree = scenario.topology.network_degree();
    let (obs_dim, num_actions) = (4 * degree + 4, degree + 1);
    let mut rng = rand::rngs::StdRng::seed_from_u64(23);
    let actor = Mlp::paper_arch(obs_dim, num_actions, &mut rng);
    let critic = Mlp::paper_arch(obs_dim, 1, &mut rng);
    let run = || {
        let mut envs: Vec<Box<dyn Env>> = (0..8)
            .map(|i| {
                Box::new(CoordEnv::new(
                    scenario.clone(),
                    RewardConfig::default(),
                    100 + i,
                    None,
                )) as Box<dyn Env>
            })
            .collect();
        let mut col = RolloutCollector::new(&mut envs);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        col.collect(&mut envs, &actor, &critic, 16, 0.99, 0.95, &mut rng)
            .reward_sum
    };
    let t1 = time_ms(5, || par::with_threads(1, run));
    let t4 = time_ms(5, || par::with_threads(4, run));
    BenchRecord::new("rollout/8-envs-16-steps", "1 thread", "4 threads", t1, t4, note)
}

/// Multi-seed evaluation fan-out (`Algo::evaluate`, GCASP over 8 seeds)
/// at 1 vs 4 threads.
fn eval_threads(note: &str) -> BenchRecord {
    let scenario = base_scenario(2, dosco_traffic::ArrivalPattern::paper_poisson(), 500.0);
    let seeds: Vec<u64> = (0..8).collect();
    let t1 = time_ms(3, || par::with_threads(1, || Algo::Gcasp.evaluate(&scenario, &seeds)));
    let t4 = time_ms(3, || par::with_threads(4, || Algo::Gcasp.evaluate(&scenario, &seeds)));
    BenchRecord::new("eval/8-seed-fan-out", "1 thread", "4 threads", t1, t4, note)
}

/// Multi-seed GCASP evaluation with tracing off vs a live
/// [`dosco_obs::JsonlRecorder`] capturing every episode event — the cost
/// of full trace capture on the simulation hot path.
fn obs_trace_overhead(note: &str) -> BenchRecord {
    let scenario = base_scenario(2, dosco_traffic::ArrivalPattern::paper_poisson(), 500.0);
    let seeds: Vec<u64> = (0..4).collect();
    let untraced = time_ms(3, || Algo::Gcasp.evaluate(&scenario, &seeds));
    let path = std::env::temp_dir().join("dosco_perf_report_trace.jsonl");
    dosco_obs::install_recorder(std::sync::Arc::new(dosco_obs::JsonlRecorder::new(
        path.clone(),
    )));
    let traced = time_ms(3, || Algo::Gcasp.evaluate(&scenario, &seeds));
    dosco_obs::uninstall_recorder();
    let _ = std::fs::remove_file(&path);
    BenchRecord::new(
        "obs/trace-4-eval-episodes",
        "tracing disabled (default)",
        "JsonlRecorder capturing (DOSCO_TRACE)",
        untraced,
        traced,
        note,
    )
}

/// Serial `A2c::train` vs the actor–learner runtime over the same A2C
/// workload on the base scenario (4 envs × 8-step batches). Sync mode
/// measures pure transport overhead (its result is bit-identical to
/// serial); async mode is where overlap can pay off on multi-core hosts.
fn runtime_throughput(mode: &str, note: &str) -> BenchRecord {
    use dosco_rl::a2c::{A2c, A2cConfig};
    let scenario = base_scenario(1, dosco_traffic::ArrivalPattern::paper_poisson(), 200.0);
    let degree = scenario.topology.network_degree();
    let (obs_dim, num_actions) = (4 * degree + 4, degree + 1);
    let cfg = A2cConfig {
        n_steps: 8,
        hidden: [64, 64],
        ..A2cConfig::default()
    };
    let total_steps = 640;
    let make_envs = || -> Vec<Box<dyn Env>> {
        (0..4)
            .map(|i| {
                Box::new(CoordEnv::new(
                    scenario.clone(),
                    RewardConfig::default(),
                    300 + i,
                    None,
                )) as Box<dyn Env>
            })
            .collect()
    };
    let serial = time_ms(5, || {
        let mut agent = A2c::new(obs_dim, num_actions, cfg, 1);
        let mut envs = make_envs();
        agent.train(&mut envs, total_steps).total_steps
    });
    let rt_cfg = match mode {
        "sync" => dosco_runtime::RuntimeConfig::sync(),
        _ => dosco_runtime::RuntimeConfig::async_with_actors(2),
    };
    let runtime = time_ms(5, || {
        let mut agent = A2c::new(obs_dim, num_actions, cfg, 1);
        let mut envs = make_envs();
        dosco_runtime::train(&mut agent, &mut envs, total_steps, &rt_cfg)
            .stats
            .total_steps
    });
    BenchRecord::new(
        &format!("runtime/a2c-640-steps-{mode}"),
        "serial A2c::train",
        &format!("dosco_runtime {mode} mode"),
        serial,
        runtime,
        note,
    )
}

/// Per-decision `evaluate` loop vs the sharded batched serving fabric
/// over the same 8-episode workload. Decisions/sec and the observed
/// batch-size range land in the record note — the fabric's win comes
/// from amortizing one matrix forward across every queued decision.
fn serve_throughput(shards: usize, host: usize) -> BenchRecord {
    use dosco_core::policy::PolicyMetadata;
    use dosco_core::CoordinationPolicy;
    use dosco_serve::{serve, ServeConfig};

    let scenario = base_scenario(2, dosco_traffic::ArrivalPattern::paper_poisson(), 400.0);
    let degree = scenario.topology.network_degree();
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let actor = Mlp::paper_arch(4 * degree + 4, degree + 1, &mut rng);
    let policy = CoordinationPolicy::new(actor, degree, PolicyMetadata::default());
    let seeds: Vec<u64> = (0..8).collect();

    let per_decision = time_ms(5, || {
        seeds
            .iter()
            .map(|&s| dosco_core::eval::evaluate(&policy, &scenario, s).decisions)
            .sum::<u64>()
    });
    let cfg = ServeConfig::new(shards);
    let mut report = None;
    let batched = time_ms(5, || {
        let out = serve(&policy, None, &scenario, &seeds, &cfg);
        let arrived = out.report.decisions;
        report = Some(out.report);
        arrived
    });
    let report = report.expect("serve ran");
    let decisions = report.decisions as f64;
    let note = format!(
        "{:.0} vs {:.0} decisions/sec; max batch {} rows across {} shard(s){}",
        decisions / (per_decision / 1e3),
        decisions / (batched / 1e3),
        report.max_batch_rows,
        shards,
        if host < 2 {
            "; single-core host: shard threads timeshare with the frontend, \
             so batching is the only lever here"
        } else {
            ""
        }
    );
    BenchRecord::new(
        &format!("serve/8-episodes-{shards}-shards"),
        "per-decision DistributedAgents loop",
        "dosco_serve batched fabric",
        per_decision,
        batched,
        &note,
    )
}

/// In-process metrics export vs a full HTTP `GET /metrics` round trip
/// against a live `CtlServer` — the price of putting the registry behind
/// real TCP (connect + request + serialize + frame + read).
fn ctl_http_metrics(note: &str) -> BenchRecord {
    use dosco_ctl::{CtlConfig, CtlServer, CtlState};
    use std::io::{Read, Write};

    let server =
        CtlServer::start(&CtlConfig::default(), std::sync::Arc::new(CtlState::new()))
            .expect("start ctl server");
    let addr = server.addr();
    let round_trip = || {
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        write!(stream, "GET /metrics HTTP/1.1\r\nHost: l\r\nConnection: close\r\n\r\n")
            .expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        response.len()
    };
    // 32 requests per timed rep so connection setup jitter averages out.
    let in_process = time_ms(8, || (0..32).map(|_| dosco_obs::report_json().len()).sum::<usize>());
    let over_http = time_ms(8, || (0..32).map(|_| round_trip()).sum::<usize>());
    server.shutdown();
    BenchRecord::new(
        "ctl/http-metrics-endpoint",
        "in-process report_json()",
        "HTTP GET /metrics round trip",
        in_process,
        over_http,
        note,
    )
}

/// Bare checksummed policy save/load vs the registry's
/// publish/load — the cost of the manifest write, the read-back
/// verification, and the manifest cross-check on load.
fn ctl_registry_roundtrip(note: &str) -> BenchRecord {
    use dosco_core::policy::PolicyMetadata;
    use dosco_core::CoordinationPolicy;
    use dosco_ctl::PolicyRegistry;

    let mut rng = rand::rngs::StdRng::seed_from_u64(37);
    let actor = Mlp::paper_arch(16, 4, &mut rng);
    let policy = CoordinationPolicy::new(actor, 3, PolicyMetadata::default());

    let dir = std::env::temp_dir().join(format!("dosco-perf-ctl-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let bare = dir.join("bare.policy");
    let direct = time_ms(8, || {
        policy.save(&bare).expect("save");
        CoordinationPolicy::load(&bare).expect("load").actor().num_params()
    });
    let mut registry = PolicyRegistry::open(dir.join("registry")).expect("open registry");
    let registered = time_ms(8, || {
        let meta = registry.publish(&policy).expect("publish");
        registry.load(meta.version).expect("load").actor().num_params()
    });
    let _ = std::fs::remove_dir_all(&dir);
    BenchRecord::new(
        "ctl/registry-save-load",
        "bare CoordinationPolicy save+load",
        "PolicyRegistry publish+load",
        direct,
        registered,
        note,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_PR6.json".to_string());
    // Arm span timers so the embedded obs snapshot covers the whole run.
    dosco_obs::set_spans_enabled(true);
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let thread_note = if host >= 4 {
        "threads 1 vs 4 on the shared worker pool".to_string()
    } else {
        format!(
            "host has {host} core(s): 4 pool threads timeshare, so near-1x is \
             expected here; the kernel-level naive-vs-blocked records carry the \
             single-core speedup"
        )
    };

    eprintln!("[perf_report] host parallelism: {host}");
    let mut records = Vec::new();

    eprintln!("[perf_report] gemm naive vs blocked (paper scale 64x256)...");
    records.push(gemm_fwd_bwd(64, 256, "paper scale: batch 64, 256-wide layers"));
    eprintln!("[perf_report] gemm naive vs blocked (256x512)...");
    records.push(gemm_fwd_bwd(256, 512, "large scale: batch 256, 512-wide layers"));
    eprintln!("[perf_report] gemm thread scaling...");
    records.push(gemm_threads(256, 512, &thread_note));
    eprintln!("[perf_report] mlp forward+backward thread scaling...");
    records.push(mlp_threads(256, &thread_note));
    eprintln!("[perf_report] kfac thread scaling...");
    records.push(kfac_threads(&thread_note));
    eprintln!("[perf_report] rollout thread scaling...");
    records.push(rollout_threads(&thread_note));
    eprintln!("[perf_report] eval fan-out thread scaling...");
    records.push(eval_threads(&thread_note));
    let runtime_note = if host >= 2 {
        "actor-learner runtime vs serial loop; sync is lockstep (overhead \
         only, bit-identical result), async overlaps collection and updates"
            .to_string()
    } else {
        format!(
            "host has {host} core(s): actor and learner threads timeshare, so \
             the runtime cannot beat the serial loop here; the record measures \
             transport overhead, not the multi-core speedup"
        )
    };
    eprintln!("[perf_report] runtime throughput (sync)...");
    records.push(runtime_throughput("sync", &runtime_note));
    eprintln!("[perf_report] runtime throughput (async)...");
    records.push(runtime_throughput("async", &runtime_note));
    eprintln!("[perf_report] serve throughput (1 shard)...");
    records.push(serve_throughput(1, host));
    eprintln!("[perf_report] serve throughput (2 shards)...");
    records.push(serve_throughput(2, host));
    eprintln!("[perf_report] obs trace capture overhead...");
    records.push(obs_trace_overhead(
        "cost of a live JSONL trace on the simulation hot path; the \
         disabled path is a single atomic load per decision",
    ));
    eprintln!("[perf_report] ctl http metrics endpoint...");
    records.push(ctl_http_metrics(
        "32 exports per rep; the gap is TCP connect + HTTP framing, \
         not serialization — both sides serialize the same registry",
    ));
    eprintln!("[perf_report] ctl registry save/load...");
    records.push(ctl_registry_roundtrip(
        "registry adds a manifest write, a read-back verification on \
         publish, and a checksum cross-check on load",
    ));

    let report = BenchReport {
        generated_by: "dosco-bench perf_report".to_string(),
        host_threads: host,
        pool_threads: 4,
        records,
        obs: Some(dosco_obs::report()),
    };
    for r in &report.records {
        println!(
            "{:<38} {:>9.2} ms -> {:>9.2} ms   {:>5.2}x",
            r.name, r.baseline_ms, r.candidate_ms, r.speedup
        );
    }
    write_json_report(std::path::Path::new(&out), &report).expect("write report");
    eprintln!("[perf_report] wrote {out}");
}
