//! Machine-readable performance report for the simulation core, the
//! parallel compute layer, the actor–learner runtime, and the serving
//! plane: million-concurrent-flow churn runs on Abilene and a synthetic
//! 1000-node grid (`dosco_simnet`'s slab flow table + indexed event
//! queue, with flows/sec, events/sec, peak queue length, and peak
//! resident slab size in the record notes), indexed-cancellable queue vs
//! BinaryHeap-with-tombstones and slab vs HashMap microbenches, the
//! blocked GEMM kernels against the retained naive references, the
//! scalar-vs-AVX2(-vs-FMA) SIMD micro-kernel dispatch (`DOSCO_SIMD`),
//! fp32 vs int8 quantized serving (with the measured argmax agreement
//! in the record note), the
//! pool-parallel stages (forward/backward, K-FAC, rollout collection,
//! eval fan-out) at 1 vs 4 worker threads, serial vs actor–learner
//! training throughput (`dosco_runtime`), the observability layer's
//! trace-capture overhead (`dosco_obs`), per-decision vs batched sharded
//! inference (`dosco_serve`, with decisions/sec in the record note), and
//! the control plane's ops costs (`dosco_ctl`: HTTP `/metrics` round
//! trips vs in-process export, registry publish/load vs a bare policy
//! save), and the transport layer (`dosco_net`: in-process channels vs
//! framed loopback-TCP socket channels, both raw batch hand-off and a
//! full sync training run whose socket result is bit-identical), and the
//! chaos subsystem (`dosco_chaos`: simulator throughput with substrate
//! churn on vs off, and the shortest-path recompute cost paid at each
//! churn epoch under the topology-version cache), then
//! writes `BENCH_PR10.json` at the repo root (or `--out <path>`).
//!
//! Span timers are armed for the whole run, so the report also embeds an
//! `obs` snapshot: per-kind span totals (GEMM, K-FAC, rollout collection,
//! channel waits, snapshot publishes, serve batch forwards) plus trace
//! counters, the serve batch-size histogram, and fallback/swap counters.
//!
//! All timings are best-of-N wall clock. Thread-scaling numbers are only
//! meaningful when the host has multiple cores; the report records the
//! host's parallelism and annotates each record so single-core runs are
//! not mistaken for a regression.

use dosco_bench::report::{flag_value, write_json_report, BenchRecord, BenchReport};
use dosco_bench::runner::Algo;
use dosco_bench::scenarios::{base_scenario, churn_scenario};
use dosco_core::{CoordEnv, RewardConfig};
use dosco_nn::kfac::{Kfac, KfacConfig};
use dosco_nn::matrix::Matrix;
use dosco_nn::mlp::{Activation, Mlp};
use dosco_nn::par;
use dosco_nn::simd::GemmKernel;
use dosco_rl::rollout::RolloutCollector;
use dosco_rl::Env;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

/// Best-of-`reps` wall time of `f`, in milliseconds.
fn time_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn rand_matrix(rows: usize, cols: usize, rng: &mut rand::rngs::StdRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| {
        use rand::Rng;
        rng.gen_range(-1.0f32..1.0)
    })
}

/// Shortest-path coordinator instrumented for the churn runs: counts the
/// simulation events it observes and snapshots the slab capacities once
/// the run passes its warm-up point, so the report can show the flow
/// slab and event queue stopped growing after steady state was reached.
struct ChurnWatch {
    inner: dosco_baselines::ShortestPath,
    warm: f64,
    warm_caps: Option<(usize, usize)>,
    events_seen: u64,
}

impl ChurnWatch {
    fn new(warm: f64) -> Self {
        ChurnWatch {
            inner: dosco_baselines::ShortestPath::new(),
            warm,
            warm_caps: None,
            events_seen: 0,
        }
    }
}

impl dosco_simnet::Coordinator for ChurnWatch {
    fn decide(
        &mut self,
        sim: &dosco_simnet::Simulation,
        dp: &dosco_simnet::DecisionPoint,
    ) -> dosco_simnet::Action {
        if self.warm_caps.is_none() && sim.time() >= self.warm {
            self.warm_caps = Some((sim.flow_slab_capacity(), sim.event_slab_capacity()));
        }
        self.inner.decide(sim, dp)
    }

    fn observe(&mut self, _sim: &dosco_simnet::Simulation, events: &[dosco_simnet::SimEvent]) {
        self.events_seen += events.len() as u64;
    }
}

/// One churn run: wall time plus the storage/throughput counters the
/// million-flow records report.
struct ChurnRun {
    ms: f64,
    flows: u64,
    events: u64,
    peak_live: usize,
    peak_queue: usize,
    flow_cap: usize,
    event_cap: usize,
    warm_caps: (usize, usize),
}

fn churn_run(cfg: dosco_simnet::ScenarioConfig, warm: f64) -> ChurnRun {
    let mut sim = dosco_simnet::Simulation::new(cfg, 7);
    let mut watch = ChurnWatch::new(warm);
    let t = Instant::now();
    sim.run(&mut watch);
    let ms = t.elapsed().as_secs_f64() * 1e3;
    let m = sim.metrics();
    assert_eq!(
        m.dropped.values().sum::<u64>(),
        0,
        "churn flows must never drop"
    );
    ChurnRun {
        ms,
        flows: m.arrived,
        events: watch.events_seen,
        peak_live: sim.peak_live_flows(),
        peak_queue: sim.peak_queued_events(),
        flow_cap: sim.flow_slab_capacity(),
        event_cap: sim.event_slab_capacity(),
        warm_caps: watch.warm_caps.expect("run passed its warm-up point"),
    }
}

/// A million concurrent flows through the simulation core: the churn
/// scenario at 100k and 1M steady-state concurrency on the same
/// topology. Linear scaling (10x flows -> ~10x wall clock) is the claim;
/// flows/sec, events/sec, peak queue length, and peak resident slab
/// sizes land in the note. Panics if the big run never actually holds
/// one million live flows or if either slab kept growing after warm-up.
fn simcore_million_flows(
    name: &str,
    topology: dosco_topology::Topology,
    interval: f64,
    dwell: f64,
) -> BenchRecord {
    // Steady state holds n/interval flows per time unit for `dwell` time
    // units; 1.5 dwell horizons give half a dwell of steady state, and
    // warm-up is measured at 1.2 dwell (past the first full turnover).
    let small = churn_run(
        churn_scenario(topology.clone(), interval, dwell / 10.0, 1.5 * dwell / 10.0),
        1.2 * dwell / 10.0,
    );
    let big = churn_run(
        churn_scenario(topology, interval, dwell, 1.5 * dwell),
        1.2 * dwell,
    );
    assert!(
        big.peak_live >= 1_000_000,
        "{name}: peak live flows {} below the million-flow target",
        big.peak_live
    );
    for (run, label) in [(&small, "100k"), (&big, "1m")] {
        assert!(
            run.flow_cap <= run.warm_caps.0 + run.warm_caps.0 / 100 + 16,
            "{name}/{label}: flow slab grew after warm-up ({} -> {})",
            run.warm_caps.0,
            run.flow_cap
        );
        assert!(
            run.event_cap <= run.warm_caps.1 + run.warm_caps.1 / 100 + 16,
            "{name}/{label}: event slab grew after warm-up ({} -> {})",
            run.warm_caps.1,
            run.event_cap
        );
    }
    let note = format!(
        "scaling probe, not an A/B (the x-factor is the cost of 10x scale; \
         linear = 0.10x): {} -> {} flows, peak {} -> {} live, {:.0}k -> {:.0}k \
         flows/sec, {:.1}M -> {:.1}M events/sec, peak queue {} -> {}, slab \
         capacity flat after warm-up (flows {} -> {}, events {} -> {})",
        small.flows,
        big.flows,
        small.peak_live,
        big.peak_live,
        small.flows as f64 / small.ms,
        big.flows as f64 / big.ms,
        small.events as f64 / small.ms / 1e3,
        big.events as f64 / big.ms / 1e3,
        small.peak_queue,
        big.peak_queue,
        big.warm_caps.0,
        big.flow_cap,
        big.warm_caps.1,
        big.event_cap,
    );
    BenchRecord::new(
        name,
        "100k concurrent flows",
        "1M concurrent flows (10x)",
        small.ms,
        big.ms,
        &note,
    )
}

/// The indexed cancellable event queue vs the seed's pattern: a
/// `BinaryHeap` where cancelled entries stay queued as tombstones and
/// are skipped at pop time. One million timestamped events, every third
/// one cancelled before the drain.
fn simcore_event_queue(note: &str) -> BenchRecord {
    use std::cmp::Reverse;
    use std::collections::{BinaryHeap, HashSet};

    let n = 1_000_000usize;
    let mut rng = rand::rngs::StdRng::seed_from_u64(41);
    let times: Vec<f64> = (0..n)
        .map(|_| {
            use rand::Rng;
            rng.gen_range(0.0..1.0e6)
        })
        .collect();

    let tombstone = time_ms(3, || {
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut cancelled: HashSet<u64> = HashSet::new();
        for (i, &t) in times.iter().enumerate() {
            // Non-negative f64 bit patterns order like the floats.
            heap.push(Reverse((t.to_bits(), i as u64)));
            if i % 3 == 0 {
                cancelled.insert(i as u64);
            }
        }
        let mut popped = 0u64;
        while let Some(Reverse((_, seq))) = heap.pop() {
            if !cancelled.contains(&seq) {
                popped += 1;
            }
        }
        popped
    });
    let indexed = time_ms(3, || {
        let mut q: dosco_simnet::EventQueue<u32> = dosco_simnet::EventQueue::new();
        let mut keys = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            let key = q.push(t, i as u32);
            if i % 3 == 0 {
                keys.push(key);
            }
        }
        for key in keys {
            q.cancel(key);
        }
        let mut popped = 0u64;
        while q.pop().is_some() {
            popped += 1;
        }
        popped
    });
    BenchRecord::new(
        "simcore/event-queue-1m-cancel-third",
        "BinaryHeap + tombstone set (seed pattern)",
        "indexed heap, O(log n) cancel (this PR)",
        tombstone,
        indexed,
        note,
    )
}

/// The generational slab vs `HashMap` for the flow table: steady-state
/// churn with 100k live entries and one million insert/lookup/remove
/// cycles — the access pattern of the simulation hot path.
fn simcore_flow_table(note: &str) -> BenchRecord {
    use std::collections::{HashMap, VecDeque};

    #[derive(Clone)]
    struct FlowLike {
        id: u64,
        node: u32,
        progress: u32,
        spawned: f64,
    }
    let flow = |id: u64| FlowLike {
        id,
        node: (id % 1000) as u32,
        progress: 0,
        spawned: id as f64,
    };
    let live = 100_000u64;
    let cycles = 1_000_000u64;

    let hashed = time_ms(3, || {
        let mut table: HashMap<u64, FlowLike> = HashMap::new();
        let mut order: VecDeque<u64> = VecDeque::new();
        let mut acc = 0u64;
        for id in 0..live + cycles {
            table.insert(id, flow(id));
            order.push_back(id);
            if order.len() > live as usize {
                let oldest = order.pop_front().expect("non-empty");
                // Touch a mid-life entry, then retire the oldest.
                let mid = table.get_mut(&(oldest + live / 2)).expect("live entry");
                mid.progress += 1;
                acc += mid.node as u64;
                let gone = table.remove(&oldest).expect("live entry");
                acc += gone.spawned as u64;
            }
        }
        acc
    });
    let slabbed = time_ms(3, || {
        let mut table: dosco_simnet::Slab<FlowLike> = dosco_simnet::Slab::new();
        let mut order: VecDeque<dosco_simnet::SlotKey> = VecDeque::new();
        let mut acc = 0u64;
        for id in 0..live + cycles {
            order.push_back(table.insert(flow(id)));
            if order.len() > live as usize {
                let oldest = order.pop_front().expect("non-empty");
                let mid_key = order[live as usize / 2 - 1];
                let mid = table.get_mut(mid_key).expect("live entry");
                mid.progress += 1;
                acc += mid.node as u64;
                let gone = table.remove(oldest).expect("live entry");
                acc += gone.spawned as u64;
            }
        }
        debug_assert!(table.iter().all(|f| f.id >= cycles));
        acc
    });
    BenchRecord::new(
        "simcore/flow-table-100k-live-1m-churn",
        "HashMap<FlowId, Flow> (seed)",
        "generational slab (this PR)",
        hashed,
        slabbed,
        note,
    )
}

/// Naive vs blocked kernels over a forward/backward-shaped GEMM chain:
/// `X·W` (forward), `D·Wᵀ` (input grad), `Xᵀ·D` (weight grad).
fn gemm_fwd_bwd(batch: usize, width: usize, note: &str) -> BenchRecord {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let x = rand_matrix(batch, width, &mut rng);
    let w = rand_matrix(width, width, &mut rng);
    let d = rand_matrix(batch, width, &mut rng);
    let reps = if batch * width * width > 1 << 24 { 5 } else { 12 };
    let naive = time_ms(reps, || {
        (x.matmul_ref(&w), d.matmul_transpose_ref(&w), x.transpose_matmul_ref(&d))
    });
    let blocked = time_ms(reps, || {
        (x.matmul(&w), d.matmul_transpose(&w), x.transpose_matmul(&d))
    });
    BenchRecord::new(
        &format!("gemm/fwd-bwd-{batch}x{width}"),
        "naive triple-loop kernels (seed)",
        "cache-blocked kernels (this PR)",
        naive,
        blocked,
        note,
    )
}

/// The scalar reference kernel vs the runtime-detected SIMD
/// micro-kernels (`DOSCO_SIMD` dispatch) on the forward/backward GEMM
/// chain. AVX2 keeps the scalar summation order (bit-identical); FMA
/// fuses multiply-add (deterministic but not bitwise), so it ships
/// opt-in only.
fn gemm_simd(batch: usize, width: usize, kernel: GemmKernel, note: &str) -> Option<BenchRecord> {
    if !kernel.is_available() {
        eprintln!("[perf_report] skipping gemm/simd {}: not available on this host", kernel.label());
        return None;
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let x = rand_matrix(batch, width, &mut rng);
    let w = rand_matrix(width, width, &mut rng);
    let d = rand_matrix(batch, width, &mut rng);
    let mut fwd = Matrix::zeros(batch, width);
    let mut igrad = Matrix::zeros(batch, width);
    let mut wgrad = Matrix::zeros(width, width);
    let reps = if batch * width * width > 1 << 24 { 5 } else { 12 };
    let mut chain = |k: GemmKernel| {
        x.matmul_into_with(&w, &mut fwd, k);
        d.matmul_transpose_into_with(&w, &mut igrad, k);
        x.transpose_matmul_into_with(&d, &mut wgrad, k);
        fwd.get(0, 0)
    };
    let scalar = time_ms(reps, || chain(GemmKernel::Scalar));
    let simd = time_ms(reps, || chain(kernel));
    Some(BenchRecord::new(
        &format!("gemm/simd-{}-{batch}x{width}", kernel.label()),
        "scalar reference kernel (DOSCO_SIMD=off)",
        &format!("{} micro-kernel (this PR)", kernel.label()),
        scalar,
        simd,
        note,
    ))
}

/// The same blocked kernels at 1 vs 4 pool threads.
fn gemm_threads(batch: usize, width: usize, note: &str) -> BenchRecord {
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let x = rand_matrix(batch, width, &mut rng);
    let w = rand_matrix(width, width, &mut rng);
    let d = rand_matrix(batch, width, &mut rng);
    let run = || (x.matmul(&w), d.matmul_transpose(&w), x.transpose_matmul(&d));
    let t1 = time_ms(8, || par::with_threads(1, run));
    let t4 = time_ms(8, || par::with_threads(4, run));
    BenchRecord::new(
        &format!("gemm/threads-{batch}x{width}"),
        "blocked, 1 thread",
        "blocked, 4 threads",
        t1,
        t4,
        note,
    )
}

/// Full forward+backward on the paper architecture at 1 vs 4 threads.
fn mlp_threads(batch: usize, note: &str) -> BenchRecord {
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let net = Mlp::paper_arch(16, 4, &mut rng);
    let x = rand_matrix(batch, 16, &mut rng);
    let run = || {
        let cache = net.forward_cached(&x);
        net.backward(&cache, &cache.output)
    };
    let t1 = time_ms(8, || par::with_threads(1, run));
    let t4 = time_ms(8, || par::with_threads(4, run));
    BenchRecord::new(
        &format!("mlp/fwd-bwd-{batch}x(16-256-256-4)"),
        "1 thread",
        "4 threads",
        t1,
        t4,
        note,
    )
}

/// K-FAC factor statistics + Cholesky inversions at 1 vs 4 threads.
fn kfac_threads(note: &str) -> BenchRecord {
    let mut rng = rand::rngs::StdRng::seed_from_u64(19);
    let net = Mlp::new(&[16, 512, 512, 4], Activation::Tanh, &mut rng);
    let x = rand_matrix(256, 16, &mut rng);
    let cache = net.forward_cached(&x);
    let grads = net.backward(&cache, &cache.output);
    let fg: Vec<&Matrix> = grads.layers.iter().map(|l| &l.preact_grads).collect();
    // Fresh K-FAC each run: the first step computes factor stats AND the
    // damped Cholesky inversions (the parallelized per-layer stages).
    let run = || {
        let mut net = net.clone();
        let mut kfac = Kfac::new(&net, KfacConfig::default());
        kfac.update_stats(&cache, &fg);
        kfac.step(&mut net, &grads).expect("spd factors");
        net.num_params()
    };
    let t1 = time_ms(5, || par::with_threads(1, run));
    let t4 = time_ms(5, || par::with_threads(4, run));
    BenchRecord::new(
        "kfac/stats+inversions-512-wide",
        "1 thread",
        "4 threads",
        t1,
        t4,
        note,
    )
}

/// Rollout collection (8 envs × 16 steps on the base scenario) at 1 vs 4
/// threads — the env steps fan out, sampling stays serial.
fn rollout_threads(note: &str) -> BenchRecord {
    let scenario = base_scenario(2, dosco_traffic::ArrivalPattern::paper_poisson(), 200.0);
    let degree = scenario.topology.network_degree();
    let (obs_dim, num_actions) = (4 * degree + 4, degree + 1);
    let mut rng = rand::rngs::StdRng::seed_from_u64(23);
    let actor = Mlp::paper_arch(obs_dim, num_actions, &mut rng);
    let critic = Mlp::paper_arch(obs_dim, 1, &mut rng);
    let run = || {
        let mut envs: Vec<Box<dyn Env>> = (0..8)
            .map(|i| {
                Box::new(CoordEnv::new(
                    scenario.clone(),
                    RewardConfig::default(),
                    100 + i,
                    None,
                )) as Box<dyn Env>
            })
            .collect();
        let mut col = RolloutCollector::new(&mut envs);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        col.collect(&mut envs, &actor, &critic, 16, 0.99, 0.95, &mut rng)
            .reward_sum
    };
    let t1 = time_ms(5, || par::with_threads(1, run));
    let t4 = time_ms(5, || par::with_threads(4, run));
    BenchRecord::new("rollout/8-envs-16-steps", "1 thread", "4 threads", t1, t4, note)
}

/// Multi-seed evaluation fan-out (`Algo::evaluate`, GCASP over 8 seeds)
/// at 1 vs 4 threads.
fn eval_threads(note: &str) -> BenchRecord {
    let scenario = base_scenario(2, dosco_traffic::ArrivalPattern::paper_poisson(), 500.0);
    let seeds: Vec<u64> = (0..8).collect();
    let t1 = time_ms(3, || par::with_threads(1, || Algo::Gcasp.evaluate(&scenario, &seeds)));
    let t4 = time_ms(3, || par::with_threads(4, || Algo::Gcasp.evaluate(&scenario, &seeds)));
    BenchRecord::new("eval/8-seed-fan-out", "1 thread", "4 threads", t1, t4, note)
}

/// Multi-seed GCASP evaluation with tracing off vs a live
/// [`dosco_obs::JsonlRecorder`] capturing every episode event — the cost
/// of full trace capture on the simulation hot path.
fn obs_trace_overhead(note: &str) -> BenchRecord {
    let scenario = base_scenario(2, dosco_traffic::ArrivalPattern::paper_poisson(), 500.0);
    let seeds: Vec<u64> = (0..4).collect();
    let untraced = time_ms(3, || Algo::Gcasp.evaluate(&scenario, &seeds));
    let path = std::env::temp_dir().join("dosco_perf_report_trace.jsonl");
    dosco_obs::install_recorder(std::sync::Arc::new(dosco_obs::JsonlRecorder::new(
        path.clone(),
    )));
    let traced = time_ms(3, || Algo::Gcasp.evaluate(&scenario, &seeds));
    dosco_obs::uninstall_recorder();
    let _ = std::fs::remove_file(&path);
    BenchRecord::new(
        "obs/trace-4-eval-episodes",
        "tracing disabled (default)",
        "JsonlRecorder capturing (DOSCO_TRACE)",
        untraced,
        traced,
        note,
    )
}

/// Serial `A2c::train` vs the actor–learner runtime over the same A2C
/// workload on the base scenario (4 envs × 8-step batches). Sync mode
/// measures pure transport overhead (its result is bit-identical to
/// serial); async mode is where overlap can pay off on multi-core hosts.
fn runtime_throughput(mode: &str, note: &str) -> BenchRecord {
    use dosco_rl::a2c::{A2c, A2cConfig};
    let scenario = base_scenario(1, dosco_traffic::ArrivalPattern::paper_poisson(), 200.0);
    let degree = scenario.topology.network_degree();
    let (obs_dim, num_actions) = (4 * degree + 4, degree + 1);
    let cfg = A2cConfig {
        n_steps: 8,
        hidden: [64, 64],
        ..A2cConfig::default()
    };
    let total_steps = 640;
    let make_envs = || -> Vec<Box<dyn Env>> {
        (0..4)
            .map(|i| {
                Box::new(CoordEnv::new(
                    scenario.clone(),
                    RewardConfig::default(),
                    300 + i,
                    None,
                )) as Box<dyn Env>
            })
            .collect()
    };
    let serial = time_ms(5, || {
        let mut agent = A2c::new(obs_dim, num_actions, cfg, 1);
        let mut envs = make_envs();
        agent.train(&mut envs, total_steps).total_steps
    });
    let rt_cfg = match mode {
        "sync" => dosco_runtime::RuntimeConfig::sync(),
        _ => dosco_runtime::RuntimeConfig::async_with_actors(2),
    };
    let runtime = time_ms(5, || {
        let mut agent = A2c::new(obs_dim, num_actions, cfg, 1);
        let mut envs = make_envs();
        dosco_runtime::train(&mut agent, &mut envs, total_steps, &rt_cfg)
            .stats
            .total_steps
    });
    BenchRecord::new(
        &format!("runtime/a2c-640-steps-{mode}"),
        "serial A2c::train",
        &format!("dosco_runtime {mode} mode"),
        serial,
        runtime,
        note,
    )
}

/// Per-decision `evaluate` loop vs the sharded batched serving fabric
/// over the same 8-episode workload. Decisions/sec and the observed
/// batch-size range land in the record note — the fabric's win comes
/// from amortizing one matrix forward across every queued decision.
fn serve_throughput(shards: usize, host: usize) -> BenchRecord {
    use dosco_core::policy::PolicyMetadata;
    use dosco_core::CoordinationPolicy;
    use dosco_serve::{serve, ServeConfig};

    let scenario = base_scenario(2, dosco_traffic::ArrivalPattern::paper_poisson(), 400.0);
    let degree = scenario.topology.network_degree();
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let actor = Mlp::paper_arch(4 * degree + 4, degree + 1, &mut rng);
    let policy = CoordinationPolicy::new(actor, degree, PolicyMetadata::default());
    let seeds: Vec<u64> = (0..8).collect();

    let per_decision = time_ms(5, || {
        seeds
            .iter()
            .map(|&s| dosco_core::eval::evaluate(&policy, &scenario, s).decisions)
            .sum::<u64>()
    });
    let cfg = ServeConfig::new(shards);
    let mut report = None;
    let batched = time_ms(5, || {
        let out = serve(&policy, None, &scenario, &seeds, &cfg);
        let arrived = out.report.decisions;
        report = Some(out.report);
        arrived
    });
    let report = report.expect("serve ran");
    let decisions = report.decisions as f64;
    let note = format!(
        "{:.0} vs {:.0} decisions/sec; max batch {} rows across {} shard(s){}",
        decisions / (per_decision / 1e3),
        decisions / (batched / 1e3),
        report.max_batch_rows,
        shards,
        if host < 2 {
            "; single-core host: shard threads timeshare with the frontend, \
             so batching is the only lever here"
        } else {
            ""
        }
    );
    BenchRecord::new(
        &format!("serve/8-episodes-{shards}-shards"),
        "per-decision DistributedAgents loop",
        "dosco_serve batched fabric",
        per_decision,
        batched,
        &note,
    )
}

/// Fp32 vs int8 serving on the same workload: the quantized forward
/// path trades bit-identity for integer arithmetic under the
/// decision-equivalence contract. The note reports each run's own
/// decisions/sec (trajectories may diverge where argmax flips) plus the
/// measured per-decision argmax agreement on observations recorded from
/// a real episode — the same quantity the pinned contract test gates.
fn serve_quantized(host: usize) -> BenchRecord {
    use dosco_core::policy::PolicyMetadata;
    use dosco_core::CoordinationPolicy;
    use dosco_nn::{Categorical, QuantizedMlp};
    use dosco_serve::{serve, ServeConfig};

    let scenario = base_scenario(2, dosco_traffic::ArrivalPattern::paper_poisson(), 400.0);
    let degree = scenario.topology.network_degree();
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let actor = Mlp::paper_arch(4 * degree + 4, degree + 1, &mut rng);
    let policy = CoordinationPolicy::new(actor, degree, PolicyMetadata::default());
    let seeds: Vec<u64> = (0..8).collect();

    let mut fp32_decisions = 0u64;
    let fp32_cfg = ServeConfig::new(2);
    let fp32_ms = time_ms(5, || {
        let out = serve(&policy, None, &scenario, &seeds, &fp32_cfg);
        fp32_decisions = out.report.decisions;
        fp32_decisions
    });
    let mut int8_decisions = 0u64;
    let int8_cfg = ServeConfig::new(2).with_quantized();
    let int8_ms = time_ms(5, || {
        let out = serve(&policy, None, &scenario, &seeds, &int8_cfg);
        int8_decisions = out.report.decisions;
        int8_decisions
    });

    // Measured argmax agreement on observations recorded from a real
    // greedy episode — the decision-equivalence number, not a guess.
    struct Rec {
        policy: CoordinationPolicy,
        adapter: dosco_core::observe::ObservationAdapter,
        obs: Vec<Vec<f32>>,
    }
    impl dosco_simnet::Coordinator for Rec {
        fn decide(
            &mut self,
            sim: &dosco_simnet::Simulation,
            dp: &dosco_simnet::DecisionPoint,
        ) -> dosco_simnet::Action {
            let obs = self.adapter.observe(sim, dp);
            let action = dosco_simnet::Action::from_index(self.policy.act(&obs));
            self.obs.push(obs);
            action
        }
    }
    let mut rec = Rec {
        adapter: policy.adapter(),
        policy: policy.clone(),
        obs: Vec::new(),
    };
    let mut sim = dosco_simnet::Simulation::new(scenario, seeds[0]);
    sim.run(&mut rec);
    let rows: Vec<&[f32]> = rec.obs.iter().map(Vec::as_slice).collect();
    let batch = Matrix::from_rows(&rows);
    let quant = QuantizedMlp::from_mlp(policy.actor());
    let fp32_acts = Categorical::new(&policy.actor().forward(&batch)).argmax();
    let int8_acts = Categorical::new(&quant.forward(&batch)).argmax();
    let agree = fp32_acts.iter().zip(&int8_acts).filter(|(a, b)| a == b).count();

    let note = format!(
        "{:.0} vs {:.0} decisions/sec (each run's own trajectory); argmax \
         agreement {agree}/{} = {:.4} on one recorded episode; int8 weights \
         are {}x smaller{}",
        fp32_decisions as f64 / (fp32_ms / 1e3),
        int8_decisions as f64 / (int8_ms / 1e3),
        fp32_acts.len(),
        agree as f64 / fp32_acts.len().max(1) as f64,
        policy.actor().num_params() * 4 / quant.memory_bytes().max(1),
        if host < 2 {
            "; single-core host: shard threads timeshare with the frontend"
        } else {
            ""
        }
    );
    BenchRecord::new(
        "serve/8-episodes-quantized-int8",
        "fp32 batched fabric (2 shards)",
        "int8 quantized fabric (2 shards)",
        fp32_ms,
        int8_ms,
        &note,
    )
}

/// In-process metrics export vs a full HTTP `GET /metrics` round trip
/// against a live `CtlServer` — the price of putting the registry behind
/// real TCP (connect + request + serialize + frame + read).
fn ctl_http_metrics(note: &str) -> BenchRecord {
    use dosco_ctl::{CtlConfig, CtlServer, CtlState};
    use std::io::{Read, Write};

    let server =
        CtlServer::start(&CtlConfig::default(), std::sync::Arc::new(CtlState::new()))
            .expect("start ctl server");
    let addr = server.addr();
    let round_trip = || {
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        write!(stream, "GET /metrics HTTP/1.1\r\nHost: l\r\nConnection: close\r\n\r\n")
            .expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        response.len()
    };
    // 32 requests per timed rep so connection setup jitter averages out.
    let in_process = time_ms(8, || (0..32).map(|_| dosco_obs::report_json().len()).sum::<usize>());
    let over_http = time_ms(8, || (0..32).map(|_| round_trip()).sum::<usize>());
    server.shutdown();
    BenchRecord::new(
        "ctl/http-metrics-endpoint",
        "in-process report_json()",
        "HTTP GET /metrics round trip",
        in_process,
        over_http,
        note,
    )
}

/// Bare checksummed policy save/load vs the registry's
/// publish/load — the cost of the manifest write, the read-back
/// verification, and the manifest cross-check on load.
fn ctl_registry_roundtrip(note: &str) -> BenchRecord {
    use dosco_core::policy::PolicyMetadata;
    use dosco_core::CoordinationPolicy;
    use dosco_ctl::PolicyRegistry;

    let mut rng = rand::rngs::StdRng::seed_from_u64(37);
    let actor = Mlp::paper_arch(16, 4, &mut rng);
    let policy = CoordinationPolicy::new(actor, 3, PolicyMetadata::default());

    let dir = std::env::temp_dir().join(format!("dosco-perf-ctl-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let bare = dir.join("bare.policy");
    let direct = time_ms(8, || {
        policy.save(&bare).expect("save");
        CoordinationPolicy::load(&bare).expect("load").actor().num_params()
    });
    let mut registry = PolicyRegistry::open(dir.join("registry")).expect("open registry");
    let registered = time_ms(8, || {
        let meta = registry.publish(&policy).expect("publish");
        registry.load(meta.version).expect("load").actor().num_params()
    });
    let _ = std::fs::remove_dir_all(&dir);
    BenchRecord::new(
        "ctl/registry-save-load",
        "bare CoordinationPolicy save+load",
        "PolicyRegistry publish+load",
        direct,
        registered,
        note,
    )
}

/// Raw transport hand-off: N experience-sized payloads through an
/// in-process bounded channel vs a framed, checksummed loopback-TCP
/// socket channel. The socket pays encode + frame + syscall + decode per
/// batch; this record prices exactly that tax.
fn net_transport_batches(note: &str) -> BenchRecord {
    use dosco_net::{BoxRx, BoxTx, InProcess, SocketLoopback, Transport};
    const BATCHES: usize = 512;
    let run = |t: &dyn Fn() -> (BoxTx<Vec<f32>>, BoxRx<Vec<f32>>)| {
        let (tx, rx) = t();
        let producer = std::thread::spawn(move || {
            for _ in 0..BATCHES {
                tx.send(payload_clone()).expect("bench send");
            }
        });
        let mut got = 0usize;
        while rx.recv().is_ok() {
            got += 1;
        }
        producer.join().expect("bench producer");
        assert_eq!(got, BATCHES);
        got
    };
    fn payload_clone() -> Vec<f32> {
        (0..4_096).map(|i| i as f32 * 0.5).collect()
    }
    let in_proc = time_ms(5, || {
        run(&|| Transport::<Vec<f32>>::channel(&InProcess, 8))
    });
    let socket = time_ms(5, || {
        run(&|| Transport::<Vec<f32>>::channel(&SocketLoopback, 8))
    });
    BenchRecord::new(
        "net/transport-512-batches",
        "InProcess bounded channel",
        "SocketLoopback framed TCP",
        in_proc,
        socket,
        note,
    )
}

/// A full sync training run with every channel over loopback TCP vs the
/// in-process transport. The results are bit-identical (pinned by the
/// socket-equivalence tests); this record prices what that identity
/// costs end to end.
fn net_sync_training(note: &str) -> BenchRecord {
    use dosco_net::SocketLoopback;
    use dosco_rl::a2c::{A2c, A2cConfig};
    let scenario = base_scenario(1, dosco_traffic::ArrivalPattern::paper_poisson(), 150.0);
    let degree = scenario.topology.network_degree();
    let (obs_dim, num_actions) = (4 * degree + 4, degree + 1);
    let cfg = A2cConfig {
        n_steps: 8,
        hidden: [32, 32],
        ..A2cConfig::default()
    };
    let total_steps = 320;
    let make_envs = || -> Vec<Box<dyn Env>> {
        (0..2)
            .map(|i| {
                Box::new(CoordEnv::new(
                    scenario.clone(),
                    RewardConfig::default(),
                    700 + i,
                    None,
                )) as Box<dyn Env>
            })
            .collect()
    };
    let rt_cfg = dosco_runtime::RuntimeConfig::sync();
    let in_proc = time_ms(5, || {
        let mut agent = A2c::new(obs_dim, num_actions, cfg, 1);
        dosco_runtime::train(&mut agent, &mut make_envs(), total_steps, &rt_cfg)
            .stats
            .total_steps
    });
    let socket = time_ms(5, || {
        let mut agent = A2c::new(obs_dim, num_actions, cfg, 1);
        dosco_runtime::train_with_transport(
            &mut agent,
            &mut make_envs(),
            total_steps,
            &rt_cfg,
            &SocketLoopback,
        )
        .stats
        .total_steps
    });
    BenchRecord::new(
        "net/sync-train-320-steps-socket",
        "in-process transport",
        "loopback-TCP transport (bit-identical result)",
        in_proc,
        socket,
        note,
    )
}

/// Simulator throughput with substrate churn on vs off: the same
/// 10x10-grid scenario (10k steady-state concurrent flows) driven by SP,
/// once on the static substrate and once under a stochastic per-link
/// failure process. The candidate pays event application, flow killing,
/// and a shortest-path recompute at every routing-affecting epoch; the
/// note carries the measured events/sec on both sides plus the applied
/// churn-event and recompute counts.
fn chaos_churn_throughput(note: &str) -> BenchRecord {
    let topo = dosco_topology::generators::grid(10, 10, 1.0, 1.0);
    let cfg = churn_scenario(topo, 10.0, 1_000.0, 1_500.0);
    let timeline = dosco_chaos::ChurnSchedule::none()
        .with_stochastic(
            dosco_chaos::StochasticChurn::default().with_link_failures(500.0, 50.0),
        )
        .compile(&cfg.topology, cfg.horizon, 3)
        .expect("valid schedule");

    let run = |timeline: Option<&dosco_simnet::ChurnTimeline>| {
        let mut events = 0u64;
        let mut applied = 0u64;
        let mut recomputes = 0u64;
        let ms = time_ms(2, || {
            let mut sim = match timeline {
                Some(t) => dosco_simnet::Simulation::with_churn(cfg.clone(), 7, t.clone()),
                None => dosco_simnet::Simulation::new(cfg.clone(), 7),
            };
            let mut watch = ChurnWatch::new(0.0);
            sim.run(&mut watch);
            events = watch.events_seen;
            if let Some(stats) = sim.churn_stats() {
                applied = stats.events_applied;
                recomputes = stats.sp_recomputes;
            }
            sim.metrics().arrived
        });
        (ms, events, applied, recomputes)
    };
    let (off_ms, off_events, _, _) = run(None);
    let (on_ms, on_events, applied, recomputes) = run(Some(&timeline));
    BenchRecord::new(
        "chaos/churn-on-vs-off-grid-10x10",
        "static substrate",
        "stochastic link failures (mtbf 500, mttr 50)",
        off_ms,
        on_ms,
        &format!(
            "{note}; off: {:.0} events/sec, on: {:.0} events/sec across \
             {applied} applied churn events and {recomputes} SP recomputes",
            off_events as f64 / (off_ms / 1e3),
            on_events as f64 / (on_ms / 1e3),
        ),
    )
}

/// The cost of one churn epoch's path refresh: a fresh all-pairs
/// computation on the pristine topology vs `compute_masked` over the
/// up/down masks and effective delays — the exact call the simulator
/// issues when a routing-affecting churn event bumps the topology
/// version. Capacity-only degradations skip this entirely.
fn chaos_sp_recompute(note: &str) -> BenchRecord {
    use dosco_topology::paths::ShortestPaths;
    let topo = dosco_topology::generators::grid(10, 10, 1.0, 1.0);
    let mut node_up = vec![true; topo.num_nodes()];
    let mut link_up = vec![true; topo.num_links()];
    let delays: Vec<f64> = topo.link_ids().map(|l| topo.link(l).delay).collect();
    node_up[37] = false;
    link_up[5] = false;
    link_up[91] = false;
    let fresh = time_ms(20, || ShortestPaths::compute(&topo));
    let masked = time_ms(20, || {
        ShortestPaths::compute_masked(&topo, &node_up, &link_up, &delays)
    });
    BenchRecord::new(
        "chaos/sp-recompute-per-epoch-grid-10x10",
        "fresh all-pairs compute",
        "masked recompute at a churn epoch (1 node + 2 links down)",
        fresh,
        masked,
        note,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_PR10.json".to_string());
    // Arm span timers so the embedded obs snapshot covers the whole run.
    dosco_obs::set_spans_enabled(true);
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let thread_note = if host >= 4 {
        "threads 1 vs 4 on the shared worker pool".to_string()
    } else {
        format!(
            "host has {host} core(s): 4 pool threads timeshare, so near-1x is \
             expected here; the kernel-level naive-vs-blocked records carry the \
             single-core speedup"
        )
    };

    eprintln!("[perf_report] host parallelism: {host}");
    let mut records = Vec::new();

    let single_core = if host < 2 {
        "; single-core host: all numbers are serial wall clock"
    } else {
        ""
    };
    eprintln!("[perf_report] simcore event queue microbench...");
    records.push(simcore_event_queue(&format!(
        "1M pushes, 333k cancels, full drain; honest result: the plain \
         tombstone heap wins raw microbench throughput at this cancel \
         ratio (cancelled entries ride through as cheap skipped pops) \
         while the indexed heap pays position bookkeeping for O(log n) \
         in-place removal — what that buys is a queue whose resident \
         size equals the live-event count (exact peak accounting, no \
         tombstone accumulation on long episodes); the end-to-end cost \
         is in the 1m-flows records{single_core}"
    )));
    eprintln!("[perf_report] simcore flow table microbench...");
    records.push(simcore_flow_table(&format!(
        "insert + mid-life lookup + remove per cycle; the slab replaces \
         hashing with a bounds-checked index and a generation \
         compare{single_core}"
    )));
    eprintln!("[perf_report] simcore million-flow churn (abilene)...");
    records.push(simcore_million_flows(
        "simcore/1m-flows-abilene-11n",
        dosco_topology::zoo::abilene(),
        0.5,
        50_000.0,
    ));
    eprintln!("[perf_report] simcore million-flow churn (grid 25x40)...");
    records.push(simcore_million_flows(
        "simcore/1m-flows-grid-25x40",
        dosco_topology::generators::grid(25, 40, 1.0, 1.0),
        10.0,
        11_000.0,
    ));

    eprintln!("[perf_report] gemm naive vs blocked (paper scale 64x256)...");
    records.push(gemm_fwd_bwd(64, 256, "paper scale: batch 64, 256-wide layers"));
    eprintln!("[perf_report] gemm naive vs blocked (256x512)...");
    records.push(gemm_fwd_bwd(256, 512, "large scale: batch 256, 512-wide layers"));
    let simd_note = "same blocked tiling, single thread; AVX2 preserves the \
                     scalar summation order so DOSCO_SIMD=off/auto stay \
                     bit-identical; FMA is the opt-in non-bitwise mode";
    for &(b, wd) in &[(64usize, 256usize), (256, 512)] {
        eprintln!("[perf_report] gemm scalar vs avx2 ({b}x{wd})...");
        records.extend(gemm_simd(b, wd, GemmKernel::Avx2, simd_note));
    }
    eprintln!("[perf_report] gemm scalar vs fma (256x512)...");
    records.extend(gemm_simd(256, 512, GemmKernel::Fma, simd_note));
    eprintln!("[perf_report] gemm thread scaling...");
    records.push(gemm_threads(256, 512, &thread_note));
    eprintln!("[perf_report] mlp forward+backward thread scaling...");
    records.push(mlp_threads(256, &thread_note));
    eprintln!("[perf_report] kfac thread scaling...");
    records.push(kfac_threads(&thread_note));
    eprintln!("[perf_report] rollout thread scaling...");
    records.push(rollout_threads(&thread_note));
    eprintln!("[perf_report] eval fan-out thread scaling...");
    records.push(eval_threads(&thread_note));
    let runtime_note = if host >= 2 {
        "actor-learner runtime vs serial loop; sync is lockstep (overhead \
         only, bit-identical result), async overlaps collection and updates"
            .to_string()
    } else {
        format!(
            "host has {host} core(s): actor and learner threads timeshare, so \
             the runtime cannot beat the serial loop here; the record measures \
             transport overhead, not the multi-core speedup"
        )
    };
    eprintln!("[perf_report] runtime throughput (sync)...");
    records.push(runtime_throughput("sync", &runtime_note));
    eprintln!("[perf_report] runtime throughput (async)...");
    records.push(runtime_throughput("async", &runtime_note));
    eprintln!("[perf_report] serve throughput (1 shard)...");
    records.push(serve_throughput(1, host));
    eprintln!("[perf_report] serve throughput (2 shards)...");
    records.push(serve_throughput(2, host));
    eprintln!("[perf_report] serve fp32 vs int8 quantized...");
    records.push(serve_quantized(host));
    let net_note = format!(
        "loopback TCP on a {host}-core host: the socket path costs codec + \
         frame + checksum + syscalls per batch and cannot win on wall clock; \
         the record prices the multi-process capability, not a speedup"
    );
    eprintln!("[perf_report] net transport batch hand-off...");
    records.push(net_transport_batches(&net_note));
    eprintln!("[perf_report] net sync training over socket...");
    records.push(net_sync_training(&net_note));
    eprintln!("[perf_report] obs trace capture overhead...");
    records.push(obs_trace_overhead(
        "cost of a live JSONL trace on the simulation hot path; the \
         disabled path is a single atomic load per decision",
    ));
    eprintln!("[perf_report] ctl http metrics endpoint...");
    records.push(ctl_http_metrics(
        "32 exports per rep; the gap is TCP connect + HTTP framing, \
         not serialization — both sides serialize the same registry",
    ));
    eprintln!("[perf_report] ctl registry save/load...");
    records.push(ctl_registry_roundtrip(
        "registry adds a manifest write, a read-back verification on \
         publish, and a checksum cross-check on load",
    ));
    eprintln!("[perf_report] chaos churn on vs off...");
    records.push(chaos_churn_throughput(&format!(
        "10k concurrent flows under SP on a {host}-core host, serial wall \
         clock; churn adds per-event victim scans and epoch recomputes, \
         so <1x is the honest expectation — the record prices fault \
         injection, not a speedup"
    )));
    eprintln!("[perf_report] chaos SP recompute per epoch...");
    records.push(chaos_sp_recompute(&format!(
        "single-threaded Floyd-Warshall on a {host}-core host; both sides \
         are O(n^3) on 100 nodes — the point is the absolute per-epoch \
         cost, paid only when a churn event affects routing (the \
         topology-version cache skips capacity-only degradations)"
    )));

    let report = BenchReport {
        generated_by: "dosco-bench perf_report".to_string(),
        host_threads: host,
        pool_threads: 4,
        records,
        obs: Some(dosco_obs::report()),
    };
    for r in &report.records {
        println!(
            "{:<38} {:>9.2} ms -> {:>9.2} ms   {:>5.2}x",
            r.name, r.baseline_ms, r.candidate_ms, r.speedup
        );
    }
    write_json_report(std::path::Path::new(&out), &report).expect("write report");
    eprintln!("[perf_report] wrote {out}");
}
