//! Regenerates **Fig. 9**: scalability on large real-world topologies.
//!
//! - `--part success` (Fig. 9a): percentage of successful flows on
//!   Abilene, BT Europe, China Telecom, and Interroute (Poisson traffic at
//!   v1/v2, egress v8).
//! - `--part latency` (Fig. 9b): per-decision inference time of the
//!   distributed agent (invariant in network size, ~O(Δ_G)) versus the
//!   centralized agent (scales with the network size).
//!
//! ```text
//! cargo run -p dosco-bench --release --bin fig9 -- --part success
//! cargo run -p dosco-bench --release --bin fig9 -- --part latency
//! ```

use dosco_bench::report::{flag_value, print_series, SeriesPoint};
use dosco_bench::runner::{train_central_drl, train_dist_drl_cached, Algo, ExpBudget};
use dosco_bench::scenarios::topology_scenario;
use dosco_core::ObservationAdapter;
use dosco_topology::zoo;
use std::time::Instant;

fn part_success(budget: &ExpBudget) {
    let mut points = Vec::new();
    for topo in zoo::all() {
        let name = topo.name().to_string();
        let scenario = topology_scenario(topo, budget.horizon);
        let key = format!("fig9-{}", name.replace(' ', "_"));
        let dist = train_dist_drl_cached(&key, &scenario, budget);
        let central = train_central_drl(&scenario, budget);
        for algo in [
            Algo::DistDrl(dist),
            Algo::CentralDrl(central),
            Algo::Gcasp,
            Algo::Sp,
        ] {
            let stats = algo.evaluate(&scenario, &budget.eval_seeds);
            eprintln!(
                "[fig9a] {name:<14} {:<10} {:.3} ± {:.3}",
                algo.name(),
                stats.mean_success,
                stats.std_success
            );
            points.push(SeriesPoint {
                algo: algo.name(),
                x: name.clone(),
                stats,
            });
        }
    }
    print_series("Fig 9a", "successful flows on large topologies", &points, false);
}

/// Measures per-decision wall-clock times by timing repeated inference
/// calls on representative observations.
fn part_latency(budget: &ExpBudget) {
    println!("\n== Fig 9b — per-decision inference time (ms, log scale in the paper) ==");
    println!(
        "{:<14} {:>8} {:>6} {:>14} {:>14}",
        "network", "nodes", "Δ_G", "DistDRL (ms)", "CentralDRL (ms)"
    );
    println!("csv-header: figure,network,nodes,degree,dist_ms,central_ms");
    for topo in zoo::all() {
        let name = topo.name().to_string();
        let nodes = topo.num_nodes();
        let degree = topo.network_degree();
        let scenario = topology_scenario(topo, budget.horizon);
        let key = format!("fig9-{}", name.replace(' ', "_"));
        let dist = train_dist_drl_cached(&key, &scenario, budget);
        let central = train_central_drl(&scenario, budget);

        // Distributed decision: one local observation -> one forward pass.
        let adapter = ObservationAdapter::new(degree);
        let obs = vec![0.1f32; adapter.obs_dim()];
        let reps = 2_000u32;
        let t = Instant::now();
        let mut sink = 0usize;
        for _ in 0..reps {
            sink = sink.wrapping_add(dist.act(&obs));
        }
        let dist_ms = t.elapsed().as_secs_f64() * 1000.0 / f64::from(reps);

        // Centralized decision: the rule update over the global snapshot
        // (the cost every flow pays when the central agent decides per
        // flow; scales with the network size).
        let snapshot = vec![0.5f32; nodes];
        let t = Instant::now();
        for _ in 0..reps {
            sink = sink.wrapping_add(central.rules_for(&snapshot).len());
        }
        let central_ms = t.elapsed().as_secs_f64() * 1000.0 / f64::from(reps);
        std::hint::black_box(sink);

        println!(
            "{name:<14} {nodes:>8} {degree:>6} {dist_ms:>14.4} {central_ms:>14.4}"
        );
        println!("csv: fig9b,{name},{nodes},{degree},{dist_ms:.5},{central_ms:.5}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let part = flag_value(&args, "--part").unwrap_or_else(|| "success".into());
    let budget = ExpBudget::from_env();
    match part.as_str() {
        "success" => part_success(&budget),
        "latency" => part_latency(&budget),
        "all" => {
            part_success(&budget);
            part_latency(&budget);
        }
        other => panic!("unknown part {other:?}; use success|latency|all"),
    }
}
