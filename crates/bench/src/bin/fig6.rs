//! Regenerates **Fig. 6**: percentage of successful flows over an
//! increasing number of ingress nodes (1–5) for the four traffic patterns
//! (a: fixed, b: Poisson, c: MMPP, d: real-world traces).
//!
//! ```text
//! cargo run -p dosco-bench --release --bin fig6 -- --pattern poisson
//! cargo run -p dosco-bench --release --bin fig6 -- --pattern all
//! ```
//!
//! By default the DRL policies are trained once per pattern (on the
//! 2-ingress scenario) and evaluated across all ingress counts — the
//! generalization the paper itself demonstrates in Fig. 8b. Pass
//! `--retrain` to retrain per ingress count as in the paper's full-scale
//! setup (5× the training time). Budget overrides: DOSCO_TRAIN_STEPS,
//! DOSCO_SEEDS, DOSCO_EVAL_SEEDS, DOSCO_HORIZON (see EXPERIMENTS.md).

use dosco_bench::report::{flag_value, print_series, SeriesPoint};
use dosco_bench::runner::{
    train_central_drl, train_dist_drl_cached, Algo, ExpBudget,
};
use dosco_bench::scenarios::{base_scenario, pattern_by_name};

fn run_pattern(pattern_name: &str, budget: &ExpBudget, retrain: bool) -> Vec<SeriesPoint> {
    let pattern = pattern_by_name(pattern_name);
    let mut points = Vec::new();

    // Train on the 2-ingress variant unless retraining per load level.
    let base_train = base_scenario(2, pattern.clone(), budget.horizon);
    let shared_policy = if retrain {
        None
    } else {
        Some(train_dist_drl_cached(
            &format!("fig6-{pattern_name}-i2"),
            &base_train,
            budget,
        ))
    };
    let central = train_central_drl(&base_train, budget);

    for ingress in 1..=5usize {
        let scenario = base_scenario(ingress, pattern.clone(), budget.horizon);
        let dist = match &shared_policy {
            Some(p) => p.clone(),
            None => train_dist_drl_cached(
                &format!("fig6-{pattern_name}-i{ingress}"),
                &scenario,
                budget,
            ),
        };
        for algo in [
            Algo::DistDrl(dist),
            Algo::CentralDrl(central.clone()),
            Algo::Gcasp,
            Algo::Sp,
        ] {
            let stats = algo.evaluate(&scenario, &budget.eval_seeds);
            eprintln!(
                "[fig6-{pattern_name}] ingress={ingress} {:<10} {:.3} ± {:.3}",
                algo.name(),
                stats.mean_success,
                stats.std_success
            );
            points.push(SeriesPoint {
                algo: algo.name(),
                x: ingress.to_string(),
                stats,
            });
        }
    }
    points
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let pattern = flag_value(&args, "--pattern").unwrap_or_else(|| "poisson".into());
    let retrain = args.iter().any(|a| a == "--retrain");
    let budget = ExpBudget::from_env();
    let subfig = |p: &str| match p {
        "fixed" => "Fig 6a",
        "poisson" => "Fig 6b",
        "mmpp" => "Fig 6c",
        "trace" => "Fig 6d",
        _ => "Fig 6",
    };
    let patterns: Vec<&str> = if pattern == "all" {
        vec!["fixed", "poisson", "mmpp", "trace"]
    } else {
        vec![pattern.as_str()]
    };
    for p in patterns {
        let points = run_pattern(p, &budget, retrain);
        print_series(
            subfig(p),
            &format!("successful flows vs #ingress ({p} arrival)"),
            &points,
            false,
        );
    }
}
