//! Flagship single-draw DRL run: trains the distributed DRL on the
//! *canonical* capacity draw (narrow distribution, `fixed_capacity_
//! training`) and reports both in-distribution performance (the regime
//! the training budget can reach) and transfer to re-drawn capacities
//! (the figure protocol). Quantifies how much of the Fig. 6 gap is
//! training budget vs. distribution width.

use dosco_bench::report::flag_value;
use dosco_bench::runner::{scenario_with_capacity_seed, Algo, ExpBudget};
use dosco_bench::scenarios::{base_scenario, pattern_by_name};
use dosco_core::eval::evaluate;
use dosco_core::train::train_distributed;
use dosco_simnet::{Metrics, Simulation};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let budget = ExpBudget::from_env();
    let pattern = pattern_by_name(
        flag_value(&args, "--pattern").as_deref().unwrap_or("poisson"),
    );
    let scenario = base_scenario(2, pattern, budget.horizon);

    let mut cfg = budget.train_config();
    cfg.fixed_capacity_training = true;
    eprintln!(
        "[flagship] training on the canonical draw: {} steps x {} seeds",
        cfg.total_steps,
        cfg.seeds.len()
    );
    let t = std::time::Instant::now();
    let trained = train_distributed(&scenario, &cfg);
    eprintln!(
        "[flagship] trained in {:.0}s, best seed {} (score {:.3})",
        t.elapsed().as_secs_f64(),
        trained.policy.metadata.seed,
        trained.policy.metadata.score
    );

    // In-distribution: the canonical draw, traffic seeds only (seeds fan
    // out over the worker pool; results stay in seed order).
    let in_dist: Vec<Metrics> =
        dosco_nn::par::par_map(&budget.eval_seeds, |_, &s| {
            evaluate(&trained.policy, &scenario, s)
        });
    let mean_in =
        in_dist.iter().map(Metrics::success_ratio).sum::<f64>() / in_dist.len() as f64;

    // Transfer: the figure protocol with re-drawn capacities.
    let transfer = Algo::DistDrl(trained.policy.clone()).evaluate(&scenario, &budget.eval_seeds);

    // Heuristics on the canonical draw for reference.
    let gcasp: Vec<Metrics> = dosco_nn::par::par_map(&budget.eval_seeds, |_, &s| {
        let mut c = dosco_baselines::Gcasp::new();
        let mut sim = Simulation::new(scenario.clone(), s);
        sim.run(&mut c).clone()
    });
    let mean_gcasp =
        gcasp.iter().map(Metrics::success_ratio).sum::<f64>() / gcasp.len() as f64;

    println!("flagship (single-draw training, {} steps):", cfg.total_steps);
    println!("  DistDRL in-distribution (canonical draw):   {mean_in:.3}");
    println!(
        "  DistDRL transfer (re-drawn capacities):     {:.3} ± {:.3}",
        transfer.mean_success, transfer.std_success
    );
    println!("  GCASP on the canonical draw (reference):    {mean_gcasp:.3}");
    println!(
        "csv: flagship,DistDRL-indist,canonical,{mean_in:.4},0.0\ncsv: flagship,DistDRL-transfer,redrawn,{:.4},{:.4}",
        transfer.mean_success, transfer.std_success
    );
    let _ = scenario_with_capacity_seed(&scenario, 0); // keep linkage explicit
}
