//! Compares greedy vs stochastic inference for a trained policy — a
//! sizing probe for the evaluation protocol (stable-baselines' `predict`
//! samples by default; argmax can lock into forwarding loops).

use dosco_bench::report::flag_value;
use dosco_bench::runner::scenario_with_capacity_seed;
use dosco_bench::scenarios::{base_scenario, pattern_by_name};
use dosco_core::policy::CoordinationPolicy;
use dosco_core::DistributedAgents;
use dosco_simnet::Simulation;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let path = flag_value(&args, "--policy").expect("--policy <json> required");
    let pattern = pattern_by_name(
        flag_value(&args, "--pattern").as_deref().unwrap_or("poisson"),
    );
    let ingress: usize = flag_value(&args, "--ingress")
        .map(|v| v.parse().expect("--ingress must be an integer"))
        .unwrap_or(2);
    let policy = CoordinationPolicy::load(&path).expect("readable policy JSON");
    let scenario = base_scenario(ingress, pattern, 5_000.0);
    for mode in ["greedy", "stochastic"] {
        let mut ratios = Vec::new();
        for seed in 100..105u64 {
            let s = scenario_with_capacity_seed(&scenario, seed);
            let mut agents = if mode == "greedy" {
                DistributedAgents::deploy(&policy, s.topology.num_nodes())
            } else {
                DistributedAgents::deploy_stochastic(&policy, s.topology.num_nodes(), seed)
            };
            let mut sim = Simulation::new(s, seed);
            ratios.push(sim.run(&mut agents).success_ratio());
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        println!("{mode:<11} mean success {mean:.3}  ({ratios:.2?})");
    }
}
