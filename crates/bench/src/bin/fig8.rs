//! Regenerates **Fig. 8**: generalization to unseen scenarios without
//! retraining.
//!
//! - `--part traffic` (Fig. 8a): agents trained on fixed/Poisson/MMPP
//!   traffic are tested, without retraining, on the real-world-trace
//!   scenario ("Gen."), versus the agent retrained on traces ("Retr.")
//!   and the other algorithms.
//! - `--part load` (Fig. 8b): an agent trained with 2 ingress nodes is
//!   tested on 1–5 ingress nodes ("Gen."), versus agents retrained per
//!   load level ("Retr.") and the other algorithms.
//!
//! ```text
//! cargo run -p dosco-bench --release --bin fig8 -- --part traffic
//! cargo run -p dosco-bench --release --bin fig8 -- --part load
//! ```
//!
//! Policies are shared with `fig6` through the policy cache.

use dosco_bench::report::{flag_value, print_series, SeriesPoint};
use dosco_bench::runner::{train_central_drl, train_dist_drl_cached, Algo, ExpBudget};
use dosco_bench::scenarios::{base_scenario, pattern_by_name};

fn part_traffic(budget: &ExpBudget) {
    let trace_scenario = base_scenario(2, pattern_by_name("trace"), budget.horizon);
    let mut points = Vec::new();

    // Generalizing agents: trained on other patterns, tested on traces.
    for trained_on in ["fixed", "poisson", "mmpp"] {
        let train_scenario = base_scenario(2, pattern_by_name(trained_on), budget.horizon);
        let policy =
            train_dist_drl_cached(&format!("fig6-{trained_on}-i2"), &train_scenario, budget);
        let stats = Algo::DistDrl(policy).evaluate(&trace_scenario, &budget.eval_seeds);
        eprintln!(
            "[fig8a] Gen({trained_on}) on trace: {:.3} ± {:.3}",
            stats.mean_success, stats.std_success
        );
        points.push(SeriesPoint {
            algo: match trained_on {
                "fixed" => "Gen.fixed",
                "poisson" => "Gen.poisson",
                _ => "Gen.mmpp",
            },
            x: "trace".into(),
            stats,
        });
    }

    // Retrained on traces, plus the baselines.
    let retrained = train_dist_drl_cached("fig6-trace-i2", &trace_scenario, budget);
    let central = train_central_drl(&trace_scenario, budget);
    for (name, algo) in [
        ("Retr.", Algo::DistDrl(retrained)),
        ("CentralDRL", Algo::CentralDrl(central)),
        ("GCASP", Algo::Gcasp),
        ("SP", Algo::Sp),
    ] {
        let stats = algo.evaluate(&trace_scenario, &budget.eval_seeds);
        eprintln!("[fig8a] {name}: {:.3} ± {:.3}", stats.mean_success, stats.std_success);
        points.push(SeriesPoint {
            algo: name,
            x: "trace".into(),
            stats,
        });
    }
    print_series(
        "Fig 8a",
        "generalization to unseen trace-driven traffic",
        &points,
        false,
    );
}

fn part_load(budget: &ExpBudget) {
    let pattern = pattern_by_name("poisson");
    let train_scenario = base_scenario(2, pattern.clone(), budget.horizon);
    let generalist = train_dist_drl_cached("fig6-poisson-i2", &train_scenario, budget);
    let central = train_central_drl(&train_scenario, budget);
    let mut points = Vec::new();
    for ingress in 1..=5usize {
        let scenario = base_scenario(ingress, pattern.clone(), budget.horizon);
        let retrained = train_dist_drl_cached(
            &format!("fig8b-poisson-i{ingress}"),
            &scenario,
            budget,
        );
        for (name, algo) in [
            ("Gen.", Algo::DistDrl(generalist.clone())),
            ("Retr.", Algo::DistDrl(retrained)),
            ("CentralDRL", Algo::CentralDrl(central.clone())),
            ("GCASP", Algo::Gcasp),
            ("SP", Algo::Sp),
        ] {
            let stats = algo.evaluate(&scenario, &budget.eval_seeds);
            eprintln!(
                "[fig8b] ingress={ingress} {name:<10} {:.3} ± {:.3}",
                stats.mean_success, stats.std_success
            );
            points.push(SeriesPoint {
                algo: name,
                x: ingress.to_string(),
                stats,
            });
        }
    }
    print_series("Fig 8b", "generalization to unseen load levels", &points, false);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let part = flag_value(&args, "--part").unwrap_or_else(|| "traffic".into());
    let budget = ExpBudget::from_env();
    match part.as_str() {
        "traffic" => part_traffic(&budget),
        "load" => part_load(&budget),
        "all" => {
            part_traffic(&budget);
            part_load(&budget);
        }
        other => panic!("unknown part {other:?}; use traffic|load|all"),
    }
}
