//! Collates the CSV lines from `results/*.txt` into one markdown report —
//! the measured half of EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p dosco-bench --release --bin summarize -- [results-dir]
//! ```

use std::collections::BTreeMap;
use std::path::Path;

/// One parsed CSV record: `figure,algo,x,mean,std[,delay]`.
#[derive(Debug, Clone)]
struct Record {
    algo: String,
    x: String,
    mean: f64,
    std: f64,
    delay: Option<String>,
}

fn parse_records(text: &str) -> BTreeMap<String, Vec<Record>> {
    let mut by_figure: BTreeMap<String, Vec<Record>> = BTreeMap::new();
    for line in text.lines() {
        let fields: Vec<&str> = line.trim().split(',').collect();
        if fields.len() < 5 || !fields[0].starts_with("Fig") {
            continue;
        }
        let (Ok(mean), Ok(std)) = (fields[3].parse::<f64>(), fields[4].parse::<f64>()) else {
            continue;
        };
        by_figure
            .entry(fields[0].to_string())
            .or_default()
            .push(Record {
                algo: fields[1].to_string(),
                x: fields[2].to_string(),
                mean,
                std,
                delay: fields.get(5).map(|s| s.to_string()),
            });
    }
    by_figure
}

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "results".into());
    let dir = Path::new(&dir);
    let mut all = String::new();
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "txt"))
        .collect();
    files.sort();
    for f in &files {
        if let Ok(text) = std::fs::read_to_string(f) {
            all.push_str(&text);
            all.push('\n');
        }
    }
    let by_figure = parse_records(&all);
    if by_figure.is_empty() {
        println!("no figure CSV records found under {}", dir.display());
        return;
    }
    for (figure, records) in &by_figure {
        println!("\n### {figure} (measured, mean ± std over eval seeds)\n");
        // Collect x-axis values in first-seen order.
        let mut xs: Vec<&str> = Vec::new();
        let mut algos: Vec<&str> = Vec::new();
        for r in records {
            if !xs.contains(&r.x.as_str()) {
                xs.push(&r.x);
            }
            if !algos.contains(&r.algo.as_str()) {
                algos.push(&r.algo);
            }
        }
        print!("| algo \\ x |");
        for x in &xs {
            print!(" {x} |");
        }
        println!();
        print!("|---|");
        for _ in &xs {
            print!("---|");
        }
        println!();
        for algo in &algos {
            print!("| {algo} |");
            for x in &xs {
                match records.iter().find(|r| &r.algo == algo && &r.x == x) {
                    Some(r) => {
                        print!(" {:.2}±{:.2}", r.mean, r.std);
                        if let Some(d) = &r.delay {
                            if d != "-" {
                                print!(" ({d} ms)");
                            }
                        }
                        print!(" |");
                    }
                    None => print!(" - |"),
                }
            }
            println!();
        }
    }
    // Fig 9b latency lines are in a different format; pass them through.
    let latency: Vec<&str> = all
        .lines()
        .filter(|l| l.starts_with("csv: fig9b"))
        .collect();
    if !latency.is_empty() {
        println!("\n### Fig 9b (measured per-decision latency, ms)\n");
        println!("| network | nodes | Δ_G | DistDRL | CentralDRL |");
        println!("|---|---|---|---|---|");
        for l in latency {
            let fields: Vec<&str> = l.trim_start_matches("csv: ").split(',').collect();
            if fields.len() == 6 {
                println!(
                    "| {} | {} | {} | {} | {} |",
                    fields[1], fields[2], fields[3], fields[4], fields[5]
                );
            }
        }
    }
}
