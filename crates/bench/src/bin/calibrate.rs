//! Quick calibration run: trains the distributed DRL at a small budget and
//! compares all four algorithms on one scenario. Not a paper figure —
//! a smoke/sizing tool for the real experiment binaries.

use dosco_bench::report::flag_value;
use dosco_bench::runner::{train_central_drl, train_dist_drl, Algo, ExpBudget};
use dosco_bench::scenarios::{base_scenario, pattern_by_name};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let pattern = pattern_by_name(
        flag_value(&args, "--pattern").as_deref().unwrap_or("poisson"),
    );
    let ingress: usize = flag_value(&args, "--ingress")
        .map(|v| v.parse().expect("--ingress must be an integer"))
        .unwrap_or(2);
    let mut budget = ExpBudget::from_env();
    if let Some(v) = flag_value(&args, "--train-steps") {
        budget.train_steps = v.parse().expect("--train-steps must be an integer");
    }
    if let Some(v) = flag_value(&args, "--train-seeds") {
        let k: u64 = v.parse().expect("--train-seeds must be an integer");
        budget.train_seeds = (0..k).collect();
    }

    let scenario = base_scenario(ingress, pattern.clone(), budget.horizon);
    println!(
        "calibrating: pattern={} ingress={ingress} train_steps={} seeds={} horizon={}",
        pattern.name(),
        budget.train_steps,
        budget.train_seeds.len(),
        budget.horizon
    );

    let t0 = Instant::now();
    let dist = train_dist_drl(&scenario, &budget);
    println!(
        "distributed DRL trained in {:.1}s (best seed {} score {:.3})",
        t0.elapsed().as_secs_f64(),
        dist.metadata.seed,
        dist.metadata.score
    );
    let t1 = Instant::now();
    let central = train_central_drl(&scenario, &budget);
    println!("central DRL trained in {:.1}s", t1.elapsed().as_secs_f64());

    for algo in [
        Algo::DistDrl(dist),
        Algo::CentralDrl(central),
        Algo::Gcasp,
        Algo::Sp,
    ] {
        let t = Instant::now();
        let stats = algo.evaluate(&scenario, &budget.eval_seeds);
        println!(
            "{:<11} success {:.3} ± {:.3}   e2e {}   ({:.1}s, arrived≈{})",
            algo.name(),
            stats.mean_success,
            stats.std_success,
            stats
                .mean_e2e_delay
                .map_or("-".into(), |d| format!("{d:.1} ms")),
            t.elapsed().as_secs_f64(),
            stats.metrics[0].arrived,
        );
    }
}
