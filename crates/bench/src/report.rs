//! Table/series printing: every experiment binary prints the same rows or
//! series the paper's figures report, as aligned text plus CSV.

use crate::runner::EvalStats;

/// One point of a figure series: an x value (e.g. ingress count, deadline)
/// and the aggregated result for one algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoint {
    /// Algorithm name.
    pub algo: &'static str,
    /// X-axis value label.
    pub x: String,
    /// Aggregated result.
    pub stats: EvalStats,
}

/// Prints a figure's series as an aligned table and as CSV
/// (`figure,algo,x,mean,std[,delay]`).
pub fn print_series(figure: &str, ylabel: &str, points: &[SeriesPoint], with_delay: bool) {
    println!("\n== {figure} — {ylabel} (mean ± std over seeds) ==");
    let mut xs: Vec<&str> = Vec::new();
    for p in points {
        if !xs.contains(&p.x.as_str()) {
            xs.push(&p.x);
        }
    }
    let mut algos: Vec<&str> = Vec::new();
    for p in points {
        if !algos.contains(&p.algo) {
            algos.push(p.algo);
        }
    }
    print!("{:<12}", "algo \\ x");
    for x in &xs {
        print!(" {x:>16}");
    }
    println!();
    for algo in &algos {
        print!("{algo:<12}");
        for x in &xs {
            match points.iter().find(|p| &p.algo == algo && p.x == *x) {
                Some(p) => print!(
                    " {:>8.3} ±{:>5.3}",
                    p.stats.mean_success, p.stats.std_success
                ),
                None => print!(" {:>16}", "-"),
            }
        }
        println!();
    }
    println!("\ncsv:");
    if with_delay {
        println!("figure,algo,x,mean_success,std_success,mean_e2e_delay");
    } else {
        println!("figure,algo,x,mean_success,std_success");
    }
    for p in points {
        if with_delay {
            println!(
                "{figure},{},{},{:.4},{:.4},{}",
                p.algo,
                p.x,
                p.stats.mean_success,
                p.stats.std_success,
                p.stats
                    .mean_e2e_delay
                    .map_or("-".to_string(), |d| format!("{d:.2}"))
            );
        } else {
            println!(
                "{figure},{},{},{:.4},{:.4}",
                p.algo, p.x, p.stats.mean_success, p.stats.std_success
            );
        }
    }
}

/// Tiny CLI flag reader: returns the value following `--name`, if present.
pub fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosco_simnet::Metrics;

    fn stats(ratio: f64) -> EvalStats {
        let mut m = Metrics::new();
        m.arrived = 100;
        m.completed = (ratio * 100.0) as u64;
        for _ in 0..(100 - m.completed) {
            m.record_drop(dosco_simnet::DropReason::LinkCapacity);
        }
        EvalStats::from_metrics(vec![m])
    }

    #[test]
    fn print_series_smoke() {
        let points = vec![
            SeriesPoint {
                algo: "SP",
                x: "1".into(),
                stats: stats(0.9),
            },
            SeriesPoint {
                algo: "SP",
                x: "2".into(),
                stats: stats(0.5),
            },
        ];
        // Just exercising the formatting path (stdout in tests is captured).
        print_series("fig6a", "successful flows", &points, true);
    }

    #[test]
    fn flag_parsing() {
        let args: Vec<String> = ["--pattern", "mmpp", "--steps", "100"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(flag_value(&args, "--pattern").as_deref(), Some("mmpp"));
        assert_eq!(flag_value(&args, "--steps").as_deref(), Some("100"));
        assert_eq!(flag_value(&args, "--missing"), None);
    }
}
