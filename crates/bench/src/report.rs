//! Table/series printing: every experiment binary prints the same rows or
//! series the paper's figures report, as aligned text plus CSV.

use crate::runner::EvalStats;
use serde::Serialize;

/// One point of a figure series: an x value (e.g. ingress count, deadline)
/// and the aggregated result for one algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoint {
    /// Algorithm name.
    pub algo: &'static str,
    /// X-axis value label.
    pub x: String,
    /// Aggregated result.
    pub stats: EvalStats,
}

/// Prints a figure's series as an aligned table and as CSV
/// (`figure,algo,x,mean,std[,delay]`).
pub fn print_series(figure: &str, ylabel: &str, points: &[SeriesPoint], with_delay: bool) {
    println!("\n== {figure} — {ylabel} (mean ± std over seeds) ==");
    let mut xs: Vec<&str> = Vec::new();
    for p in points {
        if !xs.contains(&p.x.as_str()) {
            xs.push(&p.x);
        }
    }
    let mut algos: Vec<&str> = Vec::new();
    for p in points {
        if !algos.contains(&p.algo) {
            algos.push(p.algo);
        }
    }
    print!("{:<12}", "algo \\ x");
    for x in &xs {
        print!(" {x:>16}");
    }
    println!();
    for algo in &algos {
        print!("{algo:<12}");
        for x in &xs {
            match points.iter().find(|p| &p.algo == algo && p.x == *x) {
                Some(p) => print!(
                    " {:>8.3} ±{:>5.3}",
                    p.stats.mean_success, p.stats.std_success
                ),
                None => print!(" {:>16}", "-"),
            }
        }
        println!();
    }
    println!("\ncsv:");
    if with_delay {
        println!("figure,algo,x,mean_success,std_success,mean_e2e_delay");
    } else {
        println!("figure,algo,x,mean_success,std_success");
    }
    for p in points {
        if with_delay {
            println!(
                "{figure},{},{},{:.4},{:.4},{}",
                p.algo,
                p.x,
                p.stats.mean_success,
                p.stats.std_success,
                p.stats
                    .mean_e2e_delay
                    .map_or("-".to_string(), |d| format!("{d:.2}"))
            );
        } else {
            println!(
                "{figure},{},{},{:.4},{:.4}",
                p.algo, p.x, p.stats.mean_success, p.stats.std_success
            );
        }
    }
}

/// One baseline-vs-candidate timing comparison in a machine-readable
/// performance report (see the `perf_report` binary).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BenchRecord {
    /// Short identifier, e.g. `gemm/fwd-bwd-256x512`.
    pub name: String,
    /// What the baseline timing measures.
    pub baseline: String,
    /// What the candidate timing measures.
    pub candidate: String,
    /// Best-of-N wall time of the baseline, milliseconds.
    pub baseline_ms: f64,
    /// Best-of-N wall time of the candidate, milliseconds.
    pub candidate_ms: f64,
    /// `baseline_ms / candidate_ms` (>1 means the candidate is faster).
    pub speedup: f64,
    /// Measurement caveats (e.g. host core count limiting thread scaling).
    pub note: String,
}

/// A full performance report: environment description plus records.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BenchReport {
    /// What produced this file.
    pub generated_by: String,
    /// Host parallelism (`std::thread::available_parallelism`).
    pub host_threads: usize,
    /// Worker-pool width used for the "parallel" timings.
    pub pool_threads: usize,
    /// The comparisons.
    pub records: Vec<BenchRecord>,
    /// Observability snapshot (span timings, counters, histograms)
    /// captured while the benchmarks ran; `None` when spans were off.
    pub obs: Option<dosco_obs::ObsReport>,
}

impl BenchRecord {
    /// Builds a record, deriving the speedup from the two timings.
    pub fn new(
        name: &str,
        baseline: &str,
        candidate: &str,
        baseline_ms: f64,
        candidate_ms: f64,
        note: &str,
    ) -> Self {
        BenchRecord {
            name: name.to_string(),
            baseline: baseline.to_string(),
            candidate: candidate.to_string(),
            baseline_ms,
            candidate_ms,
            speedup: baseline_ms / candidate_ms.max(1e-9),
            note: note.to_string(),
        }
    }
}

/// Serializes `report` as pretty-printed JSON to `path`.
///
/// # Errors
///
/// Returns any filesystem error from writing the file.
pub fn write_json_report(path: &std::path::Path, report: &BenchReport) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(report)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(path, json + "\n")
}

/// Tiny CLI flag reader: returns the value following `--name`, if present.
pub fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosco_simnet::Metrics;

    fn stats(ratio: f64) -> EvalStats {
        let mut m = Metrics::new();
        m.arrived = 100;
        m.completed = (ratio * 100.0) as u64;
        for _ in 0..(100 - m.completed) {
            m.record_drop(dosco_simnet::DropReason::LinkCapacity);
        }
        EvalStats::from_metrics(vec![m])
    }

    #[test]
    fn print_series_smoke() {
        let points = vec![
            SeriesPoint {
                algo: "SP",
                x: "1".into(),
                stats: stats(0.9),
            },
            SeriesPoint {
                algo: "SP",
                x: "2".into(),
                stats: stats(0.5),
            },
        ];
        // Just exercising the formatting path (stdout in tests is captured).
        print_series("fig6a", "successful flows", &points, true);
    }

    #[test]
    fn bench_record_speedup_and_json_shape() {
        let rec = BenchRecord::new("gemm/t", "naive", "blocked", 10.0, 4.0, "");
        assert!((rec.speedup - 2.5).abs() < 1e-9);
        let report = BenchReport {
            generated_by: "test".into(),
            host_threads: 1,
            pool_threads: 4,
            records: vec![rec],
            obs: None,
        };
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"gemm/t\""));
        assert!(json.contains("\"pool_threads\""));
        assert!(json.contains("\"obs\""));
    }

    #[test]
    fn flag_parsing() {
        let args: Vec<String> = ["--pattern", "mmpp", "--steps", "100"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(flag_value(&args, "--pattern").as_deref(), Some("mmpp"));
        assert_eq!(flag_value(&args, "--steps").as_deref(), Some("100"));
        assert_eq!(flag_value(&args, "--missing"), None);
    }
}
