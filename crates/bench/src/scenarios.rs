//! Evaluation scenario construction (Sec. V-A1).

use dosco_simnet::ScenarioConfig;
use dosco_topology::{NodeId, Topology};
use dosco_traffic::ArrivalPattern;
use rand::SeedableRng;

/// The base scenario with `num_ingress` ingress nodes and the given
/// arrival pattern (defaults to the paper's otherwise: Abilene, video
/// service, deadline 100, egress v8).
pub fn base_scenario(num_ingress: usize, pattern: ArrivalPattern, horizon: f64) -> ScenarioConfig {
    ScenarioConfig::paper_base(num_ingress)
        .with_pattern(pattern)
        .with_horizon(horizon)
}

/// A scenario on an arbitrary topology (Sec. V-E): random capacities as in
/// the base scenario (nodes U(0,2), links U(1,5)), Poisson traffic at the
/// two lowest-id nodes (the paper's "node IDs v1 and v2"), egress `v8`,
/// the paper service, deadline 100.
///
/// # Panics
///
/// Panics if the topology has fewer than 9 nodes (needs `v8`).
pub fn topology_scenario(mut topology: Topology, horizon: f64) -> ScenarioConfig {
    assert!(
        topology.num_nodes() >= 9,
        "scalability scenario needs at least 9 nodes for egress v8"
    );
    let capacity_seed = 0xD05C0;
    let mut rng = rand::rngs::StdRng::seed_from_u64(capacity_seed);
    topology.assign_random_capacities(&mut rng, (0.0, 2.0), (1.0, 5.0));
    let base = ScenarioConfig::paper_base(2);
    let mut ingresses = base.ingresses.clone();
    ingresses[0].node = NodeId(0);
    ingresses[1].node = NodeId(1);
    for ing in &mut ingresses {
        ing.egress = NodeId(7);
        ing.pattern = ArrivalPattern::paper_poisson();
    }
    let cfg = ScenarioConfig {
        topology,
        catalog: base.catalog,
        ingresses,
        horizon,
        hold_delay: 1.0,
        capacity_seed,
    };
    cfg.validate().expect("topology scenario is valid");
    cfg
}

/// Parses the four pattern names used on experiment CLIs.
///
/// # Panics
///
/// Panics on unknown names (the CLI surfaces the message).
pub fn pattern_by_name(name: &str) -> ArrivalPattern {
    match name {
        "fixed" => ArrivalPattern::paper_fixed(),
        "poisson" => ArrivalPattern::paper_poisson(),
        "mmpp" => ArrivalPattern::paper_mmpp(),
        "trace" => ArrivalPattern::paper_trace(),
        other => panic!("unknown pattern {other:?}; use fixed|poisson|mmpp|trace"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosco_topology::zoo;

    #[test]
    fn base_scenario_shape() {
        let s = base_scenario(3, ArrivalPattern::paper_poisson(), 1_000.0);
        assert_eq!(s.ingresses.len(), 3);
        assert_eq!(s.horizon, 1_000.0);
        s.validate().unwrap();
    }

    #[test]
    fn topology_scenarios_for_all_zoo_networks() {
        for topo in zoo::all() {
            let s = topology_scenario(topo, 500.0);
            s.validate().unwrap();
            assert_eq!(s.ingresses.len(), 2);
            assert_eq!(s.ingresses[0].node, NodeId(0));
            assert_eq!(s.ingresses[1].egress, NodeId(7));
        }
    }

    #[test]
    fn pattern_names_round_trip() {
        for n in ["fixed", "poisson", "mmpp", "trace"] {
            assert_eq!(pattern_by_name(n).name(), n);
        }
    }

    #[test]
    #[should_panic(expected = "unknown pattern")]
    fn pattern_rejects_unknown() {
        pattern_by_name("bursty");
    }
}
