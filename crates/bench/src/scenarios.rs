//! Evaluation scenario construction (Sec. V-A1).

use dosco_simnet::ScenarioConfig;
use dosco_topology::{NodeId, Topology};
use dosco_traffic::ArrivalPattern;
use rand::SeedableRng;

/// The base scenario with `num_ingress` ingress nodes and the given
/// arrival pattern (defaults to the paper's otherwise: Abilene, video
/// service, deadline 100, egress v8).
pub fn base_scenario(num_ingress: usize, pattern: ArrivalPattern, horizon: f64) -> ScenarioConfig {
    ScenarioConfig::paper_base(num_ingress)
        .with_pattern(pattern)
        .with_horizon(horizon)
}

/// A scenario on an arbitrary topology (Sec. V-E): random capacities as in
/// the base scenario (nodes U(0,2), links U(1,5)), Poisson traffic at the
/// two lowest-id nodes (the paper's "node IDs v1 and v2"), egress `v8`,
/// the paper service, deadline 100.
///
/// # Panics
///
/// Panics if the topology has fewer than 9 nodes (needs `v8`).
pub fn topology_scenario(mut topology: Topology, horizon: f64) -> ScenarioConfig {
    assert!(
        topology.num_nodes() >= 9,
        "scalability scenario needs at least 9 nodes for egress v8"
    );
    let capacity_seed = 0xD05C0;
    let mut rng = rand::rngs::StdRng::seed_from_u64(capacity_seed);
    topology.assign_random_capacities(&mut rng, (0.0, 2.0), (1.0, 5.0));
    let base = ScenarioConfig::paper_base(2);
    let mut ingresses = base.ingresses.clone();
    ingresses[0].node = NodeId(0);
    ingresses[1].node = NodeId(1);
    for ing in &mut ingresses {
        ing.egress = NodeId(7);
        ing.pattern = ArrivalPattern::paper_poisson();
    }
    let cfg = ScenarioConfig {
        topology,
        catalog: base.catalog,
        ingresses,
        horizon,
        hold_delay: 1.0,
        capacity_seed,
    };
    cfg.validate().expect("topology scenario is valid");
    cfg
}

/// A flow-churn stress scenario for the million-flow simulation core:
/// **every** node is an ingress emitting a flow each `interval` time
/// units toward the node two ids over (`(v + 2) mod n`), and the single
/// service component pins each flow inside the network for `dwell` time
/// units of processing. Steady-state concurrency is therefore
/// `≈ n / interval · dwell` live flows, reached after one dwell period.
///
/// The scenario is built so nothing ever drops and no capacity math
/// interferes with the storage/scheduling measurement:
///
/// - flows have zero data rate and the component zero resource demand,
///   so node and link capacity checks always pass,
/// - the deadline is effectively infinite,
/// - the component's idle timeout is `2 · interval`, so instances stay
///   warm under periodic arrivals but still exercise the timeout-probe
///   push/cancel path whenever traffic at a node goes quiet.
///
/// Every flow still runs the full decision loop (process at the ingress,
/// then shortest-path forwards to the egress), so throughput numbers
/// measure the event queue, the flow slab, and the coordinator — not
/// drop shortcuts.
pub fn churn_scenario(
    topology: Topology,
    interval: f64,
    dwell: f64,
    horizon: f64,
) -> ScenarioConfig {
    use dosco_simnet::service::{Component, Service, ServiceCatalog, ServiceId};
    use dosco_traffic::FlowProfile;

    let n = topology.num_nodes();
    assert!(n >= 3, "churn scenario needs at least 3 nodes, got {n}");
    let component = Component {
        name: "Churn".to_string(),
        processing_delay: dwell,
        resource_per_rate: 0.0,
        resource_fixed: 0.0,
        startup_delay: 0.0,
        idle_timeout: 2.0 * interval,
    };
    let catalog = ServiceCatalog::new(
        vec![component],
        vec![Service {
            name: "churn-chain".to_string(),
            chain: vec![dosco_simnet::service::ComponentId(0)],
        }],
    )
    .expect("single-component churn catalog is valid");
    let profile = FlowProfile::new(0.0, 1.0, 1e12);
    let ingresses = (0..n)
        .map(|v| dosco_simnet::IngressSpec {
            node: NodeId(v),
            pattern: ArrivalPattern::Fixed { interval },
            service: ServiceId(0),
            egress: NodeId((v + 2) % n),
            profile,
        })
        .collect();
    let cfg = ScenarioConfig {
        topology,
        catalog,
        ingresses,
        horizon,
        hold_delay: 1.0,
        capacity_seed: 0,
    };
    cfg.validate().expect("churn scenario is valid");
    cfg
}

/// Parses the four pattern names used on experiment CLIs.
///
/// # Panics
///
/// Panics on unknown names (the CLI surfaces the message).
pub fn pattern_by_name(name: &str) -> ArrivalPattern {
    match name {
        "fixed" => ArrivalPattern::paper_fixed(),
        "poisson" => ArrivalPattern::paper_poisson(),
        "mmpp" => ArrivalPattern::paper_mmpp(),
        "trace" => ArrivalPattern::paper_trace(),
        other => panic!("unknown pattern {other:?}; use fixed|poisson|mmpp|trace"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosco_topology::zoo;

    #[test]
    fn base_scenario_shape() {
        let s = base_scenario(3, ArrivalPattern::paper_poisson(), 1_000.0);
        assert_eq!(s.ingresses.len(), 3);
        assert_eq!(s.horizon, 1_000.0);
        s.validate().unwrap();
    }

    #[test]
    fn topology_scenarios_for_all_zoo_networks() {
        for topo in zoo::all() {
            let s = topology_scenario(topo, 500.0);
            s.validate().unwrap();
            assert_eq!(s.ingresses.len(), 2);
            assert_eq!(s.ingresses[0].node, NodeId(0));
            assert_eq!(s.ingresses[1].egress, NodeId(7));
        }
    }

    #[test]
    fn churn_scenario_reaches_target_concurrency() {
        use dosco_simnet::Simulation;
        // 11 nodes / interval 1 × dwell 50 ≈ 550 concurrent at steady
        // state — the same construction the million-flow report scales up.
        let cfg = churn_scenario(zoo::abilene(), 1.0, 50.0, 120.0);
        cfg.validate().unwrap();
        assert_eq!(cfg.ingresses.len(), 11);
        let mut sim = Simulation::new(cfg, 1);
        sim.run(&mut dosco_baselines::ShortestPath::new());
        let m = sim.metrics();
        assert_eq!(m.dropped.values().sum::<u64>(), 0, "churn flows never drop");
        assert!(
            sim.peak_live_flows() >= 500,
            "peak live flows {} below the n/interval*dwell estimate",
            sim.peak_live_flows()
        );
        assert!(m.completed > 0);
    }

    #[test]
    fn pattern_names_round_trip() {
        for n in ["fixed", "poisson", "mmpp", "trace"] {
            assert_eq!(pattern_by_name(n).name(), n);
        }
    }

    #[test]
    #[should_panic(expected = "unknown pattern")]
    fn pattern_rejects_unknown() {
        pattern_by_name("bursty");
    }
}
