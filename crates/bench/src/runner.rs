//! Algorithm registry, training orchestration, and evaluation runs.

use dosco_baselines::central::{train_central, CentralConfig, CentralPolicy, CentralizedCoordinator};
use dosco_baselines::gcasp::Gcasp;
use dosco_baselines::sp::ShortestPath;
use dosco_core::policy::CoordinationPolicy;
use dosco_core::train::{train_distributed, Algorithm, TrainConfig};
use dosco_core::DistributedAgents;
use dosco_rl::ddpg::DdpgConfig;
use dosco_simnet::{Coordinator, Metrics, ScenarioConfig, Simulation};

/// Experiment budget: scaled-down defaults that preserve the paper's
/// qualitative shapes; override via CLI flags or env for full-scale runs
/// (see EXPERIMENTS.md).
#[derive(Debug, Clone, PartialEq)]
pub struct ExpBudget {
    /// Environment transitions per training seed (distributed DRL).
    pub train_steps: usize,
    /// Training seeds `k` (paper: 10).
    pub train_seeds: Vec<u64>,
    /// Parallel training envs `l` (paper: 4).
    pub n_envs: usize,
    /// Rule updates to train the centralized baseline for.
    pub central_steps: usize,
    /// Evaluation seeds (paper: 30).
    pub eval_seeds: Vec<u64>,
    /// Evaluation horizon `T` (paper: 20 000).
    pub horizon: f64,
}

impl Default for ExpBudget {
    fn default() -> Self {
        ExpBudget {
            train_steps: 40_000,
            train_seeds: vec![0, 1, 2],
            n_envs: 4,
            central_steps: 600,
            eval_seeds: (100..105).collect(),
            horizon: 5_000.0,
        }
    }
}

/// A rejected experiment-budget environment override: names the variable
/// and the offending value instead of a bare parse panic. The shared
/// [`dosco_obs::env`] helper implements the contract (empty = unset,
/// malformed = hard error); this alias keeps the historical name.
pub use dosco_obs::env::EnvParseError as BudgetEnvError;

use dosco_obs::env::parse_lookup as parse_override;

impl ExpBudget {
    /// Reads overrides from environment variables
    /// (`DOSCO_TRAIN_STEPS`, `DOSCO_SEEDS`, `DOSCO_EVAL_SEEDS`,
    /// `DOSCO_HORIZON`, `DOSCO_CENTRAL_STEPS`) so full-scale runs don't
    /// need code edits.
    ///
    /// # Panics
    ///
    /// Panics with the [`BudgetEnvError`] message (named variable plus
    /// offending value) if an override is set but invalid. Use
    /// [`ExpBudget::try_from_env`] to handle the error instead.
    pub fn from_env() -> Self {
        Self::try_from_env().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`ExpBudget::from_env`], returning the validation error
    /// instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetEnvError`] for the first override that is set but
    /// does not parse/validate. Empty-string variables behave like unset.
    pub fn try_from_env() -> Result<Self, BudgetEnvError> {
        Self::from_lookup(&|var| std::env::var(var).ok())
    }

    /// [`ExpBudget::try_from_env`] over an arbitrary variable lookup
    /// (injectable for tests — no process-global environment mutation).
    ///
    /// # Errors
    ///
    /// See [`ExpBudget::try_from_env`].
    pub fn from_lookup(get: &dyn Fn(&str) -> Option<String>) -> Result<Self, BudgetEnvError> {
        let mut b = ExpBudget::default();
        if let Some(v) = parse_override::<usize>(
            get,
            "DOSCO_TRAIN_STEPS",
            "a positive integer",
            |&v| v >= 1,
        )? {
            b.train_steps = v;
        }
        if let Some(k) =
            parse_override::<u64>(get, "DOSCO_SEEDS", "a positive integer", |&v| v >= 1)?
        {
            b.train_seeds = (0..k).collect();
        }
        if let Some(k) =
            parse_override::<u64>(get, "DOSCO_EVAL_SEEDS", "a positive integer", |&v| v >= 1)?
        {
            b.eval_seeds = (100..100 + k).collect();
        }
        if let Some(v) = parse_override::<f64>(
            get,
            "DOSCO_HORIZON",
            "a finite positive number",
            |&v| v.is_finite() && v > 0.0,
        )? {
            b.horizon = v;
        }
        if let Some(v) = parse_override::<usize>(
            get,
            "DOSCO_CENTRAL_STEPS",
            "a positive integer",
            |&v| v >= 1,
        )? {
            b.central_steps = v;
        }
        Ok(b)
    }

    /// The distributed-DRL training configuration for this budget.
    pub fn train_config(&self) -> TrainConfig {
        TrainConfig {
            algorithm: Algorithm::Acktr,
            total_steps: self.train_steps,
            n_envs: self.n_envs,
            seeds: self.train_seeds.clone(),
            eval_horizon: (self.horizon / 2.0).max(1_000.0),
            ..TrainConfig::default()
        }
    }

    /// The centralized-baseline training configuration.
    pub fn central_config(&self) -> CentralConfig {
        CentralConfig {
            train_steps: self.central_steps,
            ddpg: DdpgConfig {
                hidden: [64, 64],
                warmup: 64,
                batch_size: 32,
                ..DdpgConfig::default()
            },
            ..CentralConfig::default()
        }
    }
}

/// A compared algorithm, ready to evaluate. Trained variants carry their
/// trained policies.
#[derive(Debug, Clone)]
pub enum Algo {
    /// The paper's fully distributed DRL approach.
    DistDrl(CoordinationPolicy),
    /// The centralized DRL baseline (the paper's ref 10).
    CentralDrl(CentralPolicy),
    /// The fully distributed heuristic (the paper's ref 11).
    Gcasp,
    /// Greedy shortest path.
    Sp,
}

impl Algo {
    /// Display name as used in the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Algo::DistDrl(_) => "DistDRL",
            Algo::CentralDrl(_) => "CentralDRL",
            Algo::Gcasp => "GCASP",
            Algo::Sp => "SP",
        }
    }

    /// A fresh coordinator instance for one evaluation episode.
    pub fn coordinator(&self, scenario: &ScenarioConfig) -> Box<dyn Coordinator> {
        match self {
            Algo::DistDrl(p) => Box::new(DistributedAgents::deploy(
                p,
                scenario.topology.num_nodes(),
            )),
            Algo::CentralDrl(p) => Box::new(CentralizedCoordinator::new(p.clone())),
            Algo::Gcasp => Box::new(Gcasp::new()),
            Algo::Sp => Box::new(ShortestPath::new()),
        }
    }

    /// Evaluates over all seeds on `scenario`. Each seed drives both the
    /// traffic randomness *and* a fresh random capacity assignment
    /// (nodes U(0,2), links U(1,5)) — the paper's "mean and standard
    /// deviation over 30 random seeds" shows variance even under
    /// deterministic fixed arrivals, so the seeds must cover the random
    /// scenario draw, not just the traffic.
    /// Seeds fan out over the worker pool (`DOSCO_THREADS`); each seed is
    /// a self-contained simulation with its own RNG streams, so the
    /// per-seed metrics — and their aggregation order — are identical to
    /// a serial run.
    pub fn evaluate(&self, scenario: &ScenarioConfig, eval_seeds: &[u64]) -> EvalStats {
        let metrics: Vec<Metrics> = dosco_nn::par::par_map(eval_seeds, |_, &seed| {
            let scenario = scenario_with_capacity_seed(scenario, seed);
            let mut coordinator = self.coordinator(&scenario);
            let mut sim = Simulation::new(scenario, seed);
            sim.run(coordinator.as_mut()).clone()
        });
        EvalStats::from_metrics(metrics)
    }
}

/// Aggregated evaluation results (mean ± std over seeds, as in all of the
/// paper's figures).
#[derive(Debug, Clone, PartialEq)]
pub struct EvalStats {
    /// Mean success ratio.
    pub mean_success: f64,
    /// Standard deviation of the success ratio.
    pub std_success: f64,
    /// Mean end-to-end delay of completed flows (Fig. 7), if any completed.
    pub mean_e2e_delay: Option<f64>,
    /// Per-seed metrics.
    pub metrics: Vec<Metrics>,
}

impl EvalStats {
    /// Aggregates per-seed metrics. Episodes where no flow terminated
    /// (undefined objective) are skipped in the success mean/std rather
    /// than counted as perfect 1.0; if *every* episode is vacuous, both
    /// are `NaN` ("no data"). The per-seed metrics keep all episodes.
    ///
    /// # Panics
    ///
    /// Panics if `metrics` is empty.
    pub fn from_metrics(metrics: Vec<Metrics>) -> Self {
        assert!(!metrics.is_empty(), "need at least one evaluation run");
        let ratios: Vec<f64> = metrics
            .iter()
            .filter_map(Metrics::success_ratio_opt)
            .collect();
        if ratios.is_empty() {
            let delays: Vec<f64> = metrics.iter().filter_map(Metrics::avg_e2e_delay).collect();
            debug_assert!(delays.is_empty(), "completed flows imply a defined ratio");
            return EvalStats {
                mean_success: f64::NAN,
                std_success: f64::NAN,
                mean_e2e_delay: None,
                metrics,
            };
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let var = ratios.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>()
            / ratios.len() as f64;
        let delays: Vec<f64> = metrics.iter().filter_map(Metrics::avg_e2e_delay).collect();
        let mean_delay = if delays.is_empty() {
            None
        } else {
            Some(delays.iter().sum::<f64>() / delays.len() as f64)
        };
        EvalStats {
            mean_success: mean,
            std_success: var.sqrt(),
            mean_e2e_delay: mean_delay,
            metrics,
        }
    }
}

/// Clones `scenario` with capacities re-drawn from `seed` (same ranges as
/// the base scenario: nodes U(0,2), links U(1,5)).
pub fn scenario_with_capacity_seed(scenario: &ScenarioConfig, seed: u64) -> ScenarioConfig {
    use rand::SeedableRng;
    let mut out = scenario.clone();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xCAB5);
    out.topology
        .assign_random_capacities(&mut rng, (0.0, 2.0), (1.0, 5.0));
    out.capacity_seed = seed;
    out
}

/// Trains the distributed DRL policy for a scenario under a budget.
pub fn train_dist_drl(scenario: &ScenarioConfig, budget: &ExpBudget) -> CoordinationPolicy {
    train_distributed(scenario, &budget.train_config()).policy
}

/// Like [`train_dist_drl`] but caches the trained policy as JSON under
/// `target/dosco-policies/<key>.json`, so experiment binaries sharing a
/// configuration (e.g. Fig. 6 and Fig. 8) train only once. Delete the
/// cache directory to force retraining.
pub fn train_dist_drl_cached(
    key: &str,
    scenario: &ScenarioConfig,
    budget: &ExpBudget,
) -> CoordinationPolicy {
    let dir = std::path::Path::new("target/dosco-policies");
    let path = dir.join(format!(
        "{key}-s{}k{}.json",
        budget.train_steps,
        budget.train_seeds.len()
    ));
    if let Ok(policy) = CoordinationPolicy::load(&path) {
        eprintln!("[cache] loaded {}", path.display());
        return policy;
    }
    let t = std::time::Instant::now();
    let policy = train_dist_drl(scenario, budget);
    eprintln!(
        "[train] {key}: best seed {} score {:.3} in {:.0}s",
        policy.metadata.seed,
        policy.metadata.score,
        t.elapsed().as_secs_f64()
    );
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = policy.save(&path);
    }
    policy
}

/// Trains the distributed DRL policy with an explicit degree override
/// (for cross-topology deployment in the scalability experiment).
pub fn train_dist_drl_padded(
    scenario: &ScenarioConfig,
    budget: &ExpBudget,
    degree: usize,
) -> CoordinationPolicy {
    let mut cfg = budget.train_config();
    cfg.degree_override = Some(degree);
    train_distributed(scenario, &cfg).policy
}

/// Trains the centralized baseline for a scenario under a budget.
pub fn train_central_drl(scenario: &ScenarioConfig, budget: &ExpBudget) -> CentralPolicy {
    train_central(scenario, &budget.central_config())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::base_scenario;
    use dosco_traffic::ArrivalPattern;

    #[test]
    fn heuristics_evaluate_without_training() {
        let scenario = base_scenario(2, ArrivalPattern::paper_poisson(), 800.0);
        for algo in [Algo::Gcasp, Algo::Sp] {
            let stats = algo.evaluate(&scenario, &[1, 2]);
            assert_eq!(stats.metrics.len(), 2);
            assert!((0.0..=1.0).contains(&stats.mean_success), "{}", algo.name());
        }
    }

    #[test]
    fn names_match_paper_legends() {
        let scenario = base_scenario(1, ArrivalPattern::paper_fixed(), 100.0);
        assert_eq!(Algo::Gcasp.name(), "GCASP");
        assert_eq!(Algo::Sp.name(), "SP");
        // Coordinator construction succeeds for the untrained variants.
        let _ = Algo::Gcasp.coordinator(&scenario);
        let _ = Algo::Sp.coordinator(&scenario);
    }

    #[test]
    fn eval_stats_aggregation() {
        let mut a = Metrics::new();
        a.arrived = 10;
        a.completed = 10;
        let mut b = Metrics::new();
        b.arrived = 10;
        b.completed = 5;
        b.record_drop(dosco_simnet::DropReason::LinkCapacity);
        b.record_drop(dosco_simnet::DropReason::LinkCapacity);
        b.record_drop(dosco_simnet::DropReason::LinkCapacity);
        b.record_drop(dosco_simnet::DropReason::LinkCapacity);
        b.record_drop(dosco_simnet::DropReason::LinkCapacity);
        let stats = EvalStats::from_metrics(vec![a, b]);
        assert!((stats.mean_success - 0.75).abs() < 1e-12);
        assert!(stats.std_success > 0.2);
    }

    /// Vacuous episodes are excluded from the success aggregate instead
    /// of being counted as perfect 1.0.
    #[test]
    fn eval_stats_skip_vacuous_episodes() {
        let vacuous = Metrics::new(); // nothing terminated
        let mut real = Metrics::new();
        real.arrived = 4;
        real.completed = 2;
        real.record_drop(dosco_simnet::DropReason::NodeCapacity);
        real.record_drop(dosco_simnet::DropReason::NodeCapacity);
        let stats = EvalStats::from_metrics(vec![vacuous.clone(), real]);
        // Old behavior averaged in a fake 1.0 for the vacuous episode
        // (mean 0.75); the fix reports the defined episode alone.
        assert!((stats.mean_success - 0.5).abs() < 1e-12);
        assert_eq!(stats.std_success, 0.0);
        assert_eq!(stats.metrics.len(), 2, "raw metrics keep all episodes");
        // All-vacuous: NaN marks "no data", never a perfect score.
        let empty = EvalStats::from_metrics(vec![vacuous]);
        assert!(empty.mean_success.is_nan());
        assert!(empty.std_success.is_nan());
        assert_eq!(empty.mean_e2e_delay, None);
    }

    #[test]
    fn budget_env_overrides() {
        // Only checks the default path (env vars unset in tests).
        let b = ExpBudget::from_env();
        assert_eq!(b.n_envs, 4);
        let tc = b.train_config();
        assert_eq!(tc.seeds, b.train_seeds);
    }

    #[test]
    fn budget_lookup_applies_valid_overrides() {
        let get = |var: &str| -> Option<String> {
            match var {
                "DOSCO_TRAIN_STEPS" => Some("123".into()),
                "DOSCO_SEEDS" => Some("2".into()),
                "DOSCO_EVAL_SEEDS" => Some("3".into()),
                "DOSCO_HORIZON" => Some("2500.5".into()),
                "DOSCO_CENTRAL_STEPS" => Some(" 7 ".into()), // whitespace ok
                _ => None,
            }
        };
        let b = ExpBudget::from_lookup(&get).unwrap();
        assert_eq!(b.train_steps, 123);
        assert_eq!(b.train_seeds, vec![0, 1]);
        assert_eq!(b.eval_seeds, vec![100, 101, 102]);
        assert_eq!(b.horizon, 2500.5);
        assert_eq!(b.central_steps, 7);
        assert_eq!(b.n_envs, 4, "untouched fields keep defaults");
    }

    /// Empty-string variables behave exactly like unset ones.
    #[test]
    fn budget_lookup_treats_empty_as_unset() {
        let get = |var: &str| -> Option<String> {
            match var {
                "DOSCO_TRAIN_STEPS" => Some(String::new()),
                "DOSCO_HORIZON" => Some("   ".into()),
                _ => None,
            }
        };
        assert_eq!(ExpBudget::from_lookup(&get).unwrap(), ExpBudget::default());
    }

    /// Invalid overrides produce one structured error naming the variable
    /// and the offending value — not a bare `expect` panic.
    #[test]
    fn budget_lookup_rejects_bad_values_with_context() {
        let cases: [(&str, &str); 4] = [
            ("DOSCO_TRAIN_STEPS", "lots"),
            ("DOSCO_SEEDS", "0"),        // validated, not just parsed
            ("DOSCO_HORIZON", "inf"),    // must be finite
            ("DOSCO_CENTRAL_STEPS", "-3"),
        ];
        for (var, value) in cases {
            let get = move |v: &str| (v == var).then(|| value.to_string());
            let err = ExpBudget::from_lookup(&get).unwrap_err();
            assert_eq!(err.var, var);
            assert_eq!(err.value, value);
            let msg = err.to_string();
            assert!(msg.contains(var) && msg.contains(value), "{msg}");
        }
    }
}
