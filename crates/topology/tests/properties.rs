//! Property-based tests for the topology substrate.

use dosco_topology::generators::{self, DegreeProfile};
use dosco_topology::paths::ShortestPaths;
use dosco_topology::stats::DegreeStats;
use dosco_topology::{LinkId, NodeId, TopologyBuilder};
use proptest::prelude::*;

proptest! {
    /// Shortest-path delays on any connected random geometric graph satisfy
    /// the triangle inequality and are symmetric.
    #[test]
    fn shortest_paths_metric(seed in 0u64..50, n in 5usize..25) {
        let topo = generators::random_geometric(n, 300.0, 120.0, seed).unwrap();
        let sp = ShortestPaths::compute(&topo);
        for a in topo.node_ids() {
            for b in topo.node_ids() {
                prop_assert!((sp.delay(a, b) - sp.delay(b, a)).abs() < 1e-9);
                for c in topo.node_ids() {
                    prop_assert!(sp.delay(a, c) <= sp.delay(a, b) + sp.delay(b, c) + 1e-9);
                }
            }
        }
    }

    /// Walking next-hop chains always reaches the destination and the hop
    /// delays sum to the reported shortest-path delay.
    #[test]
    fn next_hops_reach_destination(seed in 0u64..50, n in 4usize..20) {
        let topo = generators::random_geometric(n, 300.0, 120.0, seed).unwrap();
        let sp = ShortestPaths::compute(&topo);
        for s in topo.node_ids() {
            for t in topo.node_ids() {
                let path = sp.path(s, t).expect("connected graph");
                let mut total = 0.0;
                let mut cur = s;
                for &hop in &path {
                    let l = topo.link_between(cur, hop).expect("consecutive hops adjacent");
                    total += topo.link(l).delay;
                    cur = hop;
                }
                prop_assert_eq!(cur, t);
                prop_assert!((total - sp.delay(s, t)).abs() < 1e-9);
            }
        }
    }

    /// The degree-profile reconstruction hits its stats exactly whenever it
    /// reports success, for arbitrary feasible profiles.
    #[test]
    fn reconstruction_matches_profile(
        seed in 0u64..20,
        n in 8usize..40,
        extra in 0usize..20,
        hub in 3usize..7,
    ) {
        prop_assume!(hub < n - 2);
        let profile = DegreeProfile {
            nodes: n,
            edges: (n - 1) + extra,
            min_degree: 1,
            max_degree: hub,
        };
        if let Ok(t) = generators::reconstruct_degree_profile("p", profile, 500.0, seed) {
            prop_assert_eq!(t.num_nodes(), n);
            prop_assert_eq!(t.num_links(), n - 1 + extra);
            let s = DegreeStats::of(&t);
            prop_assert_eq!(s.min, 1);
            prop_assert_eq!(s.max, hub);
            prop_assert!(t.is_connected());
        }
    }

    /// Neighbor lists are sorted, deduplicated, and mutual.
    #[test]
    fn adjacency_consistent(seed in 0u64..50, n in 3usize..25) {
        let topo = generators::random_geometric(n, 300.0, 100.0, seed).unwrap();
        for v in topo.node_ids() {
            let neigh = topo.neighbors(v);
            for w in neigh.windows(2) {
                prop_assert!(w[0].0 < w[1].0, "sorted and deduped");
            }
            for &(u, l) in neigh {
                prop_assert_ne!(u, v);
                prop_assert_eq!(topo.link(l).other(v), u);
                prop_assert!(topo.neighbors(u).iter().any(|&(x, _)| x == v));
            }
        }
        let max_deg = topo.node_ids().map(|v| topo.degree(v)).max().unwrap();
        prop_assert_eq!(max_deg, topo.network_degree());
    }

    /// Node id round-trip through `Display` stays parseable.
    #[test]
    fn node_id_display(idx in 0usize..1000) {
        let v = NodeId(idx);
        prop_assert_eq!(v.to_string(), format!("v{idx}"));
    }

    /// The churn fast path: after an arbitrary sequence of link/node
    /// removals, restores, and delay overrides, `compute_masked` on the
    /// original topology equals a fresh `compute` on a topology with the
    /// dead entities physically removed and the overridden delays baked
    /// in — including disconnected pairs, which must stay unreachable.
    #[test]
    fn masked_paths_equal_fresh_compute_on_mutated_topology(
        seed in 0u64..30,
        n in 5usize..16,
        ops in proptest::collection::vec(0u64..1_000_000, 0..24),
    ) {
        let topo = generators::random_geometric(n, 300.0, 120.0, seed).unwrap();
        let mut node_up = vec![true; topo.num_nodes()];
        let mut link_up = vec![true; topo.num_links()];
        let mut delays: Vec<f64> = topo.link_ids().map(|l| topo.link(l).delay).collect();
        for &op in &ops {
            // Decode one packed op (the vendored proptest has no tuple
            // strategies): kind, entity index, delay factor.
            let (kind, idx, factor) = (op % 4, (op / 4) as usize % 64, 1 + (op / 256) % 5);
            match kind {
                0 => {
                    let i = idx % link_up.len();
                    link_up[i] = !link_up[i];
                }
                1 => {
                    let i = idx % node_up.len();
                    node_up[i] = !node_up[i];
                }
                2 => {
                    let i = idx % delays.len();
                    delays[i] = topo.link(LinkId(i)).delay * factor as f64;
                }
                _ => {
                    // Explicit restore: entity up, nominal delay.
                    let i = idx % link_up.len();
                    link_up[i] = true;
                    delays[i] = topo.link(LinkId(i)).delay;
                }
            }
        }
        prop_assume!(node_up.iter().any(|&u| u));
        let masked = ShortestPaths::compute_masked(&topo, &node_up, &link_up, &delays);

        // Reference: rebuild the surviving substrate from scratch.
        let mut b = TopologyBuilder::new("mutated");
        let mut map: Vec<Option<NodeId>> = vec![None; topo.num_nodes()];
        for v in topo.node_ids() {
            if node_up[v.0] {
                let node = topo.node(v);
                map[v.0] = Some(b.add_node(node.name.clone(), node.capacity));
            }
        }
        for l in topo.link_ids() {
            if !link_up[l.0] {
                continue;
            }
            let link = topo.link(l);
            if let (Some(a), Some(t)) = (map[link.a.0], map[link.b.0]) {
                b.add_link(a, t, delays[l.0], link.capacity).unwrap();
            }
        }
        let fresh = ShortestPaths::compute(&b.build().unwrap());

        for a in topo.node_ids() {
            for t in topo.node_ids() {
                let got = masked.delay(a, t);
                match (map[a.0], map[t.0]) {
                    (Some(fa), Some(ft)) => {
                        let want = fresh.delay(fa, ft);
                        if want.is_finite() {
                            prop_assert!(
                                (got - want).abs() < 1e-9,
                                "delay({a}, {t}): masked {got} vs fresh {want}"
                            );
                        } else {
                            prop_assert!(
                                got.is_infinite(),
                                "disconnected pair ({a}, {t}) must stay unreachable, got {got}"
                            );
                        }
                    }
                    _ if a == t => prop_assert_eq!(got, 0.0, "self delay survives failure"),
                    _ => prop_assert!(
                        got.is_infinite(),
                        "pair ({a}, {t}) touches a dead node, got {got}"
                    ),
                }
            }
        }
    }
}
