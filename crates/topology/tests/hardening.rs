//! Parser and loader hardening: malformed, degenerate, or disconnected
//! topology inputs must surface typed errors (or documented lenient
//! handling), never panic. Churn configuration compiles schedules against
//! these topologies, so a bad file has to fail loudly at load time.

use dosco_topology::graphml::{self, GraphmlError};
use dosco_topology::{zoo, NodeId, TopologyBuilder, TopologyError};

fn doc(body: &str) -> String {
    format!(
        r#"<?xml version="1.0"?>
<graphml>
  <key attr.name="Latitude" attr.type="double" for="node" id="d29"/>
  <key attr.name="Longitude" attr.type="double" for="node" id="d32"/>
  <graph edgedefault="undirected">
{body}
  </graph>
</graphml>"#
    )
}

#[test]
fn missing_coordinates_fall_back_to_default_delay() {
    // Node 1 has no coordinates at all; node 2 only a latitude. Both are
    // documented Zoo quirks: the parser keeps the node and gives its
    // links the 1 ms default delay instead of erroring or panicking.
    let xml = doc(
        r#"    <node id="0"><data key="d29">40.0</data><data key="d32">-74.0</data></node>
    <node id="1"/>
    <node id="2"><data key="d29">41.0</data></node>
    <edge source="0" target="1"/>
    <edge source="1" target="2"/>
    <edge source="0" target="2"/>"#,
    );
    let topo = graphml::parse(&xml, "partial-coords").unwrap();
    assert_eq!(topo.num_nodes(), 3);
    assert_eq!(topo.num_links(), 3);
    assert_eq!(topo.node(NodeId(1)).position, None);
    assert_eq!(topo.node(NodeId(2)).position, None, "lat without lon is no position");
    for l in topo.links() {
        assert!(l.delay.is_finite() && l.delay > 0.0);
    }
    assert_eq!(topo.link(topo.link_between(NodeId(0), NodeId(1)).unwrap()).delay, 1.0);
}

#[test]
fn duplicate_edges_and_self_loops_collapse() {
    let xml = doc(
        r#"    <node id="a"/>
    <node id="b"/>
    <edge source="a" target="b"/>
    <edge source="b" target="a"/>
    <edge source="a" target="b"/>
    <edge source="a" target="a"/>"#,
    );
    let topo = graphml::parse(&xml, "dupes").unwrap();
    assert_eq!(topo.num_nodes(), 2);
    assert_eq!(topo.num_links(), 1, "parallel edges and self-loops collapse");
}

#[test]
fn edge_to_unknown_node_is_a_typed_error() {
    let xml = doc(
        r#"    <node id="a"/>
    <edge source="a" target="ghost"/>"#,
    );
    let err = graphml::parse(&xml, "ghost").unwrap_err();
    assert_eq!(err, GraphmlError::UnknownNodeRef("ghost".into()));
    assert!(err.to_string().contains("ghost"));
}

#[test]
fn truncated_or_non_xml_input_is_a_typed_error() {
    for src in ["<graphml><graph><node id=", "not xml at all <", "<graphml></graphml>"] {
        match graphml::parse(src, "bad") {
            Err(GraphmlError::Syntax(..)) | Err(GraphmlError::NoGraph) => {}
            other => panic!("{src:?} parsed to {other:?}"),
        }
    }
}

#[test]
fn empty_graph_is_a_typed_error() {
    let xml = doc("");
    let err = graphml::parse(&xml, "empty").unwrap_err();
    assert_eq!(err, GraphmlError::Topology(TopologyError::Empty));
}

#[test]
fn disconnected_zoo_file_loads_but_fails_require_connected() {
    // Two islands: {a, b} and {c, d}. Parsing succeeds (the file is
    // well-formed), but scenario loading must reject it with the typed
    // Disconnected error before a simulation ever sees it.
    let xml = doc(
        r#"    <node id="a"/>
    <node id="b"/>
    <node id="c"/>
    <node id="d"/>
    <edge source="a" target="b"/>
    <edge source="c" target="d"/>"#,
    );
    let topo = graphml::parse(&xml, "islands").unwrap();
    assert!(!topo.is_connected());
    assert_eq!(topo.require_connected(), Err(TopologyError::Disconnected));
    assert_eq!(
        TopologyError::Disconnected.to_string(),
        "topology is not connected"
    );
}

#[test]
fn builder_rejects_degenerate_links_with_typed_errors() {
    let mut b = TopologyBuilder::new("t");
    let a = b.add_node("a", 1.0);
    let c = b.add_node("c", 1.0);
    assert_eq!(b.add_link(a, a, 1.0, 1.0), Err(TopologyError::SelfLoop(a)));
    assert_eq!(
        b.add_link(a, NodeId(9), 1.0, 1.0),
        Err(TopologyError::UnknownNode(NodeId(9)))
    );
    b.add_link(a, c, 1.0, 1.0).unwrap();
    assert_eq!(
        b.add_link(c, a, 2.0, 2.0),
        Err(TopologyError::DuplicateLink(c, a))
    );
    assert!(matches!(
        b.add_link(a, c, f64::NAN, 1.0),
        Err(TopologyError::InvalidValue(_))
    ));
}

#[test]
fn all_zoo_presets_are_connected_and_round_trip() {
    for topo in zoo::all() {
        topo.require_connected()
            .unwrap_or_else(|e| panic!("{}: {e}", topo.name()));
        let xml = graphml::write(&topo);
        let back = graphml::parse(&xml, topo.name()).unwrap();
        assert_eq!(back.num_nodes(), topo.num_nodes(), "{}", topo.name());
        assert_eq!(back.num_links(), topo.num_links(), "{}", topo.name());
        back.require_connected().unwrap();
    }
}
