//! All-pairs shortest path delays and next-hop tables.
//!
//! The paper assumes a fixed topology and link delays, so shortest-path
//! delays `d_{v,v',v_eg}` (from `v` via neighbor `v'` to the egress) can be
//! precomputed and looked up in constant time at runtime (Sec. IV-B1d).

use crate::graph::{LinkId, NodeId, Topology};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Precomputed all-pairs shortest-path delays (by link propagation delay)
/// and next-hop tables for a [`Topology`].
///
/// # Example
///
/// ```
/// use dosco_topology::{paths::ShortestPaths, zoo};
///
/// let topo = zoo::abilene();
/// let sp = ShortestPaths::compute(&topo);
/// let (src, dst) = (topo.node_ids().next().unwrap(), topo.node_ids().last().unwrap());
/// let d = sp.delay(src, dst);
/// assert!(d.is_finite());
/// // Walking the next-hop chain reaches the destination with the same delay.
/// assert_eq!(sp.path(src, dst).unwrap().last().copied(), Some(dst));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ShortestPaths {
    n: usize,
    /// `dist[s * n + t]` = shortest path delay s→t (∞ if unreachable).
    dist: Vec<f64>,
    /// `next_hop[s * n + t]` = first hop on a shortest path s→t.
    next_hop: Vec<Option<NodeId>>,
}

/// Max-heap entry ordered so the *smallest* distance pops first.
#[derive(Debug, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want min-dist first.
        // Distances are finite non-NaN by construction.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl ShortestPaths {
    /// Runs Dijkstra from every node and stores delays plus next hops.
    pub fn compute(topo: &Topology) -> Self {
        let n = topo.num_nodes();
        let mut dist = vec![f64::INFINITY; n * n];
        let mut next_hop: Vec<Option<NodeId>> = vec![None; n * n];

        for s in topo.node_ids() {
            let row = s.0 * n;
            dist[row + s.0] = 0.0;
            let mut heap = BinaryHeap::new();
            heap.push(HeapEntry { dist: 0.0, node: s });
            // first[v] = first hop from s towards v (None for s itself).
            let mut first: Vec<Option<NodeId>> = vec![None; n];
            while let Some(HeapEntry { dist: d, node: v }) = heap.pop() {
                if d > dist[row + v.0] {
                    continue; // stale entry
                }
                for &(w, l) in topo.neighbors(v) {
                    let nd = d + topo.link(l).delay;
                    if nd < dist[row + w.0] {
                        dist[row + w.0] = nd;
                        first[w.0] = if v == s { Some(w) } else { first[v.0] };
                        heap.push(HeapEntry { dist: nd, node: w });
                    }
                }
            }
            next_hop[row..row + n].copy_from_slice(&first);
        }
        ShortestPaths { n, dist, next_hop }
    }

    /// Like [`ShortestPaths::compute`], but on a *masked* view of the
    /// topology: a link is usable only while `link_up[l]` holds and both
    /// endpoints satisfy `node_up[v]`, and its delay is read from
    /// `delays[l]` instead of the topology (churn may spike delays without
    /// rebuilding the graph).
    ///
    /// The relaxation order is identical to a fresh
    /// [`ShortestPaths::compute`] on a topology rebuilt from the surviving
    /// links with the masked delays, so the result — distances *and* next
    /// hops — is exactly equal to that fresh computation (pinned by
    /// proptest). Dead or disconnected pairs have infinite delay; a dead
    /// node still has `delay(v, v) == 0`.
    ///
    /// # Panics
    ///
    /// Panics if a mask or delay slice is shorter than the topology's node
    /// or link count.
    pub fn compute_masked(
        topo: &Topology,
        node_up: &[bool],
        link_up: &[bool],
        delays: &[f64],
    ) -> Self {
        let n = topo.num_nodes();
        assert!(node_up.len() >= n, "node mask covers every node");
        assert!(link_up.len() >= topo.num_links(), "link mask covers every link");
        assert!(delays.len() >= topo.num_links(), "delays cover every link");
        let mut dist = vec![f64::INFINITY; n * n];
        let mut next_hop: Vec<Option<NodeId>> = vec![None; n * n];

        for s in topo.node_ids() {
            let row = s.0 * n;
            dist[row + s.0] = 0.0;
            let mut heap = BinaryHeap::new();
            heap.push(HeapEntry { dist: 0.0, node: s });
            let mut first: Vec<Option<NodeId>> = vec![None; n];
            while let Some(HeapEntry { dist: d, node: v }) = heap.pop() {
                if d > dist[row + v.0] {
                    continue; // stale entry
                }
                for &(w, l) in topo.neighbors(v) {
                    if !link_up[l.0] || !node_up[v.0] || !node_up[w.0] {
                        continue; // masked out by churn
                    }
                    let nd = d + delays[l.0];
                    if nd < dist[row + w.0] {
                        dist[row + w.0] = nd;
                        first[w.0] = if v == s { Some(w) } else { first[v.0] };
                        heap.push(HeapEntry { dist: nd, node: w });
                    }
                }
            }
            next_hop[row..row + n].copy_from_slice(&first);
        }
        ShortestPaths { n, dist, next_hop }
    }

    /// Shortest-path delay from `s` to `t` (0 for `s == t`,
    /// `f64::INFINITY` if unreachable).
    pub fn delay(&self, s: NodeId, t: NodeId) -> f64 {
        self.dist[s.0 * self.n + t.0]
    }

    /// Shortest-path delay from `v` to `t` whose first hop is the neighbor
    /// `via`: `d_l(v,via) + delay(via, t)` (Sec. IV-B1d). The caller must
    /// pass the connecting link's delay; see [`ShortestPaths::delay_via_link`]
    /// for a topology-aware variant.
    pub fn delay_via(&self, link_delay: f64, via: NodeId, t: NodeId) -> f64 {
        link_delay + self.delay(via, t)
    }

    /// Like [`ShortestPaths::delay_via`], looking up the link delay in `topo`.
    ///
    /// Returns `f64::INFINITY` if `via` is not adjacent to `v`.
    pub fn delay_via_link(&self, topo: &Topology, v: NodeId, via: NodeId, t: NodeId) -> f64 {
        match topo.link_between(v, via) {
            Some(l) => topo.link(l).delay + self.delay(via, t),
            None => f64::INFINITY,
        }
    }

    /// First hop on a shortest path from `s` to `t`.
    ///
    /// Returns `None` if `s == t` or `t` is unreachable.
    pub fn next_hop(&self, s: NodeId, t: NodeId) -> Option<NodeId> {
        self.next_hop[s.0 * self.n + t.0]
    }

    /// The full node sequence of a shortest path from `s` to `t`, excluding
    /// `s` itself. Returns `None` if `t` is unreachable; `Some(vec![])` if
    /// `s == t`.
    pub fn path(&self, s: NodeId, t: NodeId) -> Option<Vec<NodeId>> {
        if s == t {
            return Some(Vec::new());
        }
        if !self.delay(s, t).is_finite() {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = s;
        while cur != t {
            let hop = self.next_hop(cur, t)?;
            path.push(hop);
            cur = hop;
            if path.len() > self.n {
                // Defensive: should be impossible on a consistent table.
                return None;
            }
        }
        Some(path)
    }

    /// The network diameter `D_G` in terms of path delay: the maximum finite
    /// shortest-path delay over all node pairs. Used to normalize the
    /// per-hop shaping penalty (Sec. IV-B3).
    pub fn diameter(&self) -> f64 {
        self.dist
            .iter()
            .copied()
            .filter(|d| d.is_finite())
            .fold(0.0, f64::max)
    }

    /// Links on the shortest path from `s` to `t` (empty for `s == t`).
    ///
    /// Returns `None` if `t` is unreachable.
    pub fn path_links(&self, topo: &Topology, s: NodeId, t: NodeId) -> Option<Vec<LinkId>> {
        let nodes = self.path(s, t)?;
        let mut links = Vec::with_capacity(nodes.len());
        let mut cur = s;
        for &nxt in &nodes {
            links.push(topo.link_between(cur, nxt)?);
            cur = nxt;
        }
        Some(links)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TopologyBuilder;

    /// 0 -1- 1 -1- 2
    ///  \----5----/
    fn detour() -> Topology {
        let mut b = TopologyBuilder::new("detour");
        let v0 = b.add_node("a", 1.0);
        let v1 = b.add_node("b", 1.0);
        let v2 = b.add_node("c", 1.0);
        b.add_link(v0, v1, 1.0, 1.0).unwrap();
        b.add_link(v1, v2, 1.0, 1.0).unwrap();
        b.add_link(v0, v2, 5.0, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn picks_cheaper_two_hop_path() {
        let t = detour();
        let sp = ShortestPaths::compute(&t);
        assert_eq!(sp.delay(NodeId(0), NodeId(2)), 2.0);
        assert_eq!(sp.next_hop(NodeId(0), NodeId(2)), Some(NodeId(1)));
        assert_eq!(sp.path(NodeId(0), NodeId(2)), Some(vec![NodeId(1), NodeId(2)]));
    }

    #[test]
    fn self_delay_zero_no_hop() {
        let t = detour();
        let sp = ShortestPaths::compute(&t);
        assert_eq!(sp.delay(NodeId(1), NodeId(1)), 0.0);
        assert_eq!(sp.next_hop(NodeId(1), NodeId(1)), None);
        assert_eq!(sp.path(NodeId(1), NodeId(1)), Some(vec![]));
    }

    #[test]
    fn symmetric_delays_on_undirected_graph() {
        let t = detour();
        let sp = ShortestPaths::compute(&t);
        for a in t.node_ids() {
            for b in t.node_ids() {
                assert_eq!(sp.delay(a, b), sp.delay(b, a));
            }
        }
    }

    #[test]
    fn unreachable_is_infinite() {
        let mut b = TopologyBuilder::new("split");
        let v0 = b.add_node("a", 1.0);
        b.add_node("b", 1.0);
        let t = b.build().unwrap();
        let sp = ShortestPaths::compute(&t);
        assert!(!sp.delay(v0, NodeId(1)).is_finite());
        assert_eq!(sp.path(v0, NodeId(1)), None);
    }

    #[test]
    fn delay_via_matches_definition() {
        let t = detour();
        let sp = ShortestPaths::compute(&t);
        // From 0 via neighbor 2 to 2: direct link of delay 5.
        assert_eq!(sp.delay_via_link(&t, NodeId(0), NodeId(2), NodeId(2)), 5.0);
        // From 0 via neighbor 1 to 2: 1 + 1.
        assert_eq!(sp.delay_via_link(&t, NodeId(0), NodeId(1), NodeId(2)), 2.0);
        // Non-adjacent `via` is infinite.
        let mut b = TopologyBuilder::new("line");
        let v0 = b.add_node("a", 1.0);
        let v1 = b.add_node("b", 1.0);
        let v2 = b.add_node("c", 1.0);
        b.add_link(v0, v1, 1.0, 1.0).unwrap();
        b.add_link(v1, v2, 1.0, 1.0).unwrap();
        let line = b.build().unwrap();
        let lp = ShortestPaths::compute(&line);
        assert!(!lp.delay_via_link(&line, v0, v2, v2).is_finite());
    }

    #[test]
    fn diameter_of_detour() {
        let t = detour();
        let sp = ShortestPaths::compute(&t);
        assert_eq!(sp.diameter(), 2.0);
    }

    #[test]
    fn path_links_cover_path() {
        let t = detour();
        let sp = ShortestPaths::compute(&t);
        let links = sp.path_links(&t, NodeId(0), NodeId(2)).unwrap();
        assert_eq!(links.len(), 2);
        let total: f64 = links.iter().map(|&l| t.link(l).delay).sum();
        assert_eq!(total, sp.delay(NodeId(0), NodeId(2)));
    }

    #[test]
    fn masked_with_everything_up_equals_fresh_compute() {
        let t = crate::zoo::abilene();
        let delays: Vec<f64> = t.link_ids().map(|l| t.link(l).delay).collect();
        let fresh = ShortestPaths::compute(&t);
        let masked = ShortestPaths::compute_masked(
            &t,
            &vec![true; t.num_nodes()],
            &vec![true; t.num_links()],
            &delays,
        );
        assert_eq!(fresh, masked);
    }

    #[test]
    fn masked_dead_link_forces_detour() {
        let t = detour();
        let delays: Vec<f64> = t.link_ids().map(|l| t.link(l).delay).collect();
        let mut link_up = vec![true; t.num_links()];
        // Kill 0-1: the only 0→2 route left is the direct delay-5 link.
        link_up[t.link_between(NodeId(0), NodeId(1)).unwrap().0] = false;
        let sp = ShortestPaths::compute_masked(&t, &[true; 3], &link_up, &delays);
        assert_eq!(sp.delay(NodeId(0), NodeId(2)), 5.0);
        assert_eq!(sp.next_hop(NodeId(0), NodeId(2)), Some(NodeId(2)));
        // 0→1 now detours the long way around: 0→2→1 = 5 + 1.
        assert_eq!(sp.delay(NodeId(0), NodeId(1)), 6.0);
        assert_eq!(sp.next_hop(NodeId(0), NodeId(1)), Some(NodeId(2)));
    }

    #[test]
    fn masked_dead_node_isolates_it_but_keeps_self_delay() {
        let t = detour();
        let delays: Vec<f64> = t.link_ids().map(|l| t.link(l).delay).collect();
        let sp = ShortestPaths::compute_masked(
            &t,
            &[true, false, true],
            &[true; 3],
            &delays,
        );
        assert!(!sp.delay(NodeId(0), NodeId(1)).is_finite());
        assert_eq!(sp.delay(NodeId(1), NodeId(1)), 0.0);
        // 0→2 survives via the direct link, not through the dead node.
        assert_eq!(sp.delay(NodeId(0), NodeId(2)), 5.0);
    }

    #[test]
    fn masked_delay_override_reroutes() {
        let t = detour();
        // Spike the 0-1 link delay so the direct 0-2 link wins.
        let mut delays: Vec<f64> = t.link_ids().map(|l| t.link(l).delay).collect();
        delays[t.link_between(NodeId(0), NodeId(1)).unwrap().0] = 100.0;
        let sp = ShortestPaths::compute_masked(&t, &[true; 3], &[true; 3], &delays);
        assert_eq!(sp.delay(NodeId(0), NodeId(2)), 5.0);
        assert_eq!(sp.next_hop(NodeId(0), NodeId(2)), Some(NodeId(2)));
    }

    #[test]
    fn triangle_inequality_holds_on_zoo_graph() {
        let t = crate::zoo::abilene();
        let sp = ShortestPaths::compute(&t);
        for a in t.node_ids() {
            for b in t.node_ids() {
                for c in t.node_ids() {
                    assert!(
                        sp.delay(a, c) <= sp.delay(a, b) + sp.delay(b, c) + 1e-9,
                        "triangle inequality violated for {a} {b} {c}"
                    );
                }
            }
        }
    }
}
