//! The real-world topologies of the paper's evaluation (Table I).
//!
//! - [`abilene`] reproduces the Abilene / Internet2 backbone **exactly**
//!   (11 nodes, 14 links) from public Internet Topology Zoo data, with link
//!   delays derived from great-circle distances as in the paper.
//! - [`bt_europe`], [`china_telecom`], and [`interroute`] are deterministic
//!   statistical reconstructions matching Table I exactly (node count, edge
//!   count, min/max/avg degree); the original GraphML files are not
//!   redistributed here, but [`crate::graphml::parse`] loads them if you have
//!   them. See DESIGN.md §2 for the substitution rationale.
//!
//! Node indexing follows the paper's convention: the paper's node `v_k`
//! is [`NodeId`]`(k - 1)`. On Abilene, the evaluation uses ingress nodes
//! `v1..v5` ([`ABILENE_INGRESS`]) and egress `v8` ([`ABILENE_EGRESS`]).
//! The assignment of cities to `v1..v11` is chosen to reproduce the
//! behavioral facts the paper states about them: `v1..v3` are close
//! together with overlapping shortest paths to the egress (north-east:
//! Chicago, Indianapolis, New York → Washington DC), `v4` (Houston) and
//! `v5` (Seattle) are farther away with non-overlapping paths, the
//! shortest-path end-to-end delay from `v1`/`v2` plus 3×5 ms processing is
//! ≈21–23 ms as in Fig. 7, and no `v1`/`v2` flow can beat a 20 ms
//! deadline (Fig. 7's leftmost point).

use crate::generators::{reconstruct_degree_profile, DegreeProfile, US_PER_KM};
use crate::graph::{NodeId, Topology, TopologyBuilder};
use crate::stats::TopologyRow;

/// The paper's five candidate ingress nodes on Abilene (`v1..v5`).
///
/// `v1..v3` (Chicago, Indianapolis, New York) are close together so their
/// shortest paths to the egress overlap and compete for shared resources;
/// `v4` (Houston) and `v5` (Seattle) are farther away with disjoint
/// shortest paths (Sec. V-B).
pub const ABILENE_INGRESS: [NodeId; 5] = [NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)];

/// The paper's egress node on Abilene (`v8` = Washington DC).
pub const ABILENE_EGRESS: NodeId = NodeId(7);

/// The Abilene (Internet2) backbone: 11 US cities, 14 links.
///
/// Degrees: min 2, max 3, avg 2.55 — matching Table I. Link delays are
/// derived from great-circle distance at ≈5 µs/km; default capacities are 1,
/// to be overwritten per scenario
/// (e.g. [`Topology::assign_random_capacities`]).
///
/// # Example
///
/// ```
/// use dosco_topology::{stats::DegreeStats, zoo};
///
/// let t = zoo::abilene();
/// assert_eq!(t.num_nodes(), 11);
/// assert_eq!(t.num_links(), 14);
/// assert_eq!(DegreeStats::of(&t).max, 3);
/// ```
pub fn abilene() -> Topology {
    let mut b = TopologyBuilder::new("Abilene");
    // Order encodes the paper's v1..v11 (see module docs).
    let chicago = b.add_node_at("Chicago", 1.0, 41.88, -87.63); // v1
    let indianapolis = b.add_node_at("Indianapolis", 1.0, 39.77, -86.16); // v2
    let newyork = b.add_node_at("NewYork", 1.0, 40.71, -74.01); // v3
    let houston = b.add_node_at("Houston", 1.0, 29.76, -95.37); // v4
    let seattle = b.add_node_at("Seattle", 1.0, 47.61, -122.33); // v5
    let denver = b.add_node_at("Denver", 1.0, 39.74, -104.99); // v6
    let kansascity = b.add_node_at("KansasCity", 1.0, 39.10, -94.58); // v7
    let washington = b.add_node_at("WashingtonDC", 1.0, 38.91, -77.04); // v8 (egress)
    let sunnyvale = b.add_node_at("Sunnyvale", 1.0, 37.37, -122.04); // v9
    let atlanta = b.add_node_at("Atlanta", 1.0, 33.75, -84.39); // v10
    let losangeles = b.add_node_at("LosAngeles", 1.0, 34.05, -118.24); // v11

    let pairs = [
        (seattle, sunnyvale),
        (seattle, denver),
        (sunnyvale, losangeles),
        (sunnyvale, denver),
        (losangeles, houston),
        (denver, kansascity),
        (kansascity, houston),
        (kansascity, indianapolis),
        (houston, atlanta),
        (indianapolis, chicago),
        (indianapolis, atlanta),
        (chicago, newyork),
        (atlanta, washington),
        (newyork, washington),
    ];
    for (a, bb) in pairs {
        b.add_link_geo(a, bb, 1.0, US_PER_KM)
            .expect("Abilene links are valid by construction");
    }
    b.build().expect("Abilene is non-empty")
}

/// BT Europe: 24 nodes, 37 edges, degree 1/13/3.08 (Table I).
///
/// Deterministic statistical reconstruction (hub-dominated European
/// backbone); see the module docs for the substitution rationale.
pub fn bt_europe() -> Topology {
    reconstruct_degree_profile(
        "BT Europe",
        DegreeProfile {
            nodes: 24,
            edges: 37,
            min_degree: 1,
            max_degree: 13,
        },
        2500.0,
        0xB7_E0,
    )
    .expect("BT Europe profile is feasible")
}

/// China Telecom: 42 nodes, 66 edges, degree 1/20/3.14 (Table I).
///
/// The paper highlights this network as *highly skewed* in node degree,
/// which blows up the observation/action space (Δ_G = 20); the
/// reconstruction preserves exactly that skew.
pub fn china_telecom() -> Topology {
    reconstruct_degree_profile(
        "China Telecom",
        DegreeProfile {
            nodes: 42,
            edges: 66,
            min_degree: 1,
            max_degree: 20,
        },
        4000.0,
        0xC11A,
    )
    .expect("China Telecom profile is feasible")
}

/// Interroute: 110 nodes, 158 edges, degree 1/7/2.87 (Table I).
pub fn interroute() -> Topology {
    reconstruct_degree_profile(
        "Interroute",
        DegreeProfile {
            nodes: 110,
            edges: 158,
            min_degree: 1,
            max_degree: 7,
        },
        3000.0,
        0x1417,
    )
    .expect("Interroute profile is feasible")
}

/// All four evaluation topologies in Table I order.
pub fn all() -> Vec<Topology> {
    vec![abilene(), bt_europe(), china_telecom(), interroute()]
}

/// The rows of Table I, computed from the bundled topologies.
pub fn table1() -> Vec<TopologyRow> {
    all().iter().map(TopologyRow::of).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::ShortestPaths;
    use crate::stats::DegreeStats;

    #[test]
    fn abilene_matches_table1() {
        let t = abilene();
        assert_eq!(t.num_nodes(), 11);
        assert_eq!(t.num_links(), 14);
        let s = DegreeStats::of(&t);
        assert_eq!((s.min, s.max), (2, 3));
        assert!((s.avg - 2.545).abs() < 0.01);
        assert!(t.is_connected());
    }

    #[test]
    fn bt_europe_matches_table1() {
        let t = bt_europe();
        assert_eq!(t.num_nodes(), 24);
        assert_eq!(t.num_links(), 37);
        let s = DegreeStats::of(&t);
        assert_eq!((s.min, s.max), (1, 13));
        assert!((s.avg - 3.083).abs() < 0.01);
        assert!(t.is_connected());
    }

    #[test]
    fn china_telecom_matches_table1() {
        let t = china_telecom();
        assert_eq!(t.num_nodes(), 42);
        assert_eq!(t.num_links(), 66);
        let s = DegreeStats::of(&t);
        assert_eq!((s.min, s.max), (1, 20));
        assert!((s.avg - 66.0 * 2.0 / 42.0).abs() < 0.01);
        assert!(t.is_connected());
    }

    #[test]
    fn interroute_matches_table1() {
        let t = interroute();
        assert_eq!(t.num_nodes(), 110);
        assert_eq!(t.num_links(), 158);
        let s = DegreeStats::of(&t);
        assert_eq!((s.min, s.max), (1, 7));
        assert!((s.avg - 2.872).abs() < 0.01);
        assert!(t.is_connected());
    }

    #[test]
    fn abilene_ingress_geography() {
        let t = abilene();
        let sp = ShortestPaths::compute(&t);
        // v1 (Chicago) transits New York (v3): overlapping resources in
        // the north-east cluster.
        let p1 = sp.path(NodeId(0), ABILENE_EGRESS).unwrap();
        assert!(p1.contains(&NodeId(2)), "Chicago should transit NY, got {p1:?}");
        // v3 (New York) is one hop from the egress (Washington DC).
        assert_eq!(sp.path(NodeId(2), ABILENE_EGRESS), Some(vec![ABILENE_EGRESS]));
        // v4 (Houston) goes the disjoint southern way via Atlanta.
        let p4 = sp.path(NodeId(3), ABILENE_EGRESS).unwrap();
        assert!(p4.contains(&NodeId(9)), "Houston should transit Atlanta, got {p4:?}");
        assert!(!p4.contains(&NodeId(2)));
        // v5 (Seattle) is far away.
        let d5 = sp.delay(NodeId(4), ABILENE_EGRESS);
        assert!(d5 > 2.0 * sp.delay(NodeId(0), ABILENE_EGRESS));
    }

    #[test]
    fn abilene_v1_v2_sp_delay_matches_fig7() {
        // Fig. 7: SP end-to-end delay is ~21 ms with 15 ms total
        // processing, so the mean v1/v2 path delay must be ~5-9 ms — and
        // no v1/v2 flow may beat a 20 ms deadline (min path delay > 5 ms).
        let t = abilene();
        let sp = ShortestPaths::compute(&t);
        let d1 = sp.delay(NodeId(0), ABILENE_EGRESS);
        let d2 = sp.delay(NodeId(1), ABILENE_EGRESS);
        let mean = (d1 + d2) / 2.0;
        assert!(mean > 5.0 && mean < 9.5, "mean v1/v2 path delay {mean} ms");
        assert!(d1.min(d2) > 5.0, "τ=20 must be infeasible: {d1} {d2}");
    }

    #[test]
    fn zoo_is_deterministic() {
        assert_eq!(bt_europe(), bt_europe());
        assert_eq!(china_telecom(), china_telecom());
        assert_eq!(interroute(), interroute());
    }

    #[test]
    fn table1_has_four_rows_in_paper_order() {
        let rows = table1();
        let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["Abilene", "BT Europe", "China Telecom", "Interroute"]
        );
    }
}
