//! The substrate network graph `G = (V, L)`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a substrate node `v ∈ V`.
///
/// Node ids are dense indices `0..num_nodes`, so they can be used directly to
/// index per-node state vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// Identifier of an undirected substrate link `l ∈ L`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// A substrate node with generic compute capacity `cap_v` (Sec. III-A).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Human-readable name (e.g. the city in a backbone topology).
    pub name: String,
    /// Generic compute capacity `cap_v ≥ 0`.
    pub capacity: f64,
    /// Optional geographic position `(latitude, longitude)` in degrees,
    /// used to derive link delays from distance.
    pub position: Option<(f64, f64)>,
}

/// An undirected link with propagation delay `d_l` and a maximum data rate
/// `cap_l` shared in both directions (Sec. III-A).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Propagation delay `d_l` in milliseconds.
    pub delay: f64,
    /// Maximum data rate `cap_l`, shared in both directions.
    pub capacity: f64,
}

impl Link {
    /// Returns the endpoint opposite to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not an endpoint of this link.
    pub fn other(&self, v: NodeId) -> NodeId {
        if v == self.a {
            self.b
        } else if v == self.b {
            self.a
        } else {
            panic!("{v} is not an endpoint of link ({}, {})", self.a, self.b)
        }
    }
}

/// Errors raised while constructing a [`Topology`].
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyError {
    /// A link references a node id that was never added.
    UnknownNode(NodeId),
    /// A link connects a node to itself.
    SelfLoop(NodeId),
    /// The same node pair is connected by more than one link.
    DuplicateLink(NodeId, NodeId),
    /// A capacity or delay is negative or non-finite.
    InvalidValue(String),
    /// The topology has no nodes.
    Empty,
    /// The topology is not connected (some node pair is unreachable).
    Disconnected,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownNode(v) => write!(f, "link references unknown node {v}"),
            TopologyError::SelfLoop(v) => write!(f, "self-loop at node {v}"),
            TopologyError::DuplicateLink(a, b) => {
                write!(f, "duplicate link between {a} and {b}")
            }
            TopologyError::InvalidValue(what) => write!(f, "invalid value: {what}"),
            TopologyError::Empty => write!(f, "topology has no nodes"),
            TopologyError::Disconnected => write!(f, "topology is not connected"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// The undirected substrate network `G = (V, L)`.
///
/// Construct one with [`TopologyBuilder`], from the [`crate::zoo`] presets,
/// the [`crate::generators`], or [`crate::graphml::parse`].
///
/// # Example
///
/// ```
/// use dosco_topology::{Topology, TopologyBuilder};
///
/// # fn main() -> Result<(), dosco_topology::TopologyError> {
/// let mut b = TopologyBuilder::new("triangle");
/// let v0 = b.add_node("a", 1.0);
/// let v1 = b.add_node("b", 1.0);
/// let v2 = b.add_node("c", 1.0);
/// b.add_link(v0, v1, 1.0, 5.0)?;
/// b.add_link(v1, v2, 1.0, 5.0)?;
/// b.add_link(v2, v0, 1.0, 5.0)?;
/// let topo: Topology = b.build()?;
/// assert_eq!(topo.degree(v0), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    name: String,
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// adjacency: for each node, `(neighbor, link)` pairs sorted by neighbor id.
    adj: Vec<Vec<(NodeId, LinkId)>>,
}

impl Topology {
    /// The topology's name (e.g. `"Abilene"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes `|V|`.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of undirected links `|L|`.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// All nodes, indexable by [`NodeId`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All links, indexable by [`LinkId`].
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The node with id `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn node(&self, v: NodeId) -> &Node {
        &self.nodes[v.0]
    }

    /// The link with id `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn link(&self, l: LinkId) -> &Link {
        &self.links[l.0]
    }

    /// Iterator over all node ids `0..|V|`.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Iterator over all link ids `0..|L|`.
    pub fn link_ids(&self) -> impl ExactSizeIterator<Item = LinkId> {
        (0..self.links.len()).map(LinkId)
    }

    /// The neighbors `V_v` of node `v` with the connecting links `L_v`,
    /// sorted by neighbor id. The *i*-th entry is the node's *i*-th neighbor
    /// as addressed by DRL action `a = i + 1` (Sec. IV-B2).
    pub fn neighbors(&self, v: NodeId) -> &[(NodeId, LinkId)] {
        &self.adj[v.0]
    }

    /// Degree of node `v`, i.e. `|V_v|`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v.0].len()
    }

    /// The network degree `Δ_G`: the maximum node degree. Observation and
    /// action space sizes depend only on this (Sec. IV-B).
    pub fn network_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The link between `a` and `b`, if any.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.adj[a.0]
            .iter()
            .find(|(n, _)| *n == b)
            .map(|&(_, l)| l)
    }

    /// Maximum link capacity over the outgoing links `L_v` of `v`.
    ///
    /// Used to normalize the link-utilization observation `R_v^L`
    /// (Sec. IV-B1b). Returns 0.0 for isolated nodes.
    pub fn max_outgoing_link_capacity(&self, v: NodeId) -> f64 {
        self.adj[v.0]
            .iter()
            .map(|&(_, l)| self.links[l.0].capacity)
            .fold(0.0, f64::max)
    }

    /// Maximum node capacity over *all* nodes, used to normalize the
    /// node-utilization observation `R_v^V` (Sec. IV-B1c).
    pub fn max_node_capacity(&self) -> f64 {
        self.nodes.iter().map(|n| n.capacity).fold(0.0, f64::max)
    }

    /// Node capacities in node-id order — the denominators for
    /// utilization telemetry sampled against per-node usage vectors.
    pub fn node_capacities(&self) -> impl ExactSizeIterator<Item = f64> + '_ {
        self.nodes.iter().map(|n| n.capacity)
    }

    /// Link capacities in link-id order (see [`Self::node_capacities`]).
    pub fn link_capacities(&self) -> impl ExactSizeIterator<Item = f64> + '_ {
        self.links.iter().map(|l| l.capacity)
    }

    /// Whether the graph is connected (every node reachable from node 0).
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &(n, _) in &self.adj[v.0] {
                if !seen[n.0] {
                    seen[n.0] = true;
                    count += 1;
                    stack.push(n);
                }
            }
        }
        count == self.nodes.len()
    }

    /// Errors with [`TopologyError::Disconnected`] unless the graph is
    /// connected. Scenario loaders call this to reject Topology-Zoo files
    /// with isolated islands up front (a disconnected substrate would make
    /// some ingress/egress pairs unreachable by construction) instead of
    /// failing later inside a simulation.
    pub fn require_connected(&self) -> Result<(), TopologyError> {
        if self.is_connected() {
            Ok(())
        } else {
            Err(TopologyError::Disconnected)
        }
    }

    /// Overwrites node and link capacities with uniformly random values, as
    /// in the paper's base scenario (node capacity `U(lo,hi)`, link capacity
    /// `U(lo,hi)`; Sec. V-A1).
    ///
    /// Uses the provided RNG so scenarios stay reproducible under a seed.
    pub fn assign_random_capacities<R: rand::Rng>(
        &mut self,
        rng: &mut R,
        node_range: (f64, f64),
        link_range: (f64, f64),
    ) {
        for n in &mut self.nodes {
            n.capacity = rng.gen_range(node_range.0..=node_range.1);
        }
        for l in &mut self.links {
            l.capacity = rng.gen_range(link_range.0..=link_range.1);
        }
    }

    /// Scales every node and link capacity by the given factors. Useful for
    /// load-scaling ablations.
    pub fn scale_capacities(&mut self, node_factor: f64, link_factor: f64) {
        for n in &mut self.nodes {
            n.capacity *= node_factor;
        }
        for l in &mut self.links {
            l.capacity *= link_factor;
        }
    }
}

/// Incremental builder for [`Topology`] (non-consuming for node/link adds,
/// consuming `build`).
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    name: String,
    nodes: Vec<Node>,
    links: Vec<Link>,
}

impl TopologyBuilder {
    /// Starts a new, empty topology with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        TopologyBuilder {
            name: name.into(),
            nodes: Vec::new(),
            links: Vec::new(),
        }
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, name: impl Into<String>, capacity: f64) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            name: name.into(),
            capacity,
            position: None,
        });
        id
    }

    /// Adds a node with a geographic position and returns its id.
    pub fn add_node_at(
        &mut self,
        name: impl Into<String>,
        capacity: f64,
        lat: f64,
        lon: f64,
    ) -> NodeId {
        let id = self.add_node(name, capacity);
        self.nodes[id.0].position = Some((lat, lon));
        id
    }

    /// Adds an undirected link between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown endpoints, self-loops, duplicate links,
    /// or negative/non-finite delay or capacity.
    pub fn add_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        delay: f64,
        capacity: f64,
    ) -> Result<LinkId, TopologyError> {
        if a.0 >= self.nodes.len() {
            return Err(TopologyError::UnknownNode(a));
        }
        if b.0 >= self.nodes.len() {
            return Err(TopologyError::UnknownNode(b));
        }
        if a == b {
            return Err(TopologyError::SelfLoop(a));
        }
        if !delay.is_finite() || delay < 0.0 {
            return Err(TopologyError::InvalidValue(format!(
                "link delay {delay} must be finite and ≥ 0"
            )));
        }
        if !capacity.is_finite() || capacity < 0.0 {
            return Err(TopologyError::InvalidValue(format!(
                "link capacity {capacity} must be finite and ≥ 0"
            )));
        }
        if self
            .links
            .iter()
            .any(|l| (l.a == a && l.b == b) || (l.a == b && l.b == a))
        {
            return Err(TopologyError::DuplicateLink(a, b));
        }
        let id = LinkId(self.links.len());
        self.links.push(Link {
            a,
            b,
            delay,
            capacity,
        });
        Ok(id)
    }

    /// Adds an undirected link whose delay is derived from the great-circle
    /// distance between the endpoints' geographic positions, at
    /// `us_per_km` microseconds per kilometer (≈5 µs/km in fiber).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidValue`] if either endpoint has no
    /// position, plus all errors of [`TopologyBuilder::add_link`].
    pub fn add_link_geo(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity: f64,
        us_per_km: f64,
    ) -> Result<LinkId, TopologyError> {
        let pa = self
            .nodes
            .get(a.0)
            .and_then(|n| n.position)
            .ok_or_else(|| TopologyError::InvalidValue(format!("node {a} has no position")))?;
        let pb = self
            .nodes
            .get(b.0)
            .and_then(|n| n.position)
            .ok_or_else(|| TopologyError::InvalidValue(format!("node {b} has no position")))?;
        let km = great_circle_km(pa, pb);
        let delay_ms = km * us_per_km / 1000.0;
        self.add_link(a, b, delay_ms, capacity)
    }

    /// Validates and builds the topology.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::Empty`] if no nodes were added, or
    /// [`TopologyError::InvalidValue`] for invalid node capacities.
    pub fn build(self) -> Result<Topology, TopologyError> {
        if self.nodes.is_empty() {
            return Err(TopologyError::Empty);
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if !n.capacity.is_finite() || n.capacity < 0.0 {
                return Err(TopologyError::InvalidValue(format!(
                    "node {} capacity {} must be finite and ≥ 0",
                    NodeId(i),
                    n.capacity
                )));
            }
        }
        let mut adj: Vec<Vec<(NodeId, LinkId)>> = vec![Vec::new(); self.nodes.len()];
        for (i, l) in self.links.iter().enumerate() {
            adj[l.a.0].push((l.b, LinkId(i)));
            adj[l.b.0].push((l.a, LinkId(i)));
        }
        for a in &mut adj {
            a.sort_by_key(|&(n, _)| n);
        }
        Ok(Topology {
            name: self.name,
            nodes: self.nodes,
            links: self.links,
            adj,
        })
    }
}

/// Great-circle distance in kilometers between two `(lat, lon)` points in
/// degrees (haversine formula, mean Earth radius 6371 km).
pub fn great_circle_km(a: (f64, f64), b: (f64, f64)) -> f64 {
    const R: f64 = 6371.0;
    let (la1, lo1) = (a.0.to_radians(), a.1.to_radians());
    let (la2, lo2) = (b.0.to_radians(), b.1.to_radians());
    let dla = la2 - la1;
    let dlo = lo2 - lo1;
    let h = (dla / 2.0).sin().powi(2) + la1.cos() * la2.cos() * (dlo / 2.0).sin().powi(2);
    2.0 * R * h.sqrt().asin()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Topology {
        let mut b = TopologyBuilder::new("triangle");
        let v0 = b.add_node("a", 1.0);
        let v1 = b.add_node("b", 2.0);
        let v2 = b.add_node("c", 3.0);
        b.add_link(v0, v1, 1.0, 5.0).unwrap();
        b.add_link(v1, v2, 2.0, 4.0).unwrap();
        b.add_link(v2, v0, 3.0, 3.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builds_triangle() {
        let t = triangle();
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_links(), 3);
        assert_eq!(t.network_degree(), 2);
        assert!(t.is_connected());
        assert_eq!(t.max_node_capacity(), 3.0);
    }

    #[test]
    fn capacity_iterators_follow_id_order() {
        let t = triangle();
        let nodes: Vec<f64> = t.node_capacities().collect();
        assert_eq!(nodes, vec![1.0, 2.0, 3.0]);
        let links: Vec<f64> = t.link_capacities().collect();
        assert_eq!(links, vec![5.0, 4.0, 3.0]);
        assert_eq!(t.node_capacities().len(), t.num_nodes());
        assert_eq!(t.link_capacities().len(), t.num_links());
    }

    #[test]
    fn neighbors_sorted_by_id() {
        let t = triangle();
        let n: Vec<NodeId> = t.neighbors(NodeId(2)).iter().map(|&(v, _)| v).collect();
        assert_eq!(n, vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn link_other_endpoint() {
        let t = triangle();
        let l = t.link(LinkId(0));
        assert_eq!(l.other(NodeId(0)), NodeId(1));
        assert_eq!(l.other(NodeId(1)), NodeId(0));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn link_other_panics_for_non_endpoint() {
        let t = triangle();
        t.link(LinkId(0)).other(NodeId(2));
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = TopologyBuilder::new("t");
        let v0 = b.add_node("a", 1.0);
        assert_eq!(b.add_link(v0, v0, 1.0, 1.0), Err(TopologyError::SelfLoop(v0)));
    }

    #[test]
    fn rejects_duplicate_link_either_direction() {
        let mut b = TopologyBuilder::new("t");
        let v0 = b.add_node("a", 1.0);
        let v1 = b.add_node("b", 1.0);
        b.add_link(v0, v1, 1.0, 1.0).unwrap();
        assert!(matches!(
            b.add_link(v1, v0, 1.0, 1.0),
            Err(TopologyError::DuplicateLink(..))
        ));
    }

    #[test]
    fn rejects_unknown_node() {
        let mut b = TopologyBuilder::new("t");
        let v0 = b.add_node("a", 1.0);
        assert_eq!(
            b.add_link(v0, NodeId(7), 1.0, 1.0),
            Err(TopologyError::UnknownNode(NodeId(7)))
        );
    }

    #[test]
    fn rejects_negative_delay_and_capacity() {
        let mut b = TopologyBuilder::new("t");
        let v0 = b.add_node("a", 1.0);
        let v1 = b.add_node("b", 1.0);
        assert!(matches!(
            b.add_link(v0, v1, -1.0, 1.0),
            Err(TopologyError::InvalidValue(_))
        ));
        assert!(matches!(
            b.add_link(v0, v1, 1.0, f64::NAN),
            Err(TopologyError::InvalidValue(_))
        ));
    }

    #[test]
    fn rejects_empty_topology() {
        assert_eq!(
            TopologyBuilder::new("e").build().unwrap_err(),
            TopologyError::Empty
        );
    }

    #[test]
    fn rejects_invalid_node_capacity() {
        let mut b = TopologyBuilder::new("t");
        b.add_node("a", f64::INFINITY);
        assert!(matches!(b.build(), Err(TopologyError::InvalidValue(_))));
    }

    #[test]
    fn disconnected_graph_detected() {
        let mut b = TopologyBuilder::new("t");
        b.add_node("a", 1.0);
        b.add_node("b", 1.0);
        let t = b.build().unwrap();
        assert!(!t.is_connected());
    }

    #[test]
    fn geo_link_delay_positive_and_symmetricish() {
        let mut b = TopologyBuilder::new("geo");
        let ny = b.add_node_at("NewYork", 1.0, 40.71, -74.01);
        let chi = b.add_node_at("Chicago", 1.0, 41.88, -87.63);
        let l = b.add_link_geo(ny, chi, 5.0, 5.0).unwrap();
        let t = b.build().unwrap();
        let d = t.link(l).delay;
        // NY-Chicago is ~1150 km -> ~5.7 ms at 5 us/km.
        assert!(d > 4.0 && d < 8.0, "delay {d}");
    }

    #[test]
    fn random_capacities_within_range() {
        use rand::SeedableRng;
        let mut t = triangle();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        t.assign_random_capacities(&mut rng, (0.0, 2.0), (1.0, 5.0));
        for n in t.nodes() {
            assert!((0.0..=2.0).contains(&n.capacity));
        }
        for l in t.links() {
            assert!((1.0..=5.0).contains(&l.capacity));
        }
    }

    #[test]
    fn scale_capacities() {
        let mut t = triangle();
        t.scale_capacities(2.0, 0.5);
        assert_eq!(t.node(NodeId(1)).capacity, 4.0);
        assert_eq!(t.link(LinkId(0)).capacity, 2.5);
    }

    #[test]
    fn great_circle_known_distance() {
        // London (51.5, -0.12) to Paris (48.85, 2.35) ~ 343 km.
        let d = great_circle_km((51.5, -0.12), (48.85, 2.35));
        assert!((330.0..360.0).contains(&d), "{d}");
    }

    #[test]
    fn serde_round_trip() {
        let t = triangle();
        let json = serde_json::to_string(&t).unwrap();
        let back: Topology = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
