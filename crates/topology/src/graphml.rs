//! Minimal GraphML parser for the Internet Topology Zoo subset.
//!
//! The paper's evaluation topologies come from the Internet Topology Zoo
//! [Knight et al., JSAC 2011], distributed as GraphML files. This module
//! parses exactly the subset those files use — `<key>` declarations,
//! `<node>`/`<edge>` elements, and `<data>` values for node latitude and
//! longitude — with a small hand-rolled XML tokenizer (no external XML
//! dependency). Link delays are derived from node positions at ≈5 µs/km
//! when both endpoints have coordinates, matching the paper's
//! "derive link delay from the distance between connected nodes".
//!
//! # Example
//!
//! ```
//! const SAMPLE: &str = r#"<?xml version="1.0"?>
//! <graphml>
//!   <key attr.name="Latitude" attr.type="double" for="node" id="d29"/>
//!   <key attr.name="Longitude" attr.type="double" for="node" id="d32"/>
//!   <graph edgedefault="undirected">
//!     <node id="0"><data key="d29">40.71</data><data key="d32">-74.01</data></node>
//!     <node id="1"><data key="d29">41.88</data><data key="d32">-87.63</data></node>
//!     <edge source="0" target="1"/>
//!   </graph>
//! </graphml>"#;
//!
//! let topo = dosco_topology::graphml::parse(SAMPLE, "sample")?;
//! assert_eq!(topo.num_nodes(), 2);
//! assert_eq!(topo.num_links(), 1);
//! # Ok::<(), dosco_topology::graphml::GraphmlError>(())
//! ```

use crate::generators::US_PER_KM;
use crate::graph::{NodeId, Topology, TopologyBuilder, TopologyError};
use std::collections::HashMap;
use std::fmt;

/// Errors raised while parsing GraphML.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphmlError {
    /// Malformed XML at the given byte offset.
    Syntax(usize, String),
    /// An `<edge>` references an undeclared node id.
    UnknownNodeRef(String),
    /// Structural error while assembling the topology.
    Topology(TopologyError),
    /// The document contains no `<graph>` element.
    NoGraph,
}

impl fmt::Display for GraphmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphmlError::Syntax(pos, what) => write!(f, "XML syntax error at byte {pos}: {what}"),
            GraphmlError::UnknownNodeRef(id) => write!(f, "edge references unknown node {id:?}"),
            GraphmlError::Topology(e) => write!(f, "invalid topology: {e}"),
            GraphmlError::NoGraph => write!(f, "document contains no <graph> element"),
        }
    }
}

impl std::error::Error for GraphmlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphmlError::Topology(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TopologyError> for GraphmlError {
    fn from(e: TopologyError) -> Self {
        GraphmlError::Topology(e)
    }
}

/// One XML event produced by the tokenizer.
#[derive(Debug, Clone, PartialEq)]
enum Event {
    /// `<name attr=... >` — `self_closing` for `<name ... />`.
    Open {
        name: String,
        attrs: HashMap<String, String>,
        self_closing: bool,
    },
    /// `</name>`
    Close(String),
    /// Text between tags (entity-decoded, possibly whitespace).
    Text(String),
}

/// A minimal, forgiving XML tokenizer for the GraphML subset: elements,
/// attributes, text, comments, processing instructions, and DOCTYPE. No
/// namespaces, CDATA, or DTD expansion.
struct Tokenizer<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Tokenizer<'a> {
    fn new(src: &'a str) -> Self {
        Tokenizer { src, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn error(&self, what: impl Into<String>) -> GraphmlError {
        GraphmlError::Syntax(self.pos, what.into())
    }

    fn next_event(&mut self) -> Result<Option<Event>, GraphmlError> {
        loop {
            if self.pos >= self.src.len() {
                return Ok(None);
            }
            let rest = self.rest();
            if let Some(stripped) = rest.strip_prefix("<!--") {
                let end = stripped
                    .find("-->")
                    .ok_or_else(|| self.error("unterminated comment"))?;
                self.pos += 4 + end + 3;
                continue;
            }
            if rest.starts_with("<?") {
                let end = rest
                    .find("?>")
                    .ok_or_else(|| self.error("unterminated processing instruction"))?;
                self.pos += end + 2;
                continue;
            }
            if rest.starts_with("<!") {
                let end = rest
                    .find('>')
                    .ok_or_else(|| self.error("unterminated declaration"))?;
                self.pos += end + 1;
                continue;
            }
            if let Some(stripped) = rest.strip_prefix("</") {
                let end = stripped
                    .find('>')
                    .ok_or_else(|| self.error("unterminated closing tag"))?;
                let name = stripped[..end].trim().to_string();
                self.pos += 2 + end + 1;
                return Ok(Some(Event::Close(name)));
            }
            if rest.starts_with('<') {
                return self.parse_open_tag().map(Some);
            }
            // Text up to the next tag.
            let end = rest.find('<').unwrap_or(rest.len());
            let text = decode_entities(&rest[..end]);
            self.pos += end;
            if text.trim().is_empty() {
                continue;
            }
            return Ok(Some(Event::Text(text)));
        }
    }

    fn parse_open_tag(&mut self) -> Result<Event, GraphmlError> {
        debug_assert!(self.rest().starts_with('<'));
        self.pos += 1;
        let name = self.parse_name()?;
        let mut attrs = HashMap::new();
        loop {
            self.skip_ws();
            let rest = self.rest();
            if let Some(_stripped) = rest.strip_prefix("/>") {
                self.pos += 2;
                return Ok(Event::Open {
                    name,
                    attrs,
                    self_closing: true,
                });
            }
            if rest.starts_with('>') {
                self.pos += 1;
                return Ok(Event::Open {
                    name,
                    attrs,
                    self_closing: false,
                });
            }
            if rest.is_empty() {
                return Err(self.error("unterminated opening tag"));
            }
            let key = self.parse_name()?;
            self.skip_ws();
            if !self.rest().starts_with('=') {
                return Err(self.error(format!("expected '=' after attribute {key:?}")));
            }
            self.pos += 1;
            self.skip_ws();
            let quote = self
                .rest()
                .chars()
                .next()
                .ok_or_else(|| self.error("unterminated attribute value"))?;
            if quote != '"' && quote != '\'' {
                return Err(self.error("attribute value must be quoted"));
            }
            self.pos += 1;
            let rest = self.rest();
            let end = rest
                .find(quote)
                .ok_or_else(|| self.error("unterminated attribute value"))?;
            attrs.insert(key, decode_entities(&rest[..end]));
            self.pos += end + 1;
        }
    }

    fn parse_name(&mut self) -> Result<String, GraphmlError> {
        let rest = self.rest();
        let end = rest
            .find(|c: char| c.is_whitespace() || c == '>' || c == '/' || c == '=')
            .unwrap_or(rest.len());
        if end == 0 {
            return Err(self.error("expected a name"));
        }
        let name = rest[..end].to_string();
        self.pos += end;
        Ok(name)
    }

    fn skip_ws(&mut self) {
        let rest = self.rest();
        let trimmed = rest.trim_start();
        self.pos += rest.len() - trimmed.len();
    }
}

fn decode_entities(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

/// Parses a Topology Zoo GraphML document into a [`Topology`].
///
/// Node latitude/longitude `<data>` values (declared via
/// `<key attr.name="Latitude"/Longitude" for="node">`) become node
/// positions; link delays are derived from great-circle distance at
/// ≈5 µs/km when both endpoints have positions, and default to 1 ms
/// otherwise. All capacities default to 1 (assign per scenario). Duplicate
/// edges and self-loops, which occur in some Zoo files, are skipped.
///
/// # Errors
///
/// Returns a [`GraphmlError`] for malformed XML, edges referencing unknown
/// nodes, or documents without a `<graph>`.
pub fn parse(xml: &str, name: &str) -> Result<Topology, GraphmlError> {
    let mut tok = Tokenizer::new(xml);
    // key id -> attr.name (node keys only)
    let mut node_keys: HashMap<String, String> = HashMap::new();
    let mut ids: HashMap<String, NodeId> = HashMap::new();
    let mut raw_ids: Vec<String> = Vec::new();
    let mut positions: Vec<(Option<f64>, Option<f64>)> = Vec::new();
    let mut labels: Vec<Option<String>> = Vec::new();
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut saw_graph = false;

    // Parsing state: inside which node, and the pending <data> key.
    let mut current_node: Option<NodeId> = None;
    let mut current_data_key: Option<String> = None;

    while let Some(ev) = tok.next_event()? {
        match ev {
            Event::Open {
                name: tag,
                attrs,
                self_closing,
            } => match tag.as_str() {
                "graph" => saw_graph = true,
                "key" if attrs.get("for").map(String::as_str) == Some("node") => {
                    if let (Some(id), Some(attr_name)) =
                        (attrs.get("id"), attrs.get("attr.name"))
                    {
                        node_keys.insert(id.clone(), attr_name.clone());
                    }
                }
                "node" => {
                    let raw = attrs
                        .get("id")
                        .cloned()
                        .ok_or_else(|| GraphmlError::Syntax(0, "<node> without id".into()))?;
                    let v = NodeId(raw_ids.len());
                    ids.insert(raw.clone(), v);
                    raw_ids.push(raw);
                    positions.push((None, None));
                    labels.push(None);
                    if !self_closing {
                        current_node = Some(v);
                    }
                }
                "edge" => {
                    let s = attrs
                        .get("source")
                        .ok_or_else(|| GraphmlError::Syntax(0, "<edge> without source".into()))?;
                    let t = attrs
                        .get("target")
                        .ok_or_else(|| GraphmlError::Syntax(0, "<edge> without target".into()))?;
                    let sv = *ids
                        .get(s)
                        .ok_or_else(|| GraphmlError::UnknownNodeRef(s.clone()))?;
                    let tv = *ids
                        .get(t)
                        .ok_or_else(|| GraphmlError::UnknownNodeRef(t.clone()))?;
                    edges.push((sv, tv));
                }
                "data" if current_node.is_some() && !self_closing => {
                    current_data_key = attrs.get("key").cloned();
                }
                _ => {}
            },
            Event::Close(tag) => match tag.as_str() {
                "node" => current_node = None,
                "data" => current_data_key = None,
                _ => {}
            },
            Event::Text(text) => {
                if let (Some(v), Some(key)) = (current_node, current_data_key.as_ref()) {
                    match node_keys.get(key).map(String::as_str) {
                        Some("Latitude") => {
                            if let Ok(lat) = text.trim().parse::<f64>() {
                                positions[v.0].0 = Some(lat);
                            }
                        }
                        Some("Longitude") => {
                            if let Ok(lon) = text.trim().parse::<f64>() {
                                positions[v.0].1 = Some(lon);
                            }
                        }
                        Some("label") | Some("Label") => {
                            labels[v.0] = Some(text.trim().to_string());
                        }
                        _ => {}
                    }
                }
            }
        }
    }
    if !saw_graph {
        return Err(GraphmlError::NoGraph);
    }

    // Re-add nodes with positions and labels: rebuild the builder so the
    // geo-delay helper sees positions.
    let mut b = TopologyBuilder::new(name);
    for (i, (lat, lon)) in positions.iter().enumerate() {
        let label = labels[i].clone().unwrap_or_else(|| raw_ids[i].clone());
        match (lat, lon) {
            (Some(la), Some(lo)) => {
                b.add_node_at(label, 1.0, *la, *lo);
            }
            _ => {
                b.add_node(label, 1.0);
            }
        }
    }
    let mut seen: Vec<(NodeId, NodeId)> = Vec::new();
    for (s, t) in edges {
        if s == t {
            continue; // some Zoo files carry self-loops; skip them
        }
        let key = if s < t { (s, t) } else { (t, s) };
        if seen.contains(&key) {
            continue; // parallel edges collapse to one
        }
        seen.push(key);
        let both_positioned =
            positions[s.0].0.is_some() && positions[s.0].1.is_some() && positions[t.0].0.is_some() && positions[t.0].1.is_some();
        if both_positioned {
            b.add_link_geo(s, t, 1.0, US_PER_KM)?;
        } else {
            b.add_link(s, t, 1.0, 1.0)?;
        }
    }
    Ok(b.build()?)
}

/// Serializes a topology to Topology-Zoo-style GraphML (node positions and
/// labels included). The output round-trips through [`parse`]: node order,
/// names, positions, and edges are preserved; capacities and delays are
/// re-derived on load (GraphML carries geometry, not capacities).
pub fn write(topo: &Topology) -> String {
    fn escape(s: &str) -> String {
        s.replace('&', "&amp;")
            .replace('<', "&lt;")
            .replace('>', "&gt;")
            .replace('"', "&quot;")
    }
    let mut out = String::new();
    out.push_str("<?xml version=\"1.0\" encoding=\"utf-8\"?>\n");
    out.push_str("<graphml xmlns=\"http://graphml.graphdrawing.org/xmlns\">\n");
    out.push_str(
        "  <key attr.name=\"Latitude\" attr.type=\"double\" for=\"node\" id=\"d29\"/>\n",
    );
    out.push_str(
        "  <key attr.name=\"Longitude\" attr.type=\"double\" for=\"node\" id=\"d32\"/>\n",
    );
    out.push_str("  <key attr.name=\"label\" attr.type=\"string\" for=\"node\" id=\"d33\"/>\n");
    out.push_str("  <graph edgedefault=\"undirected\">\n");
    for v in topo.node_ids() {
        let node = topo.node(v);
        out.push_str(&format!("    <node id=\"{}\">\n", v.0));
        if let Some((lat, lon)) = node.position {
            out.push_str(&format!("      <data key=\"d29\">{lat}</data>\n"));
            out.push_str(&format!("      <data key=\"d32\">{lon}</data>\n"));
        }
        out.push_str(&format!(
            "      <data key=\"d33\">{}</data>\n",
            escape(&node.name)
        ));
        out.push_str("    </node>\n");
    }
    for l in topo.links() {
        out.push_str(&format!(
            "    <edge source=\"{}\" target=\"{}\"/>\n",
            l.a.0, l.b.0
        ));
    }
    out.push_str("  </graph>\n</graphml>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<?xml version="1.0" encoding="utf-8"?>
<!-- A tiny Topology-Zoo-like file -->
<graphml xmlns="http://graphml.graphdrawing.org/xmlns">
  <key attr.name="Latitude" attr.type="double" for="node" id="d29"/>
  <key attr.name="Longitude" attr.type="double" for="node" id="d32"/>
  <key attr.name="label" attr.type="string" for="node" id="d33"/>
  <graph edgedefault="undirected">
    <node id="0">
      <data key="d29">40.71</data>
      <data key="d32">-74.01</data>
      <data key="d33">New &amp; York</data>
    </node>
    <node id="1">
      <data key="d29">41.88</data>
      <data key="d32">-87.63</data>
      <data key="d33">Chicago</data>
    </node>
    <node id="2"/>
    <edge source="0" target="1"/>
    <edge source="1" target="2"/>
    <edge source="2" target="1"/>
    <edge source="2" target="2"/>
  </graph>
</graphml>"#;

    #[test]
    fn parses_sample() {
        let t = parse(SAMPLE, "sample").unwrap();
        assert_eq!(t.num_nodes(), 3);
        // Duplicate edge and self-loop dropped.
        assert_eq!(t.num_links(), 2);
        assert_eq!(t.node(NodeId(0)).name, "New & York");
        assert_eq!(t.node(NodeId(2)).name, "2");
    }

    #[test]
    fn geo_delay_used_when_positions_available() {
        let t = parse(SAMPLE, "sample").unwrap();
        let l = t.link_between(NodeId(0), NodeId(1)).unwrap();
        // NY-Chicago ~1150 km -> ~5.7 ms.
        let d = t.link(l).delay;
        assert!(d > 4.0 && d < 8.0, "{d}");
        // Link to the position-less node gets the 1 ms default.
        let l2 = t.link_between(NodeId(1), NodeId(2)).unwrap();
        assert_eq!(t.link(l2).delay, 1.0);
    }

    #[test]
    fn rejects_unknown_edge_ref() {
        let xml = r#"<graphml><graph><node id="0"/><edge source="0" target="9"/></graph></graphml>"#;
        assert_eq!(
            parse(xml, "x"),
            Err(GraphmlError::UnknownNodeRef("9".into()))
        );
    }

    #[test]
    fn rejects_document_without_graph() {
        assert_eq!(parse("<graphml></graphml>", "x"), Err(GraphmlError::NoGraph));
    }

    #[test]
    fn rejects_unterminated_tag() {
        assert!(matches!(
            parse("<graphml><graph><node id=\"0\"", "x"),
            Err(GraphmlError::Syntax(..))
        ));
    }

    #[test]
    fn tokenizer_handles_entities_and_quotes() {
        let xml = r#"<graphml><graph><node id='a&amp;b'/><node id="c"/><edge source='a&amp;b' target="c"/></graph></graphml>"#;
        let t = parse(xml, "q").unwrap();
        assert_eq!(t.num_nodes(), 2);
        assert_eq!(t.num_links(), 1);
        assert_eq!(t.node(NodeId(0)).name, "a&b");
    }

    #[test]
    fn write_round_trips_through_parse() {
        let original = crate::zoo::abilene();
        let xml = write(&original);
        let back = parse(&xml, original.name()).unwrap();
        assert_eq!(back.num_nodes(), original.num_nodes());
        assert_eq!(back.num_links(), original.num_links());
        for v in original.node_ids() {
            assert_eq!(back.node(v).name, original.node(v).name);
            let (a, b) = (
                back.node(v).position.unwrap(),
                original.node(v).position.unwrap(),
            );
            assert!((a.0 - b.0).abs() < 1e-9 && (a.1 - b.1).abs() < 1e-9);
        }
        for l in original.links() {
            assert!(back.link_between(l.a, l.b).is_some());
            // Geo-derived delay is re-derived identically.
            let rl = back.link(back.link_between(l.a, l.b).unwrap());
            assert!((rl.delay - l.delay).abs() < 1e-9);
        }
    }

    #[test]
    fn write_escapes_names() {
        let mut b = crate::TopologyBuilder::new("esc");
        b.add_node("a<&>\"b", 1.0);
        let t = b.build().unwrap();
        let xml = write(&t);
        assert!(xml.contains("a&lt;&amp;&gt;&quot;b"));
        let back = parse(&xml, "esc").unwrap();
        assert_eq!(back.node(crate::NodeId(0)).name, "a<&>\"b");
    }

    #[test]
    fn skips_doctype_and_pi() {
        let xml = "<?xml version=\"1.0\"?><!DOCTYPE graphml><graphml><graph><node id=\"0\"/></graph></graphml>";
        let t = parse(xml, "d").unwrap();
        assert_eq!(t.num_nodes(), 1);
    }
}
