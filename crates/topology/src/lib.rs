//! Substrate network topologies for online service coordination.
//!
//! This crate models the undirected substrate network `G = (V, L)` from
//! Sec. III-A of the paper: nodes with generic compute capacity, links with
//! propagation delay and a shared bidirectional data-rate capacity. It also
//! provides:
//!
//! - [`zoo`]: the four real-world topologies of the evaluation (Table I) —
//!   Abilene reproduced exactly from public Internet Topology Zoo data, and
//!   BT Europe / China Telecom / Interroute as deterministic statistical
//!   reconstructions matching the paper's published size and degree figures,
//! - [`generators`]: synthetic graph generators (line, ring, star, grid,
//!   random geometric) for tests and ablations,
//! - [`graphml`]: a minimal parser for the Topology Zoo GraphML subset so
//!   real data files can be dropped in,
//! - [`paths`]: all-pairs shortest path delays and next-hop tables, which
//!   the coordination algorithms precompute (Sec. IV-B1d).
//!
//! # Example
//!
//! ```
//! use dosco_topology::zoo;
//!
//! let topo = zoo::abilene();
//! assert_eq!(topo.num_nodes(), 11);
//! assert_eq!(topo.num_links(), 14);
//! let sp = dosco_topology::paths::ShortestPaths::compute(&topo);
//! // Every node reaches every other node in this connected backbone.
//! assert!(sp.diameter() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod generators;
pub mod graph;
pub mod graphml;
pub mod paths;
pub mod stats;
pub mod zoo;

pub use graph::{LinkId, NodeId, Topology, TopologyBuilder, TopologyError};
pub use paths::ShortestPaths;
pub use stats::DegreeStats;
