//! Synthetic topology generators.
//!
//! Besides simple shapes for tests (line, ring, star, grid), this module
//! provides [`random_geometric`] graphs and [`reconstruct_degree_profile`],
//! which deterministically builds a connected graph matching an exact
//! node/edge count and min/max degree — used by [`crate::zoo`] to
//! reconstruct the Table I topologies whose GraphML files are not bundled.

use crate::graph::{great_circle_km, NodeId, Topology, TopologyBuilder, TopologyError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default fiber propagation speed used to derive delays: ~5 µs per km.
pub const US_PER_KM: f64 = 5.0;

/// A path graph `0 — 1 — … — n-1` with uniform link delay and capacity.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn line(n: usize, delay: f64, capacity: f64) -> Topology {
    assert!(n > 0, "line topology needs at least one node");
    let mut b = TopologyBuilder::new(format!("line-{n}"));
    let ids: Vec<NodeId> = (0..n).map(|i| b.add_node(format!("n{i}"), 1.0)).collect();
    for w in ids.windows(2) {
        b.add_link(w[0], w[1], delay, capacity)
            .expect("line links are valid by construction");
    }
    b.build().expect("line topology is non-empty")
}

/// A ring graph with uniform link delay and capacity.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring(n: usize, delay: f64, capacity: f64) -> Topology {
    assert!(n >= 3, "ring topology needs at least three nodes");
    let mut b = TopologyBuilder::new(format!("ring-{n}"));
    let ids: Vec<NodeId> = (0..n).map(|i| b.add_node(format!("n{i}"), 1.0)).collect();
    for i in 0..n {
        b.add_link(ids[i], ids[(i + 1) % n], delay, capacity)
            .expect("ring links are valid by construction");
    }
    b.build().expect("ring topology is non-empty")
}

/// A star graph: node 0 is the hub, nodes `1..=leaves` are leaves.
///
/// # Panics
///
/// Panics if `leaves == 0`.
pub fn star(leaves: usize, delay: f64, capacity: f64) -> Topology {
    assert!(leaves > 0, "star topology needs at least one leaf");
    let mut b = TopologyBuilder::new(format!("star-{leaves}"));
    let hub = b.add_node("hub", 1.0);
    for i in 0..leaves {
        let leaf = b.add_node(format!("leaf{i}"), 1.0);
        b.add_link(hub, leaf, delay, capacity)
            .expect("star links are valid by construction");
    }
    b.build().expect("star topology is non-empty")
}

/// A `rows × cols` grid graph with uniform link delay and capacity.
///
/// # Panics
///
/// Panics if `rows == 0 || cols == 0`.
pub fn grid(rows: usize, cols: usize, delay: f64, capacity: f64) -> Topology {
    assert!(rows > 0 && cols > 0, "grid needs positive dimensions");
    let mut b = TopologyBuilder::new(format!("grid-{rows}x{cols}"));
    let mut ids = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            ids.push(b.add_node(format!("n{r}-{c}"), 1.0));
        }
    }
    for r in 0..rows {
        for c in 0..cols {
            let i = r * cols + c;
            if c + 1 < cols {
                b.add_link(ids[i], ids[i + 1], delay, capacity)
                    .expect("grid links are valid by construction");
            }
            if r + 1 < rows {
                b.add_link(ids[i], ids[i + cols], delay, capacity)
                    .expect("grid links are valid by construction");
            }
        }
    }
    b.build().expect("grid topology is non-empty")
}

/// A random geometric graph: `n` nodes placed uniformly in a
/// `[0, side_km] × [0, side_km]` square (encoded as small lat/lon offsets),
/// connected when within `radius_km`; extra nearest-neighbor links are added
/// until the graph is connected. Deterministic for a given seed.
///
/// # Errors
///
/// Returns an error if `n == 0`.
pub fn random_geometric(
    n: usize,
    side_km: f64,
    radius_km: f64,
    seed: u64,
) -> Result<Topology, TopologyError> {
    if n == 0 {
        return Err(TopologyError::Empty);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // ~111 km per degree of latitude; keep the square near the equator so
    // longitude scales the same way.
    let deg_per_km = 1.0 / 111.0;
    let mut b = TopologyBuilder::new(format!("geo-{n}-{seed}"));
    let mut pos = Vec::with_capacity(n);
    for i in 0..n {
        let x = rng.gen_range(0.0..side_km);
        let y = rng.gen_range(0.0..side_km);
        let (lat, lon) = (y * deg_per_km, x * deg_per_km);
        pos.push((lat, lon));
        b.add_node_at(format!("n{i}"), 1.0, lat, lon);
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if great_circle_km(pos[i], pos[j]) <= radius_km {
                b.add_link_geo(NodeId(i), NodeId(j), 1.0, US_PER_KM)?;
            }
        }
    }
    let mut topo = b.build()?;
    // Connect components by repeatedly linking the closest cross-component
    // pair. Rebuilding the builder each round is fine at these sizes.
    while !topo.is_connected() {
        let comp = component_labels(&topo);
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..n {
            for j in (i + 1)..n {
                if comp[i] != comp[j] {
                    let d = great_circle_km(pos[i], pos[j]);
                    if best.is_none_or(|(_, _, bd)| d < bd) {
                        best = Some((i, j, d));
                    }
                }
            }
        }
        let (i, j, _) = best.expect("disconnected graph must have a cross-component pair");
        let mut b = TopologyBuilder::new(topo.name().to_string());
        for k in 0..n {
            let node = topo.node(NodeId(k));
            let (lat, lon) = node.position.expect("geometric nodes have positions");
            b.add_node_at(node.name.clone(), node.capacity, lat, lon);
        }
        for l in topo.links() {
            b.add_link(l.a, l.b, l.delay, l.capacity)?;
        }
        b.add_link_geo(NodeId(i), NodeId(j), 1.0, US_PER_KM)?;
        topo = b.build()?;
    }
    Ok(topo)
}

fn component_labels(topo: &Topology) -> Vec<usize> {
    let n = topo.num_nodes();
    let mut label = vec![usize::MAX; n];
    let mut next = 0;
    for s in 0..n {
        if label[s] != usize::MAX {
            continue;
        }
        let mut stack = vec![NodeId(s)];
        label[s] = next;
        while let Some(v) = stack.pop() {
            for &(w, _) in topo.neighbors(v) {
                if label[w.0] == usize::MAX {
                    label[w.0] = next;
                    stack.push(w);
                }
            }
        }
        next += 1;
    }
    label
}

/// Specification for [`reconstruct_degree_profile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegreeProfile {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of undirected edges.
    pub edges: usize,
    /// Exact minimum degree the output must have.
    pub min_degree: usize,
    /// Exact maximum degree the output must have.
    pub max_degree: usize,
}

/// Deterministically builds a connected graph with an **exact** node count,
/// edge count, minimum degree, and maximum degree.
///
/// Used to reconstruct the Table I topologies (BT Europe, China Telecom,
/// Interroute) whose full GraphML files are not redistributed here: node 0
/// becomes the single hub with `max_degree`, a seeded spanning tree connects
/// everything, designated leaf nodes keep `min_degree`, and remaining edges
/// are placed pseudo-randomly under the degree caps.
///
/// Nodes receive synthetic positions in a `span_km`-sized square so link
/// delays can be derived from distance like the real data.
///
/// # Errors
///
/// Returns [`TopologyError::InvalidValue`] if the profile is infeasible
/// (e.g. fewer edges than `nodes - 1`, or `max_degree >= nodes`).
pub fn reconstruct_degree_profile(
    name: &str,
    profile: DegreeProfile,
    span_km: f64,
    seed: u64,
) -> Result<Topology, TopologyError> {
    let DegreeProfile {
        nodes: n,
        edges: m,
        min_degree,
        max_degree,
    } = profile;
    if n < 2 || m < n - 1 {
        return Err(TopologyError::InvalidValue(format!(
            "infeasible profile: {n} nodes, {m} edges"
        )));
    }
    if max_degree >= n || max_degree < 2 {
        return Err(TopologyError::InvalidValue(format!(
            "max degree {max_degree} infeasible for {n} nodes"
        )));
    }
    if min_degree != 1 {
        return Err(TopologyError::InvalidValue(
            "reconstruction currently supports min degree 1 only".to_string(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let deg_per_km = 1.0 / 111.0;
    let mut b = TopologyBuilder::new(name);
    let mut pos = Vec::with_capacity(n);
    for i in 0..n {
        let x = rng.gen_range(0.0..span_km);
        let y = rng.gen_range(0.0..span_km);
        let (lat, lon) = (y * deg_per_km, x * deg_per_km);
        pos.push((lat, lon));
        b.add_node_at(format!("n{i}"), 1.0, lat, lon);
    }
    let mut deg = vec![0usize; n];
    let add = |b: &mut TopologyBuilder, deg: &mut Vec<usize>, i: usize, j: usize| {
        b.add_link_geo(NodeId(i), NodeId(j), 1.0, US_PER_KM)
            .inspect(|_| {
                deg[i] += 1;
                deg[j] += 1;
            })
    };

    // 1. Star around the hub: node 0 gets exactly `max_degree` neighbors.
    for i in 1..=max_degree {
        add(&mut b, &mut deg, 0, i)?;
    }
    // 2. Attach the remaining nodes to random earlier non-hub nodes to keep
    //    the graph connected (spanning tree). Cap attachment targets one
    //    below the hub degree so the hub stays the unique maximum.
    for i in (max_degree + 1)..n {
        let target = loop {
            let t = rng.gen_range(1..i);
            if deg[t] < max_degree - 1 {
                break t;
            }
        };
        add(&mut b, &mut deg, target, i)?;
    }
    // 3. The most recently attached node(s) serve as guaranteed degree-1
    //    leaves; never touch the last one again.
    let leaf = n - 1;
    // 4. Place remaining edges among non-hub, non-leaf nodes under the cap.
    let mut placed = (n - 1) as isize;
    let want = m as isize;
    let mut attempts = 0usize;
    while placed < want {
        attempts += 1;
        if attempts > 200_000 {
            return Err(TopologyError::InvalidValue(format!(
                "could not place {m} edges under degree cap {max_degree}"
            )));
        }
        let i = rng.gen_range(1..n);
        let j = rng.gen_range(1..n);
        if i == j || i == leaf || j == leaf {
            continue;
        }
        if deg[i] >= max_degree - 1 || deg[j] >= max_degree - 1 {
            continue;
        }
        if add(&mut b, &mut deg, i, j).is_err() {
            continue; // duplicate edge; retry
        }
        placed += 1;
    }
    let topo = b.build()?;
    debug_assert!(topo.is_connected());
    Ok(topo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DegreeStats;

    #[test]
    fn line_has_n_minus_one_links() {
        let t = line(5, 1.0, 1.0);
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(t.num_links(), 4);
        assert_eq!(t.network_degree(), 2);
        assert!(t.is_connected());
    }

    #[test]
    fn ring_degrees_all_two() {
        let t = ring(6, 1.0, 1.0);
        let s = DegreeStats::of(&t);
        assert_eq!((s.min, s.max), (2, 2));
        assert!(t.is_connected());
    }

    #[test]
    fn star_hub_degree() {
        let t = star(7, 1.0, 1.0);
        assert_eq!(t.network_degree(), 7);
        assert_eq!(DegreeStats::of(&t).min, 1);
    }

    #[test]
    fn grid_shape() {
        let t = grid(3, 4, 1.0, 1.0);
        assert_eq!(t.num_nodes(), 12);
        // 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8 = 17
        assert_eq!(t.num_links(), 17);
        assert!(t.is_connected());
    }

    #[test]
    fn random_geometric_connected_and_deterministic() {
        let a = random_geometric(20, 500.0, 150.0, 7).unwrap();
        let b = random_geometric(20, 500.0, 150.0, 7).unwrap();
        assert!(a.is_connected());
        assert_eq!(a, b);
        let c = random_geometric(20, 500.0, 150.0, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn reconstruct_matches_profile_exactly() {
        let profile = DegreeProfile {
            nodes: 24,
            edges: 37,
            min_degree: 1,
            max_degree: 13,
        };
        let t = reconstruct_degree_profile("bt-like", profile, 1500.0, 1).unwrap();
        assert_eq!(t.num_nodes(), 24);
        assert_eq!(t.num_links(), 37);
        let s = DegreeStats::of(&t);
        assert_eq!((s.min, s.max), (1, 13));
        assert!(t.is_connected());
    }

    #[test]
    fn reconstruct_rejects_infeasible() {
        let bad = DegreeProfile {
            nodes: 10,
            edges: 5,
            min_degree: 1,
            max_degree: 3,
        };
        assert!(reconstruct_degree_profile("bad", bad, 100.0, 1).is_err());
    }

    #[test]
    fn reconstruct_link_delays_positive() {
        let profile = DegreeProfile {
            nodes: 12,
            edges: 15,
            min_degree: 1,
            max_degree: 5,
        };
        let t = reconstruct_degree_profile("t", profile, 800.0, 3).unwrap();
        for l in t.links() {
            assert!(l.delay > 0.0);
        }
    }
}
