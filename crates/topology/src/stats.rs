//! Topology statistics, as reported in Table I of the paper.

use crate::graph::Topology;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Degree statistics of a topology (Table I: Min./Max./Avg. degree).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Minimum node degree.
    pub min: usize,
    /// Maximum node degree (= network degree `Δ_G`).
    pub max: usize,
    /// Average node degree `2|L| / |V|`.
    pub avg: f64,
}

impl DegreeStats {
    /// Computes degree statistics for a topology.
    ///
    /// # Example
    ///
    /// ```
    /// use dosco_topology::{stats::DegreeStats, zoo};
    ///
    /// let s = DegreeStats::of(&zoo::abilene());
    /// assert_eq!((s.min, s.max), (2, 3));
    /// ```
    pub fn of(topo: &Topology) -> Self {
        let degrees: Vec<usize> = topo.node_ids().map(|v| topo.degree(v)).collect();
        let min = degrees.iter().copied().min().unwrap_or(0);
        let max = degrees.iter().copied().max().unwrap_or(0);
        let avg = if degrees.is_empty() {
            0.0
        } else {
            degrees.iter().sum::<usize>() as f64 / degrees.len() as f64
        };
        DegreeStats { min, max, avg }
    }
}

impl fmt::Display for DegreeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} / {} / {:.2}", self.min, self.max, self.avg)
    }
}

/// One row of Table I: a topology's size and degree statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologyRow {
    /// Topology name.
    pub name: String,
    /// Number of nodes.
    pub nodes: usize,
    /// Number of undirected edges.
    pub edges: usize,
    /// Degree statistics.
    pub degree: DegreeStats,
}

impl TopologyRow {
    /// Builds the Table I row for a topology.
    pub fn of(topo: &Topology) -> Self {
        TopologyRow {
            name: topo.name().to_string(),
            nodes: topo.num_nodes(),
            edges: topo.num_links(),
            degree: DegreeStats::of(topo),
        }
    }
}

impl fmt::Display for TopologyRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<14} {:>5} {:>5}   {}",
            self.name, self.nodes, self.edges, self.degree
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TopologyBuilder;

    #[test]
    fn star_degree_stats() {
        let mut b = TopologyBuilder::new("star");
        let hub = b.add_node("hub", 1.0);
        for i in 0..4 {
            let leaf = b.add_node(format!("leaf{i}"), 1.0);
            b.add_link(hub, leaf, 1.0, 1.0).unwrap();
        }
        let t = b.build().unwrap();
        let s = DegreeStats::of(&t);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert!((s.avg - 1.6).abs() < 1e-12);
        assert_eq!(s.to_string(), "1 / 4 / 1.60");
    }

    #[test]
    fn avg_degree_is_twice_edges_over_nodes() {
        let t = crate::zoo::abilene();
        let s = DegreeStats::of(&t);
        let expect = 2.0 * t.num_links() as f64 / t.num_nodes() as f64;
        assert!((s.avg - expect).abs() < 1e-12);
    }

    #[test]
    fn row_display_contains_name_and_counts() {
        let t = crate::zoo::abilene();
        let row = TopologyRow::of(&t).to_string();
        assert!(row.contains("Abilene"));
        assert!(row.contains("11"));
        assert!(row.contains("14"));
    }
}
