//! Per-flow parameter profiles.

use serde::{Deserialize, Serialize};

/// The per-flow parameters of the base scenario (Sec. V-A1): data rate
/// `λ_f`, duration `δ_f`, and deadline `τ_f` (maximum acceptable
/// end-to-end delay, relative to arrival).
///
/// # Example
///
/// ```
/// use dosco_traffic::FlowProfile;
///
/// let p = FlowProfile::paper_default();
/// assert_eq!((p.rate, p.duration, p.deadline), (1.0, 1.0, 100.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowProfile {
    /// Data rate `λ_f`.
    pub rate: f64,
    /// Flow duration `δ_f` (how long the flow transmits).
    pub duration: f64,
    /// Deadline `τ_f`: maximum acceptable end-to-end delay.
    pub deadline: f64,
}

impl FlowProfile {
    /// Creates a flow profile.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-finite, or rate/duration are
    /// negative, or the deadline is not positive.
    pub fn new(rate: f64, duration: f64, deadline: f64) -> Self {
        assert!(rate.is_finite() && rate >= 0.0, "rate must be ≥ 0");
        assert!(
            duration.is_finite() && duration >= 0.0,
            "duration must be ≥ 0"
        );
        assert!(
            deadline.is_finite() && deadline > 0.0,
            "deadline must be > 0"
        );
        FlowProfile {
            rate,
            duration,
            deadline,
        }
    }

    /// The paper's base scenario: unit rate and duration, deadline 100.
    pub fn paper_default() -> Self {
        FlowProfile::new(1.0, 1.0, 100.0)
    }

    /// Returns a copy with a different deadline (Sec. V-C sweeps
    /// `τ_f ∈ {20, 30, 40, 50}`).
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is not finite and positive.
    pub fn with_deadline(self, deadline: f64) -> Self {
        FlowProfile::new(self.rate, self.duration, deadline)
    }
}

impl Default for FlowProfile {
    fn default() -> Self {
        FlowProfile::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_values() {
        let p = FlowProfile::paper_default();
        assert_eq!(p, FlowProfile::default());
        assert_eq!(p.rate, 1.0);
        assert_eq!(p.duration, 1.0);
        assert_eq!(p.deadline, 100.0);
    }

    #[test]
    fn with_deadline_sweeps() {
        for d in [20.0, 30.0, 40.0, 50.0] {
            let p = FlowProfile::paper_default().with_deadline(d);
            assert_eq!(p.deadline, d);
            assert_eq!(p.rate, 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "deadline")]
    fn rejects_zero_deadline() {
        FlowProfile::new(1.0, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "rate")]
    fn rejects_nan_rate() {
        FlowProfile::new(f64::NAN, 1.0, 1.0);
    }
}
