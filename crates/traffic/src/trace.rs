//! Piecewise-constant traffic rate traces.
//!
//! The paper's Fig. 6d drives ingress traffic from real-world Abilene
//! traces (SNDlib). Those traces are not redistributable here, so
//! [`Trace::synthetic_abilene`] generates a deterministic stand-in with the
//! properties the experiment depends on — non-stationary load with a
//! diurnal swing and short bursts (see DESIGN.md §2). Real rate series can
//! be loaded with [`Trace::from_csv`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised while constructing or parsing a [`Trace`].
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// The trace has no bins.
    Empty,
    /// A rate is negative or non-finite.
    InvalidRate(f64),
    /// The bin width is not finite and positive.
    InvalidBinWidth(f64),
    /// A CSV line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The field that failed to parse as a rate (after column
        /// selection and trimming) — what the parser actually rejected.
        field: String,
        /// The raw offending line, for locating it in the source file.
        content: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Empty => write!(f, "trace has no bins"),
            TraceError::InvalidRate(r) => write!(f, "invalid rate {r}: must be finite and ≥ 0"),
            TraceError::InvalidBinWidth(w) => {
                write!(f, "invalid bin width {w}: must be finite and > 0")
            }
            TraceError::Parse { line, field, content } => {
                write!(
                    f,
                    "cannot parse rate field {field:?} on trace line {line}: {content:?}"
                )
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// A piecewise-constant arrival-rate series: `rates[i]` holds for
/// `t ∈ [i·bin_width, (i+1)·bin_width)`; playback wraps cyclically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    rates: Vec<f64>,
    bin_width: f64,
}

impl Trace {
    /// Creates a trace from rate bins.
    ///
    /// # Errors
    ///
    /// Returns an error if `rates` is empty, any rate is negative or
    /// non-finite, or `bin_width` is not finite and positive.
    pub fn new(rates: Vec<f64>, bin_width: f64) -> Result<Self, TraceError> {
        if rates.is_empty() {
            return Err(TraceError::Empty);
        }
        if !bin_width.is_finite() || bin_width <= 0.0 {
            return Err(TraceError::InvalidBinWidth(bin_width));
        }
        if let Some(&bad) = rates.iter().find(|r| !r.is_finite() || **r < 0.0) {
            return Err(TraceError::InvalidRate(bad));
        }
        Ok(Trace { rates, bin_width })
    }

    /// Parses a rate series from CSV text: one rate per line, or
    /// `time,rate` pairs (the time column is ignored; bins are assumed
    /// uniform at `bin_width`). Blank lines and `#` comments are skipped;
    /// a non-numeric first data line (a column header like `time,rate`)
    /// is skipped explicitly; trailing commas (`"5,"`) are tolerated by
    /// taking the last *non-empty* field of each line.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Parse`] naming both the rejected field and
    /// the raw offending line, plus all [`Trace::new`] errors.
    pub fn from_csv(text: &str, bin_width: f64) -> Result<Self, TraceError> {
        let mut rates = Vec::new();
        let mut saw_data_line = false;
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let first_data_line = !saw_data_line;
            saw_data_line = true;
            // Last non-empty comma-separated field: the rate column of a
            // `time,rate` pair, the whole line when there is no comma, and
            // still the rate when the line carries a trailing comma.
            let field = line
                .rsplit(',')
                .map(str::trim)
                .find(|f| !f.is_empty())
                .unwrap_or("");
            match field.parse::<f64>() {
                Ok(rate) => rates.push(rate),
                // Only the very first data line gets header forgiveness.
                Err(_) if first_data_line => {}
                Err(_) => {
                    return Err(TraceError::Parse {
                        line: i + 1,
                        field: field.to_string(),
                        content: raw.to_string(),
                    });
                }
            }
        }
        Trace::new(rates, bin_width)
    }

    /// The deterministic synthetic Abilene-like trace used for Fig. 6d:
    /// 200 bins of width 100 time units (two "days" of 10 000 steps each)
    /// with a diurnal sinusoid around mean rate 0.1 (mean inter-arrival 10,
    /// matching the other patterns' load) plus recurring short bursts.
    pub fn synthetic_abilene() -> Self {
        let bins = 200usize;
        let day = 100.0; // bins per synthetic day
        let mut rates = Vec::with_capacity(bins);
        for i in 0..bins {
            let phase = 2.0 * std::f64::consts::PI * (i as f64) / day;
            // Diurnal swing: ±50 % around the base rate.
            let mut rate = 0.1 * (1.0 + 0.5 * phase.sin());
            // Deterministic bursts every 17 bins: 80 % extra load.
            if i % 17 == 0 {
                rate *= 1.8;
            }
            // Quiet dips every 23 bins.
            if i % 23 == 0 {
                rate *= 0.4;
            }
            rates.push(rate);
        }
        Trace::new(rates, 100.0).expect("synthetic trace is valid by construction")
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.rates.len()
    }

    /// Width of each bin in time units.
    pub fn bin_width(&self) -> f64 {
        self.bin_width
    }

    /// Total duration of one playback cycle.
    pub fn duration(&self) -> f64 {
        self.bin_width * self.rates.len() as f64
    }

    /// The rate at absolute time `t` (wrapping cyclically).
    pub fn rate_at(&self, t: f64) -> f64 {
        let cycle = self.duration();
        let within = t.rem_euclid(cycle);
        let idx = ((within / self.bin_width) as usize).min(self.rates.len() - 1);
        self.rates[idx]
    }

    /// The end time of the bin containing `t` (absolute, non-wrapped), i.e.
    /// the next time the rate may change.
    pub fn bin_end(&self, t: f64) -> f64 {
        (t / self.bin_width).floor() * self.bin_width + self.bin_width
    }

    /// Mean rate over one cycle.
    pub fn mean_rate(&self) -> f64 {
        self.rates.iter().sum::<f64>() / self.rates.len() as f64
    }

    /// Peak rate over one cycle.
    pub fn peak_rate(&self) -> f64 {
        self.rates.iter().copied().fold(0.0, f64::max)
    }

    /// The raw rate bins.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Returns a copy with every rate multiplied by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and ≥ 0, got {factor}"
        );
        Trace {
            rates: self.rates.iter().map(|r| r * factor).collect(),
            bin_width: self.bin_width,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_and_invalid() {
        assert_eq!(Trace::new(vec![], 1.0), Err(TraceError::Empty));
        assert_eq!(
            Trace::new(vec![1.0], 0.0),
            Err(TraceError::InvalidBinWidth(0.0))
        );
        assert_eq!(
            Trace::new(vec![1.0, -2.0], 1.0),
            Err(TraceError::InvalidRate(-2.0))
        );
    }

    #[test]
    fn rate_lookup_and_wrapping() {
        let t = Trace::new(vec![1.0, 2.0, 3.0], 10.0).unwrap();
        assert_eq!(t.rate_at(0.0), 1.0);
        assert_eq!(t.rate_at(15.0), 2.0);
        assert_eq!(t.rate_at(29.9), 3.0);
        // Wraps: t=31 is bin 0 of the next cycle.
        assert_eq!(t.rate_at(31.0), 1.0);
        assert_eq!(t.duration(), 30.0);
    }

    #[test]
    fn bin_end_is_next_boundary() {
        let t = Trace::new(vec![1.0, 2.0], 10.0).unwrap();
        assert_eq!(t.bin_end(0.0), 10.0);
        assert_eq!(t.bin_end(9.999), 10.0);
        assert_eq!(t.bin_end(10.0), 20.0);
        assert_eq!(t.bin_end(25.0), 30.0);
    }

    #[test]
    fn csv_parsing_both_shapes() {
        let t = Trace::from_csv("# comment\n1.0\n\n2.5\n", 5.0).unwrap();
        assert_eq!(t.rates(), &[1.0, 2.5]);
        let t2 = Trace::from_csv("0,1.0\n5,2.5\n", 5.0).unwrap();
        assert_eq!(t2.rates(), &[1.0, 2.5]);
    }

    #[test]
    fn csv_reports_offending_line_and_field() {
        let err = Trace::from_csv("1.0\nnot-a-number\n", 1.0).unwrap_err();
        assert_eq!(
            err,
            TraceError::Parse {
                line: 2,
                field: "not-a-number".into(),
                content: "not-a-number".into()
            }
        );
        // In a time,rate pair the *field* names what the parser rejected,
        // while content still carries the whole raw line.
        let err = Trace::from_csv("0,1.0\n5,oops\n", 1.0).unwrap_err();
        assert_eq!(
            err,
            TraceError::Parse {
                line: 2,
                field: "oops".into(),
                content: "5,oops".into()
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("\"oops\""), "{msg}");
        assert!(msg.contains("line 2"), "{msg}");
    }

    /// A non-numeric first data line is a column header and is skipped —
    /// but header forgiveness applies to that line only.
    #[test]
    fn csv_skips_header_line() {
        let t = Trace::from_csv("time,rate\n0,1.0\n5,2.5\n", 5.0).unwrap();
        assert_eq!(t.rates(), &[1.0, 2.5]);
        // Comments/blanks before the header don't consume the forgiveness.
        let t = Trace::from_csv("# source: x\n\nrate\n3.0\n", 5.0).unwrap();
        assert_eq!(t.rates(), &[3.0]);
        // A second non-numeric line is a real error.
        let err = Trace::from_csv("time,rate\n0,1.0\nbad\n", 5.0).unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 3, .. }), "{err}");
        // Header-only input yields an empty trace error, not a parse error.
        assert_eq!(Trace::from_csv("time,rate\n", 5.0), Err(TraceError::Empty));
    }

    /// Trailing commas leave an empty last field; the parser must fall
    /// back to the last non-empty one.
    #[test]
    fn csv_tolerates_trailing_comma() {
        let t = Trace::from_csv("5,\n2.5,\n", 1.0).unwrap();
        assert_eq!(t.rates(), &[5.0, 2.5]);
        let t = Trace::from_csv("0,1.5,\n", 1.0).unwrap();
        assert_eq!(t.rates(), &[1.5]);
        // All-empty fields still fail (line 2: not the header).
        let err = Trace::from_csv("1.0\n,,\n", 1.0).unwrap_err();
        assert_eq!(
            err,
            TraceError::Parse {
                line: 2,
                field: "".into(),
                content: ",,".into()
            }
        );
    }

    /// `rate_at` at exact bin and cycle boundaries: a boundary belongs to
    /// the bin it opens, and the cycle end wraps to bin 0 — never an
    /// out-of-range index.
    #[test]
    fn rate_at_exact_boundaries_wrap() {
        let t = Trace::new(vec![1.0, 2.0, 3.0], 10.0).unwrap();
        // Interior bin boundaries open the next bin.
        assert_eq!(t.rate_at(10.0), 2.0);
        assert_eq!(t.rate_at(20.0), 3.0);
        // The exact cycle boundary wraps to bin 0, as does every multiple.
        assert_eq!(t.rate_at(30.0), 1.0);
        assert_eq!(t.rate_at(60.0), 1.0);
        assert_eq!(t.rate_at(90.0), 1.0);
        // Just below the cycle end stays in the last bin.
        assert_eq!(t.rate_at(30.0 - 1e-9), 3.0);
        // Negative times wrap backwards into the cycle and always land on
        // a real bin (the clamp guards rem_euclid rounding at the edge).
        for &neg in &[-1e-18, -0.5, -10.0, -30.0] {
            let r = t.rate_at(neg);
            assert!(t.rates().contains(&r), "rate_at({neg}) = {r}");
        }
        assert_eq!(t.rate_at(-0.5), 3.0);
    }

    #[test]
    fn synthetic_trace_properties() {
        let t = Trace::synthetic_abilene();
        assert_eq!(t.num_bins(), 200);
        // Mean load calibrated near 0.1 flows per time unit.
        let mean = t.mean_rate();
        assert!((mean - 0.1).abs() < 0.02, "mean rate {mean}");
        // Bursty: peak well above mean.
        assert!(t.peak_rate() > 1.5 * mean);
        // Deterministic.
        assert_eq!(t, Trace::synthetic_abilene());
    }

    #[test]
    fn scaling() {
        let t = Trace::new(vec![1.0, 2.0], 1.0).unwrap().scaled(0.5);
        assert_eq!(t.rates(), &[0.5, 1.0]);
        assert_eq!(t.mean_rate(), 0.75);
    }

    #[test]
    fn serde_round_trip() {
        let t = Trace::synthetic_abilene();
        let json = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(t.bin_width(), back.bin_width());
        assert_eq!(t.num_bins(), back.num_bins());
        for (a, b) in t.rates().iter().zip(back.rates()) {
            // JSON text round-trips floats to within an ulp, not bit-exactly.
            assert!((a - b).abs() <= f64::EPSILON * a.abs());
        }
    }
}
