//! Flow arrival processes and traffic traces.
//!
//! The paper evaluates four increasingly realistic flow arrival patterns at
//! each ingress node (Sec. V-B):
//!
//! 1. **Fixed** — one flow every 10 time steps ([`arrival::FixedInterval`]),
//! 2. **Poisson** — exponential inter-arrival times, mean 10
//!    ([`arrival::Poisson`]),
//! 3. **MMPP** — a two-state Markov-modulated Poisson process switching
//!    between mean inter-arrival 12 and 8 every 100 steps with 5 %
//!    probability ([`arrival::Mmpp`]),
//! 4. **Trace-driven** — real-world traffic traces for the Abilene network
//!    ([`arrival::TraceDriven`] over a [`trace::Trace`]; a bundled synthetic
//!    diurnal trace substitutes for the SNDlib data, see DESIGN.md §2).
//!
//! [`profile::FlowProfile`] carries the per-flow parameters of the base
//! scenario (data rate λ_f, duration δ_f, deadline τ_f).
//!
//! # Example
//!
//! ```
//! use dosco_traffic::arrival::{ArrivalProcess, Poisson};
//! use rand::SeedableRng;
//!
//! let mut p = Poisson::new(10.0);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let t1 = p.next_arrival(0.0, &mut rng);
//! let t2 = p.next_arrival(t1, &mut rng);
//! assert!(t2 > t1 && t1 > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arrival;
pub mod profile;
pub mod trace;

pub use arrival::{ArrivalPattern, ArrivalProcess, FixedInterval, Mmpp, Poisson, TraceDriven};
pub use profile::FlowProfile;
pub use trace::Trace;
