//! Flow arrival processes (Sec. V-B).

use crate::trace::Trace;
use rand::RngCore;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A stochastic (or deterministic) point process generating flow arrival
/// times at one ingress node.
///
/// Implementations are stateful (MMPP keeps its modulation state, traces
/// keep their playback position); call [`ArrivalProcess::reset`] to restart
/// an episode.
pub trait ArrivalProcess: fmt::Debug + Send {
    /// Returns the absolute time of the next arrival strictly after `now`.
    ///
    /// Returns `f64::INFINITY` if no further arrivals occur.
    fn next_arrival(&mut self, now: f64, rng: &mut dyn RngCore) -> f64;

    /// Restores the process to its initial state (e.g. for a new episode).
    fn reset(&mut self);

    /// Long-run mean arrival rate in flows per time unit, if defined.
    /// Used for sanity checks and load reporting.
    fn mean_rate(&self) -> Option<f64> {
        None
    }
}

/// Deterministic arrivals every `interval` time units: `interval`,
/// `2·interval`, … (the paper's *fixed* pattern, interval 10).
///
/// The arrival index is tracked as an integer, so every returned time is
/// exactly `k · interval` in one multiplication — long sequential runs
/// cannot drift off the grid the way repeated `t + interval` float sums
/// (or re-deriving `k` from an already-rounded `t`) can.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedInterval {
    interval: f64,
    /// Index of the next scheduled arrival: arrival `k` occurs at
    /// `k · interval`. Purely derived playback state — not serialized,
    /// rewound to 1 by [`ArrivalProcess::reset`].
    next_k: u64,
}

impl FixedInterval {
    /// Creates a fixed-interval process.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is not finite and positive.
    pub fn new(interval: f64) -> Self {
        assert!(
            interval.is_finite() && interval > 0.0,
            "interval must be finite and positive, got {interval}"
        );
        FixedInterval { interval, next_k: 1 }
    }

    /// Grid point of arrival index `k` (`k · interval`, one rounding).
    fn grid(&self, k: u64) -> f64 {
        k as f64 * self.interval
    }
}

impl ArrivalProcess for FixedInterval {
    fn next_arrival(&mut self, now: f64, _rng: &mut dyn RngCore) -> f64 {
        // Fast path: sequential playback. `now` sits in the window
        // [previous arrival, next arrival): hand out the scheduled grid
        // point and advance the integer index — no division, no drift.
        if self.grid(self.next_k) > now && self.grid(self.next_k - 1) <= now {
            let t = self.grid(self.next_k);
            self.next_k += 1;
            return t;
        }
        // Resync: the caller jumped (or rewound) in time. Find the minimal
        // k with k·interval strictly after `now`, starting from the float
        // estimate and correcting both ways so division rounding can
        // neither skip nor double-count a grid point.
        let mut k = ((now / self.interval).floor().max(0.0) as u64).saturating_add(1);
        while k > 1 && self.grid(k - 1) > now {
            k -= 1;
        }
        while self.grid(k) <= now {
            k += 1;
        }
        self.next_k = k + 1;
        self.grid(k)
    }

    fn reset(&mut self) {
        self.next_k = 1;
    }

    fn mean_rate(&self) -> Option<f64> {
        Some(1.0 / self.interval)
    }
}

// Manual impls: only `interval` is configuration; `next_k` is playback
// state that must not leak into (or be required from) serialized configs.
impl Serialize for FixedInterval {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![(
            "interval".to_string(),
            serde::Value::Float(self.interval),
        )])
    }
}

impl Deserialize for FixedInterval {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| serde::Error::new("FixedInterval: expected object"))?;
        let interval: f64 = serde::field(obj, "interval", "f64")?;
        if !(interval.is_finite() && interval > 0.0) {
            return Err(serde::Error::new(format!(
                "FixedInterval: interval must be finite and positive, got {interval}"
            )));
        }
        Ok(FixedInterval { interval, next_k: 1 })
    }
}

/// Samples an exponential inter-arrival time with the given mean.
fn sample_exp(mean: f64, rng: &mut dyn RngCore) -> f64 {
    // Inverse-CDF sampling; `gen` yields [0,1), so `1 - u` is in (0,1].
    let u: f64 = rng.gen();
    -mean * (1.0 - u).ln()
}

/// Poisson arrivals: i.i.d. exponential inter-arrival times with the given
/// mean (the paper uses mean 10).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Poisson {
    mean_interarrival: f64,
}

impl Poisson {
    /// Creates a Poisson process with the given mean inter-arrival time.
    ///
    /// # Panics
    ///
    /// Panics if `mean_interarrival` is not finite and positive.
    pub fn new(mean_interarrival: f64) -> Self {
        assert!(
            mean_interarrival.is_finite() && mean_interarrival > 0.0,
            "mean inter-arrival must be finite and positive, got {mean_interarrival}"
        );
        Poisson { mean_interarrival }
    }
}

impl ArrivalProcess for Poisson {
    fn next_arrival(&mut self, now: f64, rng: &mut dyn RngCore) -> f64 {
        now + sample_exp(self.mean_interarrival, rng)
    }

    fn reset(&mut self) {}

    fn mean_rate(&self) -> Option<f64> {
        Some(1.0 / self.mean_interarrival)
    }
}

/// Two-state Markov-modulated Poisson process (Sec. V-B, Fig. 6c):
/// exponential arrivals whose mean switches between `mean0` and `mean1`;
/// every `switch_period` time units the state flips with probability
/// `switch_prob` (paper: means 12/8, period 100, probability 5 %).
///
/// Thanks to the memorylessness of the exponential distribution, sampling
/// piecewise per modulation segment is exact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mmpp {
    mean0: f64,
    mean1: f64,
    switch_period: f64,
    switch_prob: f64,
    /// Current state: false = state 0, true = state 1.
    state: bool,
    /// Time of the next switch check.
    next_check: f64,
}

impl Mmpp {
    /// Creates an MMPP with the paper's parameterization style.
    ///
    /// # Panics
    ///
    /// Panics if any mean or the period is not finite/positive, or the
    /// probability is outside `[0, 1]`.
    pub fn new(mean0: f64, mean1: f64, switch_period: f64, switch_prob: f64) -> Self {
        assert!(mean0.is_finite() && mean0 > 0.0, "mean0 must be positive");
        assert!(mean1.is_finite() && mean1 > 0.0, "mean1 must be positive");
        assert!(
            switch_period.is_finite() && switch_period > 0.0,
            "switch period must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&switch_prob),
            "switch probability must be in [0,1], got {switch_prob}"
        );
        Mmpp {
            mean0,
            mean1,
            switch_period,
            switch_prob,
            state: false,
            next_check: switch_period,
        }
    }

    /// The paper's MMPP: means 12 and 8, switching every 100 steps with 5 %.
    pub fn paper_default() -> Self {
        Mmpp::new(12.0, 8.0, 100.0, 0.05)
    }

    fn current_mean(&self) -> f64 {
        if self.state {
            self.mean1
        } else {
            self.mean0
        }
    }
}

impl ArrivalProcess for Mmpp {
    fn next_arrival(&mut self, now: f64, rng: &mut dyn RngCore) -> f64 {
        let mut t = now;
        loop {
            // Catch up on missed switch checks (e.g. long silent stretch).
            while t >= self.next_check {
                if rng.gen::<f64>() < self.switch_prob {
                    self.state = !self.state;
                }
                self.next_check += self.switch_period;
            }
            let candidate = t + sample_exp(self.current_mean(), rng);
            if candidate < self.next_check {
                return candidate;
            }
            // Arrival would land beyond the next potential switch: advance
            // to the boundary and resample (exact due to memorylessness).
            t = self.next_check;
        }
    }

    fn reset(&mut self) {
        self.state = false;
        self.next_check = self.switch_period;
    }

    fn mean_rate(&self) -> Option<f64> {
        // Symmetric switching => 50/50 stationary distribution.
        Some(0.5 / self.mean0 + 0.5 / self.mean1)
    }
}

/// Trace-driven arrivals: an inhomogeneous Poisson process whose rate
/// follows a [`Trace`] (piecewise-constant rate bins), wrapping around at
/// the end of the trace. Substitutes for the paper's real-world Abilene
/// traces (Fig. 6d); load a real rate series with [`Trace::from_csv`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceDriven {
    trace: Trace,
    /// Scales all trace rates (e.g. to calibrate mean load).
    rate_scale: f64,
}

impl TraceDriven {
    /// Creates a trace-driven process.
    ///
    /// # Panics
    ///
    /// Panics if `rate_scale` is not finite and positive.
    pub fn new(trace: Trace, rate_scale: f64) -> Self {
        assert!(
            rate_scale.is_finite() && rate_scale > 0.0,
            "rate scale must be finite and positive, got {rate_scale}"
        );
        TraceDriven { trace, rate_scale }
    }

    /// The trace being played back.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

impl ArrivalProcess for TraceDriven {
    fn next_arrival(&mut self, now: f64, rng: &mut dyn RngCore) -> f64 {
        let mut t = now;
        // Bound the search to a generous number of cycles: an all-zero
        // trace yields no arrivals.
        let horizon = t + 1000.0 * self.trace.duration();
        while t < horizon {
            let rate = self.trace.rate_at(t) * self.rate_scale;
            let bin_end = self.trace.bin_end(t);
            if rate <= 0.0 {
                t = bin_end;
                continue;
            }
            let candidate = t + sample_exp(1.0 / rate, rng);
            if candidate < bin_end {
                return candidate;
            }
            t = bin_end;
        }
        f64::INFINITY
    }

    fn reset(&mut self) {}

    fn mean_rate(&self) -> Option<f64> {
        Some(self.trace.mean_rate() * self.rate_scale)
    }
}

/// The four arrival patterns of the evaluation, as a serializable
/// configuration enum. [`ArrivalPattern::build`] instantiates the matching
/// [`ArrivalProcess`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalPattern {
    /// Fixed inter-arrival time.
    Fixed {
        /// Inter-arrival interval.
        interval: f64,
    },
    /// Poisson process.
    Poisson {
        /// Mean inter-arrival time.
        mean: f64,
    },
    /// Two-state MMPP.
    Mmpp {
        /// Mean inter-arrival time in state 0.
        mean0: f64,
        /// Mean inter-arrival time in state 1.
        mean1: f64,
        /// Time between switch checks.
        period: f64,
        /// Switch probability per check.
        prob: f64,
    },
    /// Trace-driven inhomogeneous Poisson.
    Trace {
        /// The rate trace to follow.
        trace: Trace,
        /// Rate scale factor.
        scale: f64,
    },
}

impl ArrivalPattern {
    /// The paper's fixed pattern (interval 10).
    pub fn paper_fixed() -> Self {
        ArrivalPattern::Fixed { interval: 10.0 }
    }

    /// The paper's Poisson pattern (mean 10).
    pub fn paper_poisson() -> Self {
        ArrivalPattern::Poisson { mean: 10.0 }
    }

    /// The paper's MMPP pattern (means 12/8, period 100, probability 0.05).
    pub fn paper_mmpp() -> Self {
        ArrivalPattern::Mmpp {
            mean0: 12.0,
            mean1: 8.0,
            period: 100.0,
            prob: 0.05,
        }
    }

    /// The bundled synthetic diurnal trace calibrated to mean rate ≈ 0.1
    /// (mean inter-arrival ≈ 10, matching the other patterns' load).
    pub fn paper_trace() -> Self {
        ArrivalPattern::Trace {
            trace: Trace::synthetic_abilene(),
            scale: 1.0,
        }
    }

    /// Short lowercase name, as used in experiment CLIs (`fixed`, `poisson`,
    /// `mmpp`, `trace`).
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalPattern::Fixed { .. } => "fixed",
            ArrivalPattern::Poisson { .. } => "poisson",
            ArrivalPattern::Mmpp { .. } => "mmpp",
            ArrivalPattern::Trace { .. } => "trace",
        }
    }

    /// Instantiates the configured arrival process.
    pub fn build(&self) -> Box<dyn ArrivalProcess> {
        match self {
            ArrivalPattern::Fixed { interval } => Box::new(FixedInterval::new(*interval)),
            ArrivalPattern::Poisson { mean } => Box::new(Poisson::new(*mean)),
            ArrivalPattern::Mmpp {
                mean0,
                mean1,
                period,
                prob,
            } => Box::new(Mmpp::new(*mean0, *mean1, *period, *prob)),
            ArrivalPattern::Trace { trace, scale } => {
                Box::new(TraceDriven::new(trace.clone(), *scale))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn fixed_interval_hits_multiples() {
        let mut p = FixedInterval::new(10.0);
        let mut r = rng();
        assert_eq!(p.next_arrival(0.0, &mut r), 10.0);
        assert_eq!(p.next_arrival(10.0, &mut r), 20.0);
        assert_eq!(p.next_arrival(14.5, &mut r), 20.0);
        assert_eq!(p.mean_rate(), Some(0.1));
    }

    #[test]
    fn fixed_interval_strictly_advances() {
        let mut p = FixedInterval::new(3.0);
        let mut r = rng();
        let mut t = 0.0;
        for _ in 0..100 {
            let n = p.next_arrival(t, &mut r);
            assert!(n > t);
            t = n;
        }
        assert!((t - 300.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn fixed_rejects_zero_interval() {
        FixedInterval::new(0.0);
    }

    /// Regression: with a binary-unrepresentable interval (0.1), 1000
    /// sequential arrivals must stay exactly on the integer grid
    /// `k · interval` — no skipped or doubled grid points, no accumulated
    /// `t + interval` float drift.
    #[test]
    fn fixed_interval_no_drift_on_unrepresentable_interval() {
        let mut p = FixedInterval::new(0.1);
        let mut r = rng();
        let mut t = 0.0;
        for k in 1..=1000u64 {
            t = p.next_arrival(t, &mut r);
            assert_eq!(
                t.to_bits(),
                (k as f64 * 0.1).to_bits(),
                "arrival {k} drifted off the grid: got {t}"
            );
        }
        assert!((t - 100.0).abs() < 1e-9);
    }

    /// Regression: querying exactly at a grid point must return the next
    /// grid point (strictly-after contract), never the same one again and
    /// never `t + interval` drift — including far from zero.
    #[test]
    fn fixed_interval_exact_boundary_values() {
        let mut p = FixedInterval::new(0.1);
        let mut r = rng();
        // Jump straight to a large exact-ish boundary.
        let boundary = 700.0 * 0.1;
        let next = p.next_arrival(boundary, &mut r);
        assert!(next > boundary);
        assert_eq!(next.to_bits(), (701.0_f64 * 0.1).to_bits());
        // Rewinding mid-grid re-serves the strictly-next point.
        assert_eq!(p.next_arrival(14.55, &mut r), 146.0 * 0.1);
        // A hair below a grid point still yields that grid point.
        let just_below = 700.0 * 0.1 - 1e-12;
        assert_eq!(
            p.next_arrival(just_below, &mut r).to_bits(),
            (700.0_f64 * 0.1).to_bits()
        );
    }

    /// `reset` rewinds the internal arrival index so a reused process
    /// replays the same sequence from the start.
    #[test]
    fn fixed_interval_reset_replays_sequence() {
        let mut p = FixedInterval::new(3.0);
        let mut r = rng();
        let first: Vec<f64> = (0..5)
            .scan(0.0, |t, _| {
                *t = p.next_arrival(*t, &mut r);
                Some(*t)
            })
            .collect();
        p.reset();
        let second: Vec<f64> = (0..5)
            .scan(0.0, |t, _| {
                *t = p.next_arrival(*t, &mut r);
                Some(*t)
            })
            .collect();
        assert_eq!(first, second);
        assert_eq!(first, vec![3.0, 6.0, 9.0, 12.0, 15.0]);
    }

    /// Serialization carries only the configuration, not playback state:
    /// a mid-playback process round-trips to a fresh one.
    #[test]
    fn fixed_interval_serde_skips_playback_state() {
        let mut p = FixedInterval::new(10.0);
        let mut r = rng();
        p.next_arrival(0.0, &mut r);
        p.next_arrival(10.0, &mut r);
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(json, r#"{"interval":10.0}"#);
        let back: FixedInterval = serde_json::from_str(&json).unwrap();
        assert_eq!(back, FixedInterval::new(10.0));
        // Missing/invalid intervals are rejected, not defaulted.
        assert!(serde_json::from_str::<FixedInterval>(r#"{"interval":-1.0}"#).is_err());
        assert!(serde_json::from_str::<FixedInterval>(r#"{}"#).is_err());
    }

    #[test]
    fn poisson_mean_close_to_target() {
        let mut p = Poisson::new(10.0);
        let mut r = rng();
        let mut t = 0.0;
        let n = 20_000;
        for _ in 0..n {
            t = p.next_arrival(t, &mut r);
        }
        let mean = t / n as f64;
        assert!((mean - 10.0).abs() < 0.3, "empirical mean {mean}");
    }

    #[test]
    fn poisson_interarrivals_strictly_positive() {
        let mut p = Poisson::new(1.0);
        let mut r = rng();
        let mut t = 5.0;
        for _ in 0..1000 {
            let n = p.next_arrival(t, &mut r);
            assert!(n > t);
            t = n;
        }
    }

    #[test]
    fn mmpp_rate_between_state_rates() {
        let mut p = Mmpp::paper_default();
        let mut r = rng();
        let mut t = 0.0;
        let n = 20_000;
        for _ in 0..n {
            t = p.next_arrival(t, &mut r);
        }
        let mean = t / n as f64;
        // Stationary mean inter-arrival is the harmonic-ish mixture of 12
        // and 8: strictly inside (8, 12).
        assert!(mean > 8.0 && mean < 12.0, "empirical mean {mean}");
    }

    #[test]
    fn mmpp_actually_switches_state() {
        let mut p = Mmpp::new(100.0, 0.1, 10.0, 0.5);
        let mut r = rng();
        let mut t = 0.0;
        let mut saw_state1 = false;
        for _ in 0..200 {
            t = p.next_arrival(t, &mut r);
            if p.state {
                saw_state1 = true;
            }
        }
        assert!(saw_state1, "MMPP never left state 0");
        p.reset();
        assert!(!p.state);
        assert_eq!(p.next_check, 10.0);
    }

    #[test]
    fn mmpp_zero_switch_prob_behaves_like_poisson() {
        let mut p = Mmpp::new(10.0, 1.0, 100.0, 0.0);
        let mut r = rng();
        let mut t = 0.0;
        let n = 10_000;
        for _ in 0..n {
            t = p.next_arrival(t, &mut r);
        }
        let mean = t / n as f64;
        assert!((mean - 10.0).abs() < 0.4, "empirical mean {mean}");
    }

    #[test]
    fn trace_driven_follows_rate_changes() {
        // Two bins: silent then busy.
        let trace = Trace::new(vec![0.0, 1.0], 100.0).unwrap();
        let mut p = TraceDriven::new(trace, 1.0);
        let mut r = rng();
        let first = p.next_arrival(0.0, &mut r);
        assert!(first >= 100.0, "no arrivals in the silent bin, got {first}");
        let mut count_busy = 0;
        let mut t = first;
        while t < 200.0 {
            count_busy += 1;
            t = p.next_arrival(t, &mut r);
        }
        // Rate 1.0 over 100 time units -> ~100 arrivals.
        assert!((60..150).contains(&count_busy), "{count_busy}");
    }

    #[test]
    fn trace_driven_wraps_around() {
        let trace = Trace::new(vec![1.0], 10.0).unwrap();
        let mut p = TraceDriven::new(trace, 1.0);
        let mut r = rng();
        let t = p.next_arrival(25.0, &mut r);
        assert!(t > 25.0 && t.is_finite());
    }

    #[test]
    fn all_zero_trace_yields_no_arrivals() {
        let trace = Trace::new(vec![0.0, 0.0], 1.0).unwrap();
        let mut p = TraceDriven::new(trace, 1.0);
        let mut r = rng();
        assert_eq!(p.next_arrival(0.0, &mut r), f64::INFINITY);
    }

    #[test]
    fn pattern_builds_matching_process() {
        let mut r = rng();
        for pattern in [
            ArrivalPattern::paper_fixed(),
            ArrivalPattern::paper_poisson(),
            ArrivalPattern::paper_mmpp(),
            ArrivalPattern::paper_trace(),
        ] {
            let mut p = pattern.build();
            let t = p.next_arrival(0.0, &mut r);
            assert!(t > 0.0 && t.is_finite(), "{}", pattern.name());
        }
    }

    #[test]
    fn pattern_names() {
        assert_eq!(ArrivalPattern::paper_fixed().name(), "fixed");
        assert_eq!(ArrivalPattern::paper_poisson().name(), "poisson");
        assert_eq!(ArrivalPattern::paper_mmpp().name(), "mmpp");
        assert_eq!(ArrivalPattern::paper_trace().name(), "trace");
    }

    #[test]
    fn pattern_serde_round_trip() {
        let p = ArrivalPattern::paper_mmpp();
        let json = serde_json::to_string(&p).unwrap();
        let back: ArrivalPattern = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
