//! Scenario configuration: topology + services + traffic.

use crate::service::{ServiceCatalog, ServiceId};
use dosco_topology::{zoo, NodeId, Topology};
use dosco_traffic::{ArrivalPattern, FlowProfile};
use serde::{Deserialize, Serialize};

/// Traffic entering at one ingress node: an arrival process plus the
/// per-flow parameters (requested service, egress, rate/duration/deadline).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IngressSpec {
    /// The ingress node `v^in`.
    pub node: NodeId,
    /// Flow arrival pattern at this ingress.
    pub pattern: ArrivalPattern,
    /// Requested service for flows from this ingress.
    pub service: ServiceId,
    /// Egress node `v^eg` for flows from this ingress.
    pub egress: NodeId,
    /// Per-flow rate/duration/deadline.
    pub profile: FlowProfile,
}

/// A complete simulation scenario.
///
/// Build the paper's base scenario with [`ScenarioConfig::paper_base`] and
/// customize from there; the struct's fields are public plain data.
///
/// # Example
///
/// ```
/// use dosco_simnet::ScenarioConfig;
/// use dosco_traffic::ArrivalPattern;
///
/// let mut cfg = ScenarioConfig::paper_base(3);
/// cfg.horizon = 5_000.0;
/// for ing in &mut cfg.ingresses {
///     ing.pattern = ArrivalPattern::paper_poisson();
/// }
/// assert_eq!(cfg.ingresses.len(), 3);
/// cfg.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// The substrate network (capacities already assigned).
    pub topology: Topology,
    /// Components and services.
    pub catalog: ServiceCatalog,
    /// Traffic sources.
    pub ingresses: Vec<IngressSpec>,
    /// Episode length `T` in simulation time units.
    pub horizon: f64,
    /// How long a fully processed flow is held when the agent keeps it at a
    /// node (Sec. IV-B2: "stays at the node for one time step").
    pub hold_delay: f64,
    /// Seed for the scenario's random capacity assignment, recorded for
    /// reproducibility (the simulation RNG seed is passed separately).
    pub capacity_seed: u64,
}

/// Errors raised by [`ScenarioConfig::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// An ingress or egress node id is out of range.
    UnknownNode(NodeId),
    /// An ingress references an unknown service.
    UnknownService(ServiceId),
    /// The horizon or hold delay is not finite and positive.
    InvalidValue(String),
    /// There are no ingresses.
    NoIngress,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::UnknownNode(v) => write!(f, "unknown node {v}"),
            ConfigError::UnknownService(s) => write!(f, "unknown service {s}"),
            ConfigError::InvalidValue(w) => write!(f, "invalid value: {w}"),
            ConfigError::NoIngress => write!(f, "scenario has no ingress"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl ScenarioConfig {
    /// The paper's base scenario (Sec. V-A1): Abilene topology with node
    /// capacities ~U(0,2) and link capacities ~U(1,5) (seeded), the
    /// 3-component video service, `num_ingress ∈ 1..=5` ingress nodes
    /// (`v1..v5`) with fixed arrivals every 10 time units, single egress
    /// `v8`, unit flow rate and duration, deadline 100, horizon 20 000.
    ///
    /// # Panics
    ///
    /// Panics if `num_ingress` is not in `1..=5`.
    pub fn paper_base(num_ingress: usize) -> Self {
        assert!(
            (1..=5).contains(&num_ingress),
            "the base scenario defines ingress nodes v1..v5, got {num_ingress}"
        );
        let capacity_seed = 0xD05C0;
        let mut topology = zoo::abilene();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(capacity_seed);
        topology.assign_random_capacities(&mut rng, (0.0, 2.0), (1.0, 5.0));
        let catalog = ServiceCatalog::paper_video_service();
        let ingresses = zoo::ABILENE_INGRESS[..num_ingress]
            .iter()
            .map(|&node| IngressSpec {
                node,
                pattern: ArrivalPattern::paper_fixed(),
                service: ServiceId(0),
                egress: zoo::ABILENE_EGRESS,
                profile: FlowProfile::paper_default(),
            })
            .collect();
        ScenarioConfig {
            topology,
            catalog,
            ingresses,
            horizon: 20_000.0,
            hold_delay: 1.0,
            capacity_seed,
        }
    }

    /// Replaces every ingress's arrival pattern.
    pub fn with_pattern(mut self, pattern: ArrivalPattern) -> Self {
        for ing in &mut self.ingresses {
            ing.pattern = pattern.clone();
        }
        self
    }

    /// Replaces every ingress's flow deadline (Sec. V-C).
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is not finite and positive.
    pub fn with_deadline(mut self, deadline: f64) -> Self {
        for ing in &mut self.ingresses {
            ing.profile = ing.profile.with_deadline(deadline);
        }
        self
    }

    /// Replaces the episode horizon.
    pub fn with_horizon(mut self, horizon: f64) -> Self {
        self.horizon = horizon;
        self
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for out-of-range nodes or services, a
    /// non-positive horizon/hold delay, or an empty ingress list.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.ingresses.is_empty() {
            return Err(ConfigError::NoIngress);
        }
        if !self.horizon.is_finite() || self.horizon <= 0.0 {
            return Err(ConfigError::InvalidValue(format!(
                "horizon {} must be finite and > 0",
                self.horizon
            )));
        }
        if !self.hold_delay.is_finite() || self.hold_delay <= 0.0 {
            return Err(ConfigError::InvalidValue(format!(
                "hold delay {} must be finite and > 0",
                self.hold_delay
            )));
        }
        let n = self.topology.num_nodes();
        for ing in &self.ingresses {
            if ing.node.0 >= n {
                return Err(ConfigError::UnknownNode(ing.node));
            }
            if ing.egress.0 >= n {
                return Err(ConfigError::UnknownNode(ing.egress));
            }
            if ing.service.0 >= self.catalog.num_services() {
                return Err(ConfigError::UnknownService(ing.service));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_base_is_valid() {
        for k in 1..=5 {
            let cfg = ScenarioConfig::paper_base(k);
            cfg.validate().unwrap();
            assert_eq!(cfg.ingresses.len(), k);
            assert_eq!(cfg.horizon, 20_000.0);
            assert_eq!(cfg.topology.name(), "Abilene");
        }
    }

    #[test]
    fn base_capacities_within_paper_ranges() {
        let cfg = ScenarioConfig::paper_base(1);
        for node in cfg.topology.nodes() {
            assert!((0.0..=2.0).contains(&node.capacity));
        }
        for link in cfg.topology.links() {
            assert!((1.0..=5.0).contains(&link.capacity));
        }
    }

    #[test]
    fn base_is_deterministic() {
        assert_eq!(ScenarioConfig::paper_base(3), ScenarioConfig::paper_base(3));
    }

    #[test]
    #[should_panic(expected = "v1..v5")]
    fn base_rejects_six_ingresses() {
        ScenarioConfig::paper_base(6);
    }

    #[test]
    fn with_helpers() {
        let cfg = ScenarioConfig::paper_base(2)
            .with_pattern(ArrivalPattern::paper_poisson())
            .with_deadline(30.0)
            .with_horizon(1_000.0);
        for ing in &cfg.ingresses {
            assert_eq!(ing.pattern.name(), "poisson");
            assert_eq!(ing.profile.deadline, 30.0);
        }
        assert_eq!(cfg.horizon, 1_000.0);
    }

    #[test]
    fn validation_catches_bad_nodes_and_services() {
        let mut cfg = ScenarioConfig::paper_base(1);
        cfg.ingresses[0].node = NodeId(99);
        assert_eq!(cfg.validate(), Err(ConfigError::UnknownNode(NodeId(99))));

        let mut cfg = ScenarioConfig::paper_base(1);
        cfg.ingresses[0].service = ServiceId(5);
        assert_eq!(cfg.validate(), Err(ConfigError::UnknownService(ServiceId(5))));

        let mut cfg = ScenarioConfig::paper_base(1);
        cfg.horizon = -1.0;
        assert!(matches!(cfg.validate(), Err(ConfigError::InvalidValue(_))));

        let mut cfg = ScenarioConfig::paper_base(1);
        cfg.ingresses.clear();
        assert_eq!(cfg.validate(), Err(ConfigError::NoIngress));
    }
}
