//! Per-flow journey reconstruction from the event stream.
//!
//! Aggregate metrics answer "how many flows succeeded"; journeys answer
//! *why* an individual flow succeeded or died: which nodes it visited,
//! where it was processed, how long each leg took, and what terminated
//! it. Built purely from [`SimEvent`]s, so it works with any coordinator.

use crate::event::{DropReason, SimEvent};
use crate::flow::FlowId;
use crate::service::ComponentId;
use dosco_topology::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One step of a flow's journey.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Leg {
    /// Processed component `component` at `node`, finishing at `time`.
    Processed {
        /// Hosting node.
        node: NodeId,
        /// The traversed component.
        component: ComponentId,
        /// Completion time of the processing.
        time: f64,
    },
    /// Forwarded from `from` to `to` at `time`.
    Forwarded {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Forwarding time.
        time: f64,
    },
    /// Held (fully processed) at `node` at `time`.
    Held {
        /// Holding node.
        node: NodeId,
        /// Hold time.
        time: f64,
    },
}

/// How a journey ended.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Outcome {
    /// Completed at the egress within the deadline.
    Completed {
        /// End-to-end delay.
        e2e_delay: f64,
    },
    /// Dropped.
    Dropped {
        /// Why.
        reason: DropReason,
        /// Node where the drop happened.
        node: NodeId,
    },
    /// Still in flight when recording stopped.
    InFlight,
}

/// The reconstructed journey of one flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Journey {
    /// The flow.
    pub flow: FlowId,
    /// Ingress node.
    pub ingress: NodeId,
    /// Arrival time.
    pub arrival: f64,
    /// The legs, in order.
    pub legs: Vec<Leg>,
    /// How it ended.
    pub outcome: Outcome,
}

impl Journey {
    /// Number of link traversals.
    pub fn hops(&self) -> usize {
        self.legs
            .iter()
            .filter(|l| matches!(l, Leg::Forwarded { .. }))
            .count()
    }

    /// Number of processed components.
    pub fn processings(&self) -> usize {
        self.legs
            .iter()
            .filter(|l| matches!(l, Leg::Processed { .. }))
            .count()
    }

    /// The node sequence visited (ingress first).
    pub fn path(&self) -> Vec<NodeId> {
        let mut path = vec![self.ingress];
        for leg in &self.legs {
            if let Leg::Forwarded { to, .. } = leg {
                path.push(*to);
            }
        }
        path
    }
}

/// Builds [`Journey`]s incrementally from event batches.
#[derive(Debug, Clone, Default)]
pub struct JourneyLog {
    journeys: HashMap<FlowId, Journey>,
}

impl JourneyLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        JourneyLog::default()
    }

    /// Ingests a batch of events (in order).
    pub fn ingest(&mut self, events: &[SimEvent]) {
        for ev in events {
            match *ev {
                SimEvent::FlowArrived { flow, node, time } => {
                    self.journeys.insert(
                        flow,
                        Journey {
                            flow,
                            ingress: node,
                            arrival: time,
                            legs: Vec::new(),
                            outcome: Outcome::InFlight,
                        },
                    );
                }
                SimEvent::InstanceTraversed {
                    flow,
                    node,
                    component,
                    time,
                    ..
                } => {
                    if let Some(j) = self.journeys.get_mut(&flow) {
                        j.legs.push(Leg::Processed {
                            node,
                            component,
                            time,
                        });
                    }
                }
                SimEvent::Forwarded {
                    flow, from, to, time, ..
                } => {
                    if let Some(j) = self.journeys.get_mut(&flow) {
                        j.legs.push(Leg::Forwarded { from, to, time });
                    }
                }
                SimEvent::Held { flow, node, time } => {
                    if let Some(j) = self.journeys.get_mut(&flow) {
                        j.legs.push(Leg::Held { node, time });
                    }
                }
                SimEvent::FlowCompleted {
                    flow, e2e_delay, ..
                } => {
                    if let Some(j) = self.journeys.get_mut(&flow) {
                        j.outcome = Outcome::Completed { e2e_delay };
                    }
                }
                SimEvent::FlowDropped {
                    flow, reason, node, ..
                } => {
                    if let Some(j) = self.journeys.get_mut(&flow) {
                        j.outcome = Outcome::Dropped { reason, node };
                    }
                }
                SimEvent::InstanceStarted { .. }
                | SimEvent::InstanceStopped { .. }
                | SimEvent::ChurnApplied { .. } => {}
            }
        }
    }

    /// The journey of one flow, if observed.
    pub fn journey(&self, flow: FlowId) -> Option<&Journey> {
        self.journeys.get(&flow)
    }

    /// All journeys (unordered).
    pub fn iter(&self) -> impl Iterator<Item = &Journey> {
        self.journeys.values()
    }

    /// Number of recorded journeys.
    pub fn len(&self) -> usize {
        self.journeys.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.journeys.is_empty()
    }

    /// Journeys that ended in a drop for `reason` (forensics).
    pub fn dropped_for(&self, reason: DropReason) -> Vec<&Journey> {
        self.journeys
            .values()
            .filter(|j| matches!(j.outcome, Outcome::Dropped { reason: r, .. } if r == reason))
            .collect()
    }

    /// Mean hop count of completed journeys (path-length diagnostics,
    /// e.g. "longer paths under larger deadlines", Fig. 7).
    pub fn mean_hops_completed(&self) -> Option<f64> {
        let hops: Vec<usize> = self
            .journeys
            .values()
            .filter(|j| matches!(j.outcome, Outcome::Completed { .. }))
            .map(Journey::hops)
            .collect();
        if hops.is_empty() {
            None
        } else {
            Some(hops.iter().sum::<usize>() as f64 / hops.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;
    use crate::coordinator::Coordinator;
    use crate::sim::Simulation;
    use dosco_traffic::ArrivalPattern;

    fn run_and_log() -> (JourneyLog, crate::metrics::Metrics) {
        let cfg = ScenarioConfig::paper_base(2)
            .with_pattern(ArrivalPattern::paper_poisson())
            .with_horizon(1_000.0);
        let mut sim = Simulation::new(cfg, 4);
        let mut log = JourneyLog::new();
        let mut c = crate::coordinator::RandomCoordinator::new(7);
        while let Some(dp) = sim.next_decision() {
            log.ingest(&sim.drain_events());
            let a = c.decide(&sim, &dp);
            sim.apply(a);
        }
        log.ingest(&sim.drain_events());
        (log, sim.metrics().clone())
    }

    #[test]
    fn journeys_match_metrics() {
        let (log, m) = run_and_log();
        assert_eq!(log.len() as u64, m.arrived);
        let completed = log
            .iter()
            .filter(|j| matches!(j.outcome, Outcome::Completed { .. }))
            .count() as u64;
        let dropped = log
            .iter()
            .filter(|j| matches!(j.outcome, Outcome::Dropped { .. }))
            .count() as u64;
        assert_eq!(completed, m.completed);
        assert_eq!(dropped, m.dropped_total());
        let hops: u64 = log.iter().map(|j| j.hops() as u64).sum();
        assert_eq!(hops, m.forwards);
    }

    #[test]
    fn paths_are_connected_node_sequences() {
        let (log, _) = run_and_log();
        for j in log.iter() {
            let path = j.path();
            assert_eq!(path[0], j.ingress);
            // Each consecutive pair in the path must be joined by a
            // Forwarded leg whose `from` matches the previous node.
            let mut prev = j.ingress;
            for leg in &j.legs {
                if let Leg::Forwarded { from, to, .. } = leg {
                    assert_eq!(*from, prev, "flow {} teleported", j.flow);
                    prev = *to;
                }
            }
        }
    }

    #[test]
    fn drop_forensics_filter() {
        let (log, m) = run_and_log();
        for reason in DropReason::ALL {
            assert_eq!(
                log.dropped_for(reason).len() as u64,
                m.dropped_for(reason),
                "{reason}"
            );
        }
    }

    #[test]
    fn completed_journeys_processed_full_chain() {
        let (log, _) = run_and_log();
        for j in log.iter() {
            if matches!(j.outcome, Outcome::Completed { .. }) {
                assert_eq!(j.processings(), 3, "video service has 3 components");
            }
        }
    }

    #[test]
    fn serde_round_trip() {
        let (log, _) = run_and_log();
        let j = log.iter().next().expect("at least one journey").clone();
        let json = serde_json::to_string(&j).unwrap();
        let back: Journey = serde_json::from_str(&json).unwrap();
        assert_eq!(back, j);
    }
}
