//! Substrate churn: link/node failures, repairs, capacity degradation,
//! and delay spikes as first-class simulation events.
//!
//! The simulator consumes a [`ChurnTimeline`] — a time-sorted script of
//! [`ChurnAction`]s — through its own event queue, so churn interleaves
//! deterministically with arrivals, decisions, and releases. Timelines
//! are usually *compiled* from a higher-level `dosco_chaos::ChurnSchedule`
//! (scripted entries plus seeded stochastic MTBF/MTTR generators); this
//! module only defines the mechanics the engine itself needs.
//!
//! The hard contract: an empty timeline ([`ChurnTimeline::none`]) leaves
//! the simulator bit-identical to a churn-free build — no extra queue
//! entries, no RNG draws, no changed float expressions (pinned by the
//! `simcore_goldens` suite).

use dosco_topology::{LinkId, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One substrate mutation, applied at a scheduled simulation time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChurnAction {
    /// The link fails: capacity drops to zero and (under
    /// [`TransitPolicy::Drop`]) flows whose head is in transit on it are
    /// dropped with [`crate::DropReason::LinkFailure`].
    LinkDown(LinkId),
    /// The link is repaired: nominal capacity and delay are restored and
    /// any degradation factor is reset.
    LinkUp(LinkId),
    /// The node fails: flows at (or processing on) it are dropped with
    /// [`crate::DropReason::NodeFailure`], every instance it hosts is
    /// lost with its reserved capacity, and arrivals routed to it die on
    /// entry while it stays down.
    NodeDown(NodeId),
    /// The node is repaired: nominal capacity restored, instances *not*
    /// resurrected (the node comes back empty).
    NodeUp(NodeId),
    /// Scales the link's effective capacity to `factor × nominal`
    /// (`factor` in `[0, 1]` degrades, `1.0` restores).
    DegradeLinkCapacity {
        /// The degraded link.
        link: LinkId,
        /// Multiplier on the nominal capacity.
        factor: f64,
    },
    /// Scales the node's effective compute capacity to
    /// `factor × nominal`.
    DegradeNodeCapacity {
        /// The degraded node.
        node: NodeId,
        /// Multiplier on the nominal capacity.
        factor: f64,
    },
    /// Scales the link's effective propagation delay to
    /// `factor × nominal` (`1.0` restores). Triggers a shortest-path
    /// recompute: routing baselines and the observation adapter's
    /// delays-to-egress see the spiked delay immediately.
    DelaySpike {
        /// The spiked link.
        link: LinkId,
        /// Multiplier on the nominal delay.
        factor: f64,
    },
}

impl ChurnAction {
    /// Stable kebab-case label used in traces and reports.
    pub fn label(&self) -> &'static str {
        match self {
            ChurnAction::LinkDown(_) => "link-down",
            ChurnAction::LinkUp(_) => "link-up",
            ChurnAction::NodeDown(_) => "node-down",
            ChurnAction::NodeUp(_) => "node-up",
            ChurnAction::DegradeLinkCapacity { .. } => "degrade-link",
            ChurnAction::DegradeNodeCapacity { .. } => "degrade-node",
            ChurnAction::DelaySpike { .. } => "delay-spike",
        }
    }

    /// The targeted entity's dense id (link or node index).
    pub fn target(&self) -> u64 {
        match self {
            ChurnAction::LinkDown(l)
            | ChurnAction::LinkUp(l)
            | ChurnAction::DegradeLinkCapacity { link: l, .. }
            | ChurnAction::DelaySpike { link: l, .. } => l.0 as u64,
            ChurnAction::NodeDown(v)
            | ChurnAction::NodeUp(v)
            | ChurnAction::DegradeNodeCapacity { node: v, .. } => v.0 as u64,
        }
    }

    /// The degradation/spike factor, if this action carries one.
    pub fn factor(&self) -> Option<f64> {
        match self {
            ChurnAction::DegradeLinkCapacity { factor, .. }
            | ChurnAction::DegradeNodeCapacity { factor, .. }
            | ChurnAction::DelaySpike { factor, .. } => Some(*factor),
            _ => None,
        }
    }

    /// Whether applying this action can change reachability or path
    /// delays (and therefore requires a shortest-path recompute).
    /// Capacity-only degradation does not.
    pub fn affects_routing(&self) -> bool {
        !matches!(
            self,
            ChurnAction::DegradeLinkCapacity { .. } | ChurnAction::DegradeNodeCapacity { .. }
        )
    }
}

impl fmt::Display for ChurnAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChurnAction::LinkDown(l) => write!(f, "link-down {l}"),
            ChurnAction::LinkUp(l) => write!(f, "link-up {l}"),
            ChurnAction::NodeDown(v) => write!(f, "node-down {v}"),
            ChurnAction::NodeUp(v) => write!(f, "node-up {v}"),
            ChurnAction::DegradeLinkCapacity { link, factor } => {
                write!(f, "degrade-link {link} ×{factor}")
            }
            ChurnAction::DegradeNodeCapacity { node, factor } => {
                write!(f, "degrade-node {node} ×{factor}")
            }
            ChurnAction::DelaySpike { link, factor } => {
                write!(f, "delay-spike {link} ×{factor}")
            }
        }
    }
}

/// What happens to flows whose head is in transit on a link when it
/// fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TransitPolicy {
    /// In-transit flows are dropped with
    /// [`crate::DropReason::LinkFailure`] (the default; matches the
    /// fluid model, where the cut stream cannot be buffered).
    #[default]
    Drop,
    /// In-transit flows still reach the far endpoint (the failure is
    /// treated as striking after the in-flight packets clear).
    Deliver,
}

/// A compiled, time-sorted churn script ready for
/// [`crate::Simulation::with_churn`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ChurnTimeline {
    entries: Vec<(f64, ChurnAction)>,
    transit: TransitPolicy,
}

impl ChurnTimeline {
    /// The empty timeline: the simulator behaves bit-identically to a
    /// churn-free run.
    pub fn none() -> Self {
        ChurnTimeline::default()
    }

    /// Builds a timeline from `(time, action)` entries, sorting them by
    /// time (stable, so equal-time entries keep their given order).
    ///
    /// # Panics
    ///
    /// Panics if any entry time is NaN or negative.
    pub fn new(mut entries: Vec<(f64, ChurnAction)>) -> Self {
        for (t, a) in &entries {
            assert!(t.is_finite() && *t >= 0.0, "churn time {t} for {a} must be finite and ≥ 0");
        }
        entries.sort_by(|a, b| a.0.total_cmp(&b.0));
        ChurnTimeline {
            entries,
            transit: TransitPolicy::default(),
        }
    }

    /// Appends one entry, keeping the timeline time-sorted.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN or negative.
    #[must_use]
    pub fn at(mut self, time: f64, action: ChurnAction) -> Self {
        assert!(
            time.is_finite() && time >= 0.0,
            "churn time {time} for {action} must be finite and ≥ 0"
        );
        let pos = self
            .entries
            .partition_point(|(t, _)| t.total_cmp(&time) != std::cmp::Ordering::Greater);
        self.entries.insert(pos, (time, action));
        self
    }

    /// Sets the in-transit policy for link failures.
    #[must_use]
    pub fn with_transit(mut self, transit: TransitPolicy) -> Self {
        self.transit = transit;
        self
    }

    /// The in-transit policy for link failures.
    pub fn transit(&self) -> TransitPolicy {
        self.transit
    }

    /// The time-sorted entries.
    pub fn entries(&self) -> &[(f64, ChurnAction)] {
        &self.entries
    }

    /// Number of scheduled churn events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the timeline schedules nothing (the bit-identity path).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Counters the simulator keeps while a churn timeline is active
/// (deliberately *outside* [`crate::Metrics`], whose serialized shape is
/// pinned by the golden suite).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnStats {
    /// Churn events applied so far (== the topology version).
    pub events_applied: u64,
    /// Link failures applied.
    pub link_downs: u64,
    /// Link repairs applied.
    pub link_ups: u64,
    /// Node failures applied.
    pub node_downs: u64,
    /// Node repairs applied.
    pub node_ups: u64,
    /// Capacity degradations applied (links + nodes).
    pub degrades: u64,
    /// Delay spikes applied.
    pub delay_spikes: u64,
    /// Flows killed because their carrying link failed.
    pub flows_killed_link: u64,
    /// Flows killed because their hosting node failed (including flows
    /// arriving at a node while it is down).
    pub flows_killed_node: u64,
    /// Instances lost with failed nodes (their reserved capacity is
    /// reclaimed atomically with the failure).
    pub instances_lost: u64,
    /// Shortest-path recomputations triggered by churn epochs. The cache
    /// contract: this never exceeds the number of routing-affecting churn
    /// events, regardless of decision count.
    pub sp_recomputes: u64,
}

/// Where a live flow currently resides, tracked (only while churn is
/// active) so a failure can find its victims without scanning the slab.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum FlowPlace {
    /// Head at a node, between decisions (or held).
    AtNode(NodeId),
    /// Head in transit on a link towards `to`.
    OnLink {
        /// The carrying link.
        link: LinkId,
        /// The receiving endpoint.
        to: NodeId,
    },
    /// Being processed by an instance at a node.
    Processing(NodeId),
}

impl FlowPlace {
    /// Whether the flow dies when node `v` fails.
    pub(crate) fn on_node(&self, v: NodeId) -> bool {
        matches!(self, FlowPlace::AtNode(n) | FlowPlace::Processing(n) if *n == v)
    }

    /// Whether the flow dies when link `l` fails (under
    /// [`TransitPolicy::Drop`]).
    pub(crate) fn on_link(&self, l: LinkId) -> bool {
        matches!(self, FlowPlace::OnLink { link, .. } if *link == l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_sorts_and_builds() {
        let t = ChurnTimeline::new(vec![
            (5.0, ChurnAction::LinkUp(LinkId(0))),
            (1.0, ChurnAction::LinkDown(LinkId(0))),
        ]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.entries()[0], (1.0, ChurnAction::LinkDown(LinkId(0))));
        assert_eq!(t.entries()[1], (5.0, ChurnAction::LinkUp(LinkId(0))));
        assert!(!t.is_empty());
        assert!(ChurnTimeline::none().is_empty());
    }

    #[test]
    fn at_keeps_sorted_order_with_stable_ties() {
        let t = ChurnTimeline::none()
            .at(2.0, ChurnAction::NodeDown(NodeId(1)))
            .at(1.0, ChurnAction::LinkDown(LinkId(0)))
            .at(2.0, ChurnAction::NodeUp(NodeId(1)));
        let times: Vec<f64> = t.entries().iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![1.0, 2.0, 2.0]);
        // Equal-time entries keep insertion order.
        assert_eq!(t.entries()[1].1, ChurnAction::NodeDown(NodeId(1)));
        assert_eq!(t.entries()[2].1, ChurnAction::NodeUp(NodeId(1)));
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn rejects_nan_time() {
        let _ = ChurnTimeline::none().at(f64::NAN, ChurnAction::LinkDown(LinkId(0)));
    }

    #[test]
    fn action_labels_targets_factors() {
        let a = ChurnAction::DegradeLinkCapacity {
            link: LinkId(3),
            factor: 0.5,
        };
        assert_eq!(a.label(), "degrade-link");
        assert_eq!(a.target(), 3);
        assert_eq!(a.factor(), Some(0.5));
        assert!(!a.affects_routing());
        let b = ChurnAction::NodeDown(NodeId(2));
        assert_eq!(b.label(), "node-down");
        assert_eq!(b.target(), 2);
        assert_eq!(b.factor(), None);
        assert!(b.affects_routing());
        assert!(ChurnAction::DelaySpike { link: LinkId(0), factor: 2.0 }.affects_routing());
        assert_eq!(b.to_string(), "node-down v2");
    }

    #[test]
    fn flow_place_membership() {
        assert!(FlowPlace::AtNode(NodeId(1)).on_node(NodeId(1)));
        assert!(FlowPlace::Processing(NodeId(1)).on_node(NodeId(1)));
        assert!(!FlowPlace::OnLink { link: LinkId(0), to: NodeId(1) }.on_node(NodeId(1)));
        assert!(FlowPlace::OnLink { link: LinkId(0), to: NodeId(1) }.on_link(LinkId(0)));
        assert!(!FlowPlace::AtNode(NodeId(0)).on_link(LinkId(0)));
    }

    #[test]
    fn serde_round_trip() {
        let t = ChurnTimeline::new(vec![(1.0, ChurnAction::DelaySpike { link: LinkId(1), factor: 3.0 })])
            .with_transit(TransitPolicy::Deliver);
        let json = serde_json::to_string(&t).unwrap();
        let back: ChurnTimeline = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
