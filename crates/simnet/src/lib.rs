//! Discrete-event flow-level network simulator for online service
//! coordination.
//!
//! This crate is the Rust counterpart of the paper's `coord-sim` substrate
//! (Sec. IV-C3): it simulates a substrate network processing many partially
//! overlapping flows through chained service components, under the fluid
//! model of Sec. III:
//!
//! - flows arrive at ingress nodes following a configurable
//!   [`dosco_traffic::ArrivalPattern`],
//! - whenever a flow's head arrives at a node (or finishes a component), the
//!   node must decide to process it locally or forward it to a neighbor —
//!   the simulator surfaces these moments as [`DecisionPoint`]s and a
//!   [`Coordinator`] answers with an [`Action`],
//! - processing a flow occupies `r_c(λ_f)` node capacity from processing
//!   start until the flow's tail leaves the instance; forwarding occupies
//!   `λ_f` link capacity for the link traversal,
//! - capacity violations, invalid actions, and expired deadlines drop the
//!   flow; reaching the egress fully processed within the deadline is a
//!   success (objective `o_f`, Eq. 1),
//! - component instances are created implicitly by the first local
//!   processing (scaling/placement derived from scheduling, Sec. IV-A),
//!   pay a startup delay, and are reaped after an idle timeout.
//!
//! The simulator is policy-agnostic and supports both control styles:
//! *inversion of control* via [`Simulation::run`] with a [`Coordinator`]
//! (heuristics, deployed agents) and *step-wise control* via
//! [`Simulation::next_decision`] / [`Simulation::apply`] (RL training
//! loops). All activity is also reported as a stream of [`SimEvent`]s so
//! reward functions can be computed outside the simulator.
//!
//! # Example
//!
//! ```
//! use dosco_simnet::{coordinator::AlwaysLocal, ScenarioConfig, Simulation};
//!
//! let config = ScenarioConfig::paper_base(2); // Abilene, 2 ingress nodes
//! let mut sim = Simulation::new(config, 7);
//! let metrics = sim.run(&mut AlwaysLocal).clone();
//! assert!(metrics.arrived > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod churn;
pub mod config;
pub mod coordinator;
pub mod event;
pub mod flow;
pub mod journey;
pub mod metrics;
pub mod probe;
pub mod queue;
pub mod service;
pub mod sim;
pub mod slab;

pub use churn::{ChurnAction, ChurnStats, ChurnTimeline, TransitPolicy};
pub use config::{IngressSpec, ScenarioConfig};
pub use coordinator::{Action, Coordinator, DecisionPoint, EventLog};
pub use event::{DropReason, SimEvent};
pub use flow::{Flow, FlowId, FlowKey};
pub use metrics::{Metrics, WindowedStats};
pub use queue::{EventKey, EventQueue};
pub use slab::{Slab, SlotKey};
pub use service::{Component, ComponentId, Service, ServiceCatalog, ServiceId};
pub use sim::Simulation;
