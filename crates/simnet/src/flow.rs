//! Flows: the unit of traffic and decision-making (Sec. III-A).

use crate::service::ServiceId;
use dosco_topology::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a flow `f ∈ F`, unique within one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlowId(pub u64);

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Dense generational handle to a live flow's slot in the simulator's
/// flow slab ([`crate::slab::Slab`]).
///
/// [`FlowId`] is the *stable public id* — sequential, serialized into
/// events and traces, never reused within a run. `FlowKey` is the
/// *storage handle*: resolving it is a bounds check plus a generation
/// compare (no hashing), and the slot is recycled once the flow
/// terminates. Internal scheduler events address flows by key; all
/// public surfaces keep the id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey(pub(crate) crate::slab::SlotKey);

impl FlowKey {
    /// The underlying slab slot key (diagnostics).
    pub fn slot(self) -> crate::slab::SlotKey {
        self.0
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// A live flow: `f = (s_f, c_f, v_f^in, v_f^eg, λ_f, t_f^in, δ_f, τ_f)`
/// plus its runtime position (current node and progress within the chain).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Flow {
    /// Unique id.
    pub id: FlowId,
    /// The requested service `s_f`.
    pub service: ServiceId,
    /// Ingress node `v_f^in` where the flow entered.
    pub ingress: NodeId,
    /// Egress node `v_f^eg` the flow must reach.
    pub egress: NodeId,
    /// Data rate `λ_f`.
    pub rate: f64,
    /// Arrival time `t_f^in`.
    pub arrival: f64,
    /// Duration `δ_f` (transmission time of the whole flow).
    pub duration: f64,
    /// Deadline `τ_f`, relative to arrival.
    pub deadline: f64,
    /// Number of chain components already traversed (0 = none; equal to the
    /// chain length means fully processed, `c_f = ∅`).
    pub chain_pos: usize,
    /// Total chain length `n_{s_f}` (cached from the catalog).
    pub chain_len: usize,
    /// The node where the flow's head currently is (or is headed to while
    /// traversing a link).
    pub location: NodeId,
}

impl Flow {
    /// Progress within the service chain, `p̂_f ∈ [0, 1]` (Sec. IV-B1a).
    pub fn progress(&self) -> f64 {
        if self.chain_len == 0 {
            1.0
        } else {
            self.chain_pos as f64 / self.chain_len as f64
        }
    }

    /// Whether all chain components have been traversed (`c_f = ∅`).
    pub fn fully_processed(&self) -> bool {
        self.chain_pos >= self.chain_len
    }

    /// Remaining time until the deadline at time `t`:
    /// `τ_f^t = τ_f − (t − t_f^in)`, clamped at 0 (Sec. III-A).
    pub fn remaining_time(&self, t: f64) -> f64 {
        (self.deadline - (t - self.arrival)).max(0.0)
    }

    /// Normalized remaining time `τ̂_f = τ_f^t / τ_f ∈ [0, 1]`
    /// (Sec. IV-B1a).
    pub fn remaining_fraction(&self, t: f64) -> f64 {
        if self.deadline <= 0.0 {
            0.0
        } else {
            (self.remaining_time(t) / self.deadline).clamp(0.0, 1.0)
        }
    }

    /// Whether the deadline has expired at time `t`.
    pub fn expired(&self, t: f64) -> bool {
        t - self.arrival > self.deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> Flow {
        Flow {
            id: FlowId(1),
            service: ServiceId(0),
            ingress: NodeId(0),
            egress: NodeId(7),
            rate: 1.0,
            arrival: 100.0,
            duration: 1.0,
            deadline: 50.0,
            chain_pos: 0,
            chain_len: 3,
            location: NodeId(0),
        }
    }

    #[test]
    fn progress_walks_zero_to_one() {
        let mut f = flow();
        assert_eq!(f.progress(), 0.0);
        f.chain_pos = 1;
        assert!((f.progress() - 1.0 / 3.0).abs() < 1e-12);
        f.chain_pos = 3;
        assert_eq!(f.progress(), 1.0);
        assert!(f.fully_processed());
    }

    #[test]
    fn remaining_time_decreases_and_clamps() {
        let f = flow();
        assert_eq!(f.remaining_time(100.0), 50.0);
        assert_eq!(f.remaining_time(130.0), 20.0);
        assert_eq!(f.remaining_time(151.0), 0.0);
        assert_eq!(f.remaining_fraction(100.0), 1.0);
        assert_eq!(f.remaining_fraction(125.0), 0.5);
        assert_eq!(f.remaining_fraction(200.0), 0.0);
    }

    #[test]
    fn expiry_is_strict() {
        let f = flow();
        assert!(!f.expired(150.0)); // exactly at the deadline: still ok
        assert!(f.expired(150.0 + 1e-9));
    }

    #[test]
    fn id_display() {
        use crate::service::ComponentId;
        assert_eq!(ComponentId(2).to_string(), "c2");
        assert_eq!(FlowId(9).to_string(), "f9");
    }
}
