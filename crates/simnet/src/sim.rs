//! The discrete-event simulation engine.

use crate::churn::{ChurnAction, ChurnStats, ChurnTimeline, FlowPlace, TransitPolicy};
use crate::config::ScenarioConfig;
use crate::coordinator::{Action, Coordinator, DecisionPoint};
use crate::event::{DropReason, QueuedEvent, SimEvent};
use crate::flow::{Flow, FlowId, FlowKey};
use crate::metrics::{Metrics, WindowedStats};
use crate::queue::{EventKey, EventQueue};
use crate::service::ComponentId;
use crate::slab::Slab;
use dosco_topology::{LinkId, NodeId, ShortestPaths};
use dosco_traffic::ArrivalProcess;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Float tolerance for capacity admission checks.
const CAP_EPS: f64 = 1e-9;

/// Terminations kept in the sliding success-ratio window while churn is
/// active (the resolution of the before/during/after-fault resilience
/// view).
const CHURN_WINDOW: usize = 256;

/// State the simulator keeps *only* while a non-empty [`ChurnTimeline`]
/// is installed. Boxed behind an `Option` on [`Simulation`]: with churn
/// disabled nothing here is allocated and every accessor falls through to
/// the exact pre-churn expression, which is what keeps
/// [`ChurnTimeline::none`] bit-identical to the seed simulator (pinned by
/// the `simcore_goldens` suite).
#[derive(Debug)]
struct ChurnState {
    timeline: ChurnTimeline,
    /// Nominal capacities and delays (id-ordered): the restore targets
    /// for `LinkUp`/`NodeUp` and the base of degradation factors.
    node_base: Vec<f64>,
    link_base: Vec<f64>,
    delay_base: Vec<f64>,
    /// Effective values read by admission checks and SP recomputes.
    node_eff_cap: Vec<f64>,
    link_eff_cap: Vec<f64>,
    link_eff_delay: Vec<f64>,
    /// Liveness masks fed to [`ShortestPaths::compute_masked`].
    node_up: Vec<bool>,
    link_up: Vec<bool>,
    /// Active degradation factors (reset to 1.0 by a repair).
    node_degrade: Vec<f64>,
    link_degrade: Vec<f64>,
    /// Failure epochs: bumped when an entity fails, so resource releases
    /// reserved *before* the failure are recognized as stale — their
    /// capacity was already reclaimed wholesale with the failure.
    node_epoch: Vec<u64>,
    link_epoch: Vec<u64>,
    /// Where each live flow's head currently is. Keyed by the monotone
    /// [`FlowId`] so fault victims die in arrival order — deterministic
    /// regardless of slab slot recycling.
    places: BTreeMap<FlowId, (FlowKey, FlowPlace)>,
    stats: ChurnStats,
    /// Sliding success ratio over recent terminations (resilience
    /// reporting around faults).
    window: WindowedStats,
}

/// A placed component instance (`x_{c,v} = 1`).
#[derive(Debug, Clone, PartialEq)]
struct Instance {
    /// When the instance finishes starting up and can begin processing.
    available_at: f64,
    /// Flows currently processing (or still transmitting) at the instance.
    active: usize,
    /// Last time the instance became idle (for the idle timeout).
    last_release: f64,
    /// The outstanding idle-timeout probe, cancelled when the instance
    /// becomes active again. At most one probe is ever outstanding.
    timeout: Option<EventKey>,
}

/// The discrete-event simulator. See the [crate docs](crate) for the model.
///
/// Drive it either with [`Simulation::run`] and a [`Coordinator`], or
/// step-wise with [`Simulation::next_decision`] / [`Simulation::apply`].
#[derive(Debug)]
pub struct Simulation {
    config: ScenarioConfig,
    sp: ShortestPaths,
    network_degree: usize,
    diameter: f64,
    time: f64,
    queue: EventQueue<QueuedEvent>,
    rng: StdRng,
    arrivals: Vec<Box<dyn ArrivalProcess>>,
    /// Live flows in a generational slab: freed slots are recycled, so the
    /// footprint is the concurrent high-water mark, not the arrival count.
    flows: Slab<Flow>,
    next_flow_id: u64,
    node_used: Vec<f64>,
    link_used: Vec<f64>,
    /// Dense NodeId-major instance table (`node.0 * num_components + c.0`).
    instances: Vec<Option<Instance>>,
    num_components: usize,
    num_instances: usize,
    pending: Option<DecisionPoint>,
    /// Slab handle of the pending decision's flow, kept alongside
    /// [`Simulation::pending`] so `flow(dp.flow)` on the decision hot path
    /// resolves without hashing or scanning.
    pending_key: Option<FlowKey>,
    /// Events emitted since the last drain. Per-step draining via
    /// [`Simulation::drain_events_into`] recycles this buffer, so memory
    /// does not grow with episode length.
    events: Vec<SimEvent>,
    metrics: Metrics,
    finished: bool,
    /// Trace stream for this episode; `None` when tracing is disabled at
    /// construction time, so the per-decision hot path is a single
    /// `is_none` check.
    obs_stream: Option<dosco_obs::Stream>,
    /// Decisions between mid-episode trace samples.
    obs_stride: u64,
    /// Substrate churn state; `None` (never allocated) unless the
    /// simulation was built via [`Simulation::with_churn`] with a
    /// non-empty timeline.
    churn: Option<Box<ChurnState>>,
}

impl Simulation {
    /// Creates a simulation for `config`, seeding all stochastic traffic
    /// with `seed`. Shortest paths, the network degree `Δ_G`, and the
    /// delay diameter `D_G` are precomputed here (Sec. IV-B1d).
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`ScenarioConfig::validate`].
    pub fn new(config: ScenarioConfig, seed: u64) -> Self {
        Simulation::with_churn(config, seed, ChurnTimeline::none())
    }

    /// Like [`Simulation::new`], but with a substrate churn `timeline`
    /// applied through the event loop: link/node failures and repairs,
    /// capacity degradation, and delay spikes interleave deterministically
    /// with arrivals and decisions. An empty timeline is bit-identical to
    /// [`Simulation::new`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`ScenarioConfig::validate`], or
    /// if a timeline entry targets a node/link outside the topology or
    /// carries a non-finite/negative factor.
    pub fn with_churn(config: ScenarioConfig, seed: u64, timeline: ChurnTimeline) -> Self {
        config
            .validate()
            .expect("scenario configuration must be valid");
        let sp = ShortestPaths::compute(&config.topology);
        let network_degree = config.topology.network_degree();
        let diameter = sp.diameter();
        let arrivals: Vec<Box<dyn ArrivalProcess>> =
            config.ingresses.iter().map(|i| i.pattern.build()).collect();
        let node_used = vec![0.0; config.topology.num_nodes()];
        let link_used = vec![0.0; config.topology.num_links()];
        let num_components = config.catalog.components().len();
        let instances = vec![None; config.topology.num_nodes() * num_components];
        let mut sim = Simulation {
            config,
            sp,
            network_degree,
            diameter,
            time: 0.0,
            queue: EventQueue::new(),
            rng: StdRng::seed_from_u64(seed),
            arrivals,
            flows: Slab::new(),
            next_flow_id: 0,
            node_used,
            link_used,
            instances,
            num_components,
            num_instances: 0,
            pending: None,
            pending_key: None,
            events: Vec::new(),
            metrics: Metrics::new(),
            finished: false,
            obs_stream: dosco_obs::trace_enabled().then(|| dosco_obs::Stream::sim(seed)),
            obs_stride: dosco_obs::sample_stride(),
            churn: None,
        };
        for idx in 0..sim.arrivals.len() {
            sim.schedule_next_arrival(idx, 0.0);
        }
        if !timeline.is_empty() {
            sim.install_churn(timeline);
        }
        if let Some(stream) = sim.obs_stream {
            dosco_obs::emit(stream, || dosco_obs::Event::EpisodeStart {
                seed,
                horizon: sim.config.horizon,
                nodes: sim.config.topology.num_nodes() as u64,
                links: sim.config.topology.num_links() as u64,
                ingresses: sim.config.ingresses.len() as u64,
            });
        }
        sim
    }

    /// Installs a non-empty churn timeline: validates targets, seeds the
    /// effective-capacity views from the nominal topology, and schedules
    /// one internal event per timeline entry within the horizon. Draws
    /// nothing from the traffic RNG stream.
    fn install_churn(&mut self, timeline: ChurnTimeline) {
        let topo = &self.config.topology;
        let (n, m) = (topo.num_nodes(), topo.num_links());
        for &(t, action) in timeline.entries() {
            let target = action.target() as usize;
            let in_range = match action {
                ChurnAction::NodeDown(_)
                | ChurnAction::NodeUp(_)
                | ChurnAction::DegradeNodeCapacity { .. } => target < n,
                _ => target < m,
            };
            assert!(
                in_range,
                "churn action `{action}` at t={t} targets an entity outside the topology"
            );
            if let Some(f) = action.factor() {
                assert!(
                    f.is_finite() && f >= 0.0,
                    "churn action `{action}` factor must be finite and ≥ 0"
                );
            }
        }
        let node_base: Vec<f64> = topo.node_capacities().collect();
        let link_base: Vec<f64> = topo.link_capacities().collect();
        let delay_base: Vec<f64> = topo.link_ids().map(|l| topo.link(l).delay).collect();
        for (idx, &(t, _)) in timeline.entries().iter().enumerate() {
            if t <= self.config.horizon {
                self.queue.push(t, QueuedEvent::Churn { idx });
            }
        }
        self.churn = Some(Box::new(ChurnState {
            node_eff_cap: node_base.clone(),
            link_eff_cap: link_base.clone(),
            link_eff_delay: delay_base.clone(),
            node_base,
            link_base,
            delay_base,
            node_up: vec![true; n],
            link_up: vec![true; m],
            node_degrade: vec![1.0; n],
            link_degrade: vec![1.0; m],
            node_epoch: vec![0; n],
            link_epoch: vec![0; m],
            places: BTreeMap::new(),
            stats: ChurnStats::default(),
            window: WindowedStats::new(CHURN_WINDOW),
            timeline,
        }));
    }

    // ------------------------------------------------------------------
    // Read-only accessors (the basis for local observations, Sec. IV-B1).
    // ------------------------------------------------------------------

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The scenario configuration.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// The substrate topology.
    pub fn topology(&self) -> &dosco_topology::Topology {
        &self.config.topology
    }

    /// The service catalog.
    pub fn catalog(&self) -> &crate::service::ServiceCatalog {
        &self.config.catalog
    }

    /// Precomputed all-pairs shortest path delays.
    pub fn shortest_paths(&self) -> &ShortestPaths {
        &self.sp
    }

    /// The network degree `Δ_G` (max neighbors per node).
    pub fn network_degree(&self) -> usize {
        self.network_degree
    }

    /// The network diameter `D_G` in path delay, used to normalize shaping
    /// penalties (Sec. IV-B3).
    pub fn diameter(&self) -> f64 {
        self.diameter
    }

    /// Compute resources currently in use at node `v` (`r_v(t)`).
    pub fn node_used(&self, v: NodeId) -> f64 {
        self.node_used[v.0]
    }

    /// Effective compute capacity of node `v`: nominal unless churn
    /// degraded it, zero while the node is down. Without churn this is
    /// exactly the static topology capacity.
    pub fn node_capacity(&self, v: NodeId) -> f64 {
        match &self.churn {
            Some(cs) => cs.node_eff_cap[v.0],
            None => self.config.topology.node(v).capacity,
        }
    }

    /// Free compute resources at node `v` (`cap_v − r_v(t)`).
    pub fn node_free(&self, v: NodeId) -> f64 {
        self.node_capacity(v) - self.node_used[v.0]
    }

    /// Data rate currently reserved on link `l` (`r_l(t)`).
    pub fn link_used(&self, l: LinkId) -> f64 {
        self.link_used[l.0]
    }

    /// Effective data-rate capacity of link `l` (see
    /// [`Simulation::node_capacity`]).
    pub fn link_capacity(&self, l: LinkId) -> f64 {
        match &self.churn {
            Some(cs) => cs.link_eff_cap[l.0],
            None => self.config.topology.link(l).capacity,
        }
    }

    /// Free data rate on link `l` (`cap_l − r_l(t)`).
    pub fn link_free(&self, l: LinkId) -> f64 {
        self.link_capacity(l) - self.link_used[l.0]
    }

    /// Effective propagation delay of link `l` (nominal unless a churn
    /// delay spike is active). Observation adapters must read this — not
    /// the static topology — so delays track the current topology
    /// version.
    pub fn link_delay(&self, l: LinkId) -> f64 {
        match &self.churn {
            Some(cs) => cs.link_eff_delay[l.0],
            None => self.config.topology.link(l).delay,
        }
    }

    /// Whether node `v` is currently up (always true without churn).
    pub fn is_node_up(&self, v: NodeId) -> bool {
        self.churn.as_ref().is_none_or(|cs| cs.node_up[v.0])
    }

    /// Whether link `l` is currently up (always true without churn).
    pub fn is_link_up(&self, l: LinkId) -> bool {
        self.churn.as_ref().is_none_or(|cs| cs.link_up[l.0])
    }

    /// Substrate topology version: the number of churn actions applied so
    /// far, 0 forever without churn. [`Simulation::shortest_paths`] is
    /// recomputed only when this changes through a routing-affecting
    /// action — consumers may cache per version.
    pub fn topo_version(&self) -> u64 {
        self.churn.as_ref().map_or(0, |cs| cs.stats.events_applied)
    }

    /// Churn counters, `None` when no churn timeline is installed.
    pub fn churn_stats(&self) -> Option<&ChurnStats> {
        self.churn.as_ref().map(|cs| &cs.stats)
    }

    /// Success ratio over the most recent terminations (a sliding window)
    /// while churn is active; `None` without churn or before any flow
    /// terminated.
    pub fn windowed_success_ratio(&self) -> Option<f64> {
        self.churn.as_ref().and_then(|cs| cs.window.success_ratio())
    }

    /// Dense index of `(v, c)` in the NodeId-major instance table.
    #[inline]
    fn inst_idx(&self, v: NodeId, c: ComponentId) -> usize {
        v.0 * self.num_components + c.0
    }

    /// Whether an instance of component `c` is placed at node `v`
    /// (`x_{c,v}(t)`, Sec. IV-B1e).
    pub fn has_instance(&self, v: NodeId, c: ComponentId) -> bool {
        self.instances[self.inst_idx(v, c)].is_some()
    }

    /// Number of placed instances (for scaling diagnostics).
    pub fn num_instances(&self) -> usize {
        self.num_instances
    }

    /// The live flow `f`, if it has neither completed nor been dropped.
    ///
    /// The pending decision's flow — the only flow observation adapters
    /// and coordinators query — resolves in O(1) via the cached slab
    /// handle; any other id falls back to a scan over live flows
    /// (diagnostics only).
    pub fn flow(&self, f: FlowId) -> Option<&Flow> {
        if let (Some(dp), Some(key)) = (&self.pending, self.pending_key) {
            if dp.flow == f {
                return self.flows.get(key.0);
            }
        }
        self.flows.iter().find(|fl| fl.id == f)
    }

    /// Number of flows currently in the network.
    pub fn live_flows(&self) -> usize {
        self.flows.len()
    }

    /// Peak concurrent live flows over the episode (slab high-water mark;
    /// the resident-memory proxy for flow storage).
    pub fn peak_live_flows(&self) -> usize {
        self.flows.high_water()
    }

    /// Flow slab slots ever allocated (live + recycled). Flat over time in
    /// steady state: churn reuses slots instead of growing the arena.
    pub fn flow_slab_capacity(&self) -> usize {
        self.flows.capacity()
    }

    /// Peak concurrent scheduled events over the episode.
    pub fn peak_queued_events(&self) -> usize {
        self.queue.high_water()
    }

    /// Event-queue slots ever allocated (live + recycled).
    pub fn event_slab_capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Metrics collected so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Whether the episode reached its horizon (no further decisions).
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Number of internally scheduled future events (diagnostics; useful
    /// when benchmarking simulator throughput).
    pub fn queued_events(&self) -> usize {
        self.queue.len()
    }

    /// Removes and returns all events emitted since the last drain.
    ///
    /// Allocates a fresh `Vec` per call; steady-state loops should prefer
    /// [`Simulation::drain_events_into`], which recycles one buffer.
    pub fn drain_events(&mut self) -> Vec<SimEvent> {
        std::mem::take(&mut self.events)
    }

    /// Moves all events emitted since the last drain into `out`
    /// (clearing it first), handing the simulator back `out`'s old
    /// allocation. Draining every step therefore ping-pongs two buffers
    /// and never allocates once they reach the per-step event high-water
    /// mark.
    pub fn drain_events_into(&mut self, out: &mut Vec<SimEvent>) {
        out.clear();
        std::mem::swap(&mut self.events, out);
    }

    /// The resource demand `r_{c_f}(λ_f)` of flow `f`'s requested
    /// component, or 0.0 if the flow is fully processed (Sec. IV-B1c).
    pub fn requested_resources(&self, f: FlowId) -> f64 {
        let Some(flow) = self.flow(f) else {
            return 0.0;
        };
        match self.config.catalog.component_at(flow.service, flow.chain_pos) {
            Some(c) => self.config.catalog.component(c).resources(flow.rate),
            None => 0.0,
        }
    }

    // ------------------------------------------------------------------
    // Stepping.
    // ------------------------------------------------------------------

    /// Advances the simulation to the next point where a coordinator must
    /// act. Returns `None` once the horizon is reached (or no events
    /// remain); terminal bookkeeping (success/expiry) happens internally.
    ///
    /// Calling this again without [`Simulation::apply`] returns the same
    /// pending decision.
    ///
    /// The `next_decision`/`apply` pair is the external integration
    /// point: [`Simulation::run`] drives it with an in-process
    /// [`Coordinator`], while the `dosco_serve` fabric holds the pending
    /// decision open across a remote batched inference round trip before
    /// applying — the idempotent pending state is what makes that split
    /// safe.
    pub fn next_decision(&mut self) -> Option<DecisionPoint> {
        if let Some(dp) = self.pending {
            return Some(dp);
        }
        if self.finished {
            return None;
        }
        while let Some(t) = self.queue.peek_time() {
            if t > self.config.horizon {
                break;
            }
            let (t, ev) = self.queue.pop().expect("peeked event exists");
            self.time = t;
            if let Some(dp) = self.handle(ev) {
                self.pending = Some(dp);
                return Some(dp);
            }
        }
        self.time = self.config.horizon;
        self.finished = true;
        self.emit_episode_end();
        None
    }

    /// Applies the coordinator's action to the pending decision.
    ///
    /// # Panics
    ///
    /// Panics if there is no pending decision (i.e.
    /// [`Simulation::next_decision`] was not called, or returned `None`).
    pub fn apply(&mut self, action: Action) {
        let dp = self
            .pending
            .take()
            .expect("apply() requires a pending decision from next_decision()");
        let key = self
            .pending_key
            .take()
            .expect("pending key accompanies the pending decision");
        self.metrics.decisions += 1;
        match action {
            Action::Local => self.apply_local(dp, key),
            Action::Forward(i) => self.apply_forward(dp, key, i),
        }
        if self.obs_stream.is_some() && self.metrics.decisions.is_multiple_of(self.obs_stride) {
            self.emit_sample();
        }
    }

    /// Runs the full episode under `coordinator`, returning final metrics.
    ///
    /// Events are streamed to the coordinator per decision through one
    /// recycled buffer, so the episode runs allocation-free in steady
    /// state regardless of length.
    pub fn run<C: Coordinator + ?Sized>(&mut self, coordinator: &mut C) -> &Metrics {
        let mut events = Vec::new();
        loop {
            self.drain_events_into(&mut events);
            if !events.is_empty() {
                coordinator.observe(self, &events);
            }
            let Some(dp) = self.next_decision() else {
                break;
            };
            let action = coordinator.decide(self, &dp);
            self.apply(action);
        }
        self.drain_events_into(&mut events);
        if !events.is_empty() {
            coordinator.observe(self, &events);
        }
        &self.metrics
    }

    // ------------------------------------------------------------------
    // Observability (dosco_obs). All emitters are gated on `obs_stream`,
    // set once at construction: with tracing disabled the only cost on
    // the decision path is one `is_none` check.
    // ------------------------------------------------------------------

    /// Mean and max utilization `used_i / cap_i` over a resource vector
    /// and its id-ordered capacities (zero-capacity resources count as 0).
    fn utilization(used: &[f64], caps: impl Iterator<Item = f64>) -> (f64, f64) {
        if used.is_empty() {
            return (0.0, 0.0);
        }
        let (mut sum, mut max) = (0.0, 0.0f64);
        for (&u, c) in used.iter().zip(caps) {
            let util = if c > 0.0 { u / c } else { 0.0 };
            sum += util;
            max = max.max(util);
        }
        (sum / used.len() as f64, max)
    }

    /// Emits one mid-episode [`dosco_obs::Event::EpisodeSample`] and feeds
    /// the utilization/success metrics into the global registry.
    fn emit_sample(&self) {
        let Some(stream) = self.obs_stream else {
            return;
        };
        let (node_util_mean, node_util_max) =
            Self::utilization(&self.node_used, self.config.topology.node_capacities());
        let (link_util_mean, link_util_max) =
            Self::utilization(&self.link_used, self.config.topology.link_capacities());
        let m = &self.metrics;
        dosco_obs::registry::count(dosco_obs::CounterKind::DecisionSamples, 1);
        if let Some(r) = m.success_ratio_opt() {
            dosco_obs::registry::set_gauge(dosco_obs::GaugeKind::LastSuccessRatio, r);
        }
        dosco_obs::registry::set_gauge(dosco_obs::GaugeKind::LastInFlight, m.in_flight() as f64);
        dosco_obs::registry::max_gauge(dosco_obs::GaugeKind::PeakNodeUtil, node_util_max);
        dosco_obs::registry::max_gauge(dosco_obs::GaugeKind::PeakLinkUtil, link_util_max);
        dosco_obs::registry::observe(dosco_obs::HistKind::NodeUtil, node_util_max);
        dosco_obs::registry::observe(dosco_obs::HistKind::LinkUtil, link_util_max);
        dosco_obs::emit(stream, || dosco_obs::Event::EpisodeSample {
            time: self.time,
            decisions: m.decisions,
            arrived: m.arrived,
            completed: m.completed,
            dropped: m.dropped_total(),
            in_flight: m.in_flight(),
            success_ratio: m.success_ratio_opt(),
            node_util_mean,
            node_util_max,
            link_util_mean,
            link_util_max,
            instances: self.num_instances as u64,
        });
    }

    /// Emits the final [`dosco_obs::Event::EpisodeEnd`] when the horizon
    /// is reached.
    fn emit_episode_end(&self) {
        let Some(stream) = self.obs_stream else {
            return;
        };
        dosco_obs::registry::count(dosco_obs::CounterKind::EpisodesTraced, 1);
        let m = &self.metrics;
        dosco_obs::emit(stream, || dosco_obs::Event::EpisodeEnd {
            time: self.time,
            arrived: m.arrived,
            completed: m.completed,
            dropped: m.dropped_total(),
            in_flight: m.in_flight(),
            success_ratio: m.success_ratio_opt(),
            avg_e2e_delay: m.avg_e2e_delay(),
            decisions: m.decisions,
            instances_started: m.instances_started,
            instances_stopped: m.instances_stopped,
        });
    }

    // ------------------------------------------------------------------
    // Event handling.
    // ------------------------------------------------------------------

    fn schedule_next_arrival(&mut self, idx: usize, now: f64) {
        let t = self.arrivals[idx].next_arrival(now, &mut self.rng);
        if t.is_finite() && t <= self.config.horizon {
            self.queue.push(t, QueuedEvent::Arrival { ingress_idx: idx });
        }
    }

    /// Handles one internal event; returns a decision point if the
    /// coordinator must act now.
    fn handle(&mut self, ev: QueuedEvent) -> Option<DecisionPoint> {
        match ev {
            QueuedEvent::Arrival { ingress_idx } => {
                self.spawn_flow(ingress_idx);
                self.schedule_next_arrival(ingress_idx, self.time);
                None
            }
            QueuedEvent::Decision { flow } => self.handle_decision(flow),
            QueuedEvent::ProcessingDone {
                flow,
                node,
                component,
            } => {
                if let Some(f) = self.flows.get_mut(flow.0) {
                    f.chain_pos += 1;
                    let id = f.id;
                    let service_len = f.chain_len;
                    self.events.push(SimEvent::InstanceTraversed {
                        flow: id,
                        node,
                        component,
                        service_len,
                        time: self.time,
                    });
                    self.metrics.processings += 1;
                    self.queue.push(self.time, QueuedEvent::Decision { flow });
                }
                None
            }
            QueuedEvent::ReleaseNode {
                node,
                component,
                amount,
                epoch,
            } => {
                if self
                    .churn
                    .as_ref()
                    .is_some_and(|cs| cs.node_epoch[node.0] != epoch)
                {
                    // The node failed after this reservation was made: its
                    // usage was reclaimed wholesale with the failure and
                    // the instance is gone, so the release is stale.
                    return None;
                }
                self.node_used[node.0] = (self.node_used[node.0] - amount).max(0.0);
                let idx = self.inst_idx(node, component);
                let went_idle = self.instances[idx].as_mut().is_some_and(|inst| {
                    inst.active = inst.active.saturating_sub(1);
                    if inst.active == 0 {
                        inst.last_release = self.time;
                        true
                    } else {
                        false
                    }
                });
                if went_idle {
                    let timeout = self.config.catalog.component(component).idle_timeout;
                    let probe = self.queue.push(
                        self.time + timeout,
                        QueuedEvent::InstanceTimeout { node, component },
                    );
                    let inst = self.instances[idx].as_mut().expect("instance went idle");
                    debug_assert!(inst.timeout.is_none(), "one probe per instance");
                    inst.timeout = Some(probe);
                }
                None
            }
            QueuedEvent::ReleaseLink { link, amount, epoch } => {
                if self
                    .churn
                    .as_ref()
                    .is_some_and(|cs| cs.link_epoch[link.0] != epoch)
                {
                    return None; // stale: the link failed in between
                }
                self.link_used[link.0] = (self.link_used[link.0] - amount).max(0.0);
                None
            }
            QueuedEvent::InstanceTimeout { node, component } => {
                // A probe only fires if it was never cancelled, i.e. the
                // instance stayed idle for its full timeout; the guard is
                // kept for defense in depth (and matches the lazy-check
                // semantics of the pre-cancellation core exactly).
                let idx = self.inst_idx(node, component);
                let timeout = self.config.catalog.component(component).idle_timeout;
                let remove = self.instances[idx].as_ref().is_some_and(|inst| {
                    inst.active == 0 && self.time + CAP_EPS >= inst.last_release + timeout
                });
                if remove {
                    self.instances[idx] = None;
                    self.num_instances -= 1;
                    self.metrics.instances_stopped += 1;
                    self.events.push(SimEvent::InstanceStopped {
                        node,
                        component,
                        time: self.time,
                    });
                }
                None
            }
            QueuedEvent::Churn { idx } => {
                self.apply_churn(idx);
                None
            }
        }
    }

    /// Applies the `idx`-th churn timeline entry. Runs between decisions
    /// (the queue only surfaces churn from [`Simulation::handle`], where
    /// no decision is pending), so victims are dropped atomically with
    /// the substrate mutation.
    fn apply_churn(&mut self, idx: usize) {
        let action = {
            let cs = self.churn.as_ref().expect("churn event requires churn state");
            cs.timeline.entries()[idx].1
        };
        match action {
            ChurnAction::LinkDown(l) => {
                let cs = self.churn.as_mut().expect("churn state");
                cs.stats.link_downs += 1;
                cs.link_up[l.0] = false;
                cs.link_eff_cap[l.0] = 0.0;
                if cs.timeline.transit() == TransitPolicy::Drop {
                    // Reservations on the link die with it: bump the epoch
                    // so queued releases are recognized as stale, reclaim
                    // the usage wholesale, and kill in-transit flows in
                    // FlowId (arrival) order.
                    cs.link_epoch[l.0] += 1;
                    let victims: Vec<(FlowKey, NodeId)> = cs
                        .places
                        .values()
                        .filter(|(_, place)| place.on_link(l))
                        .map(|&(key, place)| match place {
                            FlowPlace::OnLink { to, .. } => (key, to),
                            _ => unreachable!("on_link filtered"),
                        })
                        .collect();
                    self.link_used[l.0] = 0.0;
                    for (key, to) in victims {
                        self.drop_flow(key, DropReason::LinkFailure, to);
                    }
                }
            }
            ChurnAction::LinkUp(l) => {
                let cs = self.churn.as_mut().expect("churn state");
                cs.stats.link_ups += 1;
                cs.link_up[l.0] = true;
                cs.link_degrade[l.0] = 1.0;
                cs.link_eff_cap[l.0] = cs.link_base[l.0];
                cs.link_eff_delay[l.0] = cs.delay_base[l.0];
            }
            ChurnAction::NodeDown(v) => {
                let cs = self.churn.as_mut().expect("churn state");
                cs.stats.node_downs += 1;
                cs.node_up[v.0] = false;
                cs.node_eff_cap[v.0] = 0.0;
                cs.node_epoch[v.0] += 1;
                let victims: Vec<FlowKey> = cs
                    .places
                    .values()
                    .filter(|(_, place)| place.on_node(v))
                    .map(|&(key, _)| key)
                    .collect();
                self.node_used[v.0] = 0.0;
                for key in victims {
                    self.drop_flow(key, DropReason::NodeFailure, v);
                }
                // Instances die with the node; their reserved capacity was
                // reclaimed above. They count as stopped so the instance
                // conservation (started == stopped + live) holds through
                // the fault; the node comes back empty on repair.
                let mut lost = 0u64;
                for c in 0..self.num_components {
                    let idx = self.inst_idx(v, ComponentId(c));
                    if let Some(inst) = self.instances[idx].take() {
                        if let Some(probe) = inst.timeout {
                            self.queue.cancel(probe);
                        }
                        self.num_instances -= 1;
                        self.metrics.instances_stopped += 1;
                        lost += 1;
                        self.events.push(SimEvent::InstanceStopped {
                            node: v,
                            component: ComponentId(c),
                            time: self.time,
                        });
                    }
                }
                if lost > 0 {
                    let cs = self.churn.as_mut().expect("churn state");
                    cs.stats.instances_lost += lost;
                    dosco_obs::registry::count(dosco_obs::CounterKind::ChurnInstancesLost, lost);
                }
            }
            ChurnAction::NodeUp(v) => {
                let cs = self.churn.as_mut().expect("churn state");
                cs.stats.node_ups += 1;
                cs.node_up[v.0] = true;
                cs.node_degrade[v.0] = 1.0;
                cs.node_eff_cap[v.0] = cs.node_base[v.0];
            }
            ChurnAction::DegradeLinkCapacity { link, factor } => {
                let cs = self.churn.as_mut().expect("churn state");
                cs.stats.degrades += 1;
                cs.link_degrade[link.0] = factor;
                if cs.link_up[link.0] {
                    cs.link_eff_cap[link.0] = cs.link_base[link.0] * factor;
                }
            }
            ChurnAction::DegradeNodeCapacity { node, factor } => {
                let cs = self.churn.as_mut().expect("churn state");
                cs.stats.degrades += 1;
                cs.node_degrade[node.0] = factor;
                if cs.node_up[node.0] {
                    cs.node_eff_cap[node.0] = cs.node_base[node.0] * factor;
                }
            }
            ChurnAction::DelaySpike { link, factor } => {
                let cs = self.churn.as_mut().expect("churn state");
                cs.stats.delay_spikes += 1;
                cs.link_eff_delay[link.0] = cs.delay_base[link.0] * factor;
            }
        }
        // Every action bumps the topology version; routing-affecting ones
        // re-run Dijkstra against the current masks and delays. The reward
        // normalizer D_G deliberately keeps the *nominal* diameter so
        // reward scales stay comparable across topology versions.
        let version = {
            let cs = self.churn.as_mut().expect("churn state");
            cs.stats.events_applied += 1;
            cs.stats.events_applied
        };
        if action.affects_routing() {
            let cs = self.churn.as_ref().expect("churn state");
            self.sp = ShortestPaths::compute_masked(
                &self.config.topology,
                &cs.node_up,
                &cs.link_up,
                &cs.link_eff_delay,
            );
            self.churn.as_mut().expect("churn state").stats.sp_recomputes += 1;
            dosco_obs::registry::count(dosco_obs::CounterKind::ChurnSpRecomputes, 1);
        }
        self.events.push(SimEvent::ChurnApplied {
            action,
            topo_version: version,
            time: self.time,
        });
        dosco_obs::registry::count(dosco_obs::CounterKind::ChurnEventsApplied, 1);
        dosco_obs::registry::set_gauge(dosco_obs::GaugeKind::TopoVersion, version as f64);
        if let Some(stream) = self.obs_stream {
            dosco_obs::emit(stream, || dosco_obs::Event::ChurnApplied {
                time: self.time,
                action: action.label().to_string(),
                target: action.target(),
                factor: action.factor(),
                topo_version: version,
            });
        }
    }

    fn spawn_flow(&mut self, ingress_idx: usize) {
        let spec = &self.config.ingresses[ingress_idx];
        let id = FlowId(self.next_flow_id);
        self.next_flow_id += 1;
        let chain_len = self.config.catalog.service(spec.service).len();
        let node = spec.node;
        let flow = Flow {
            id,
            service: spec.service,
            ingress: spec.node,
            egress: spec.egress,
            rate: spec.profile.rate,
            arrival: self.time,
            duration: spec.profile.duration,
            deadline: spec.profile.deadline,
            chain_pos: 0,
            chain_len,
            location: spec.node,
        };
        let key = FlowKey(self.flows.insert(flow));
        if let Some(cs) = &mut self.churn {
            cs.places.insert(id, (key, FlowPlace::AtNode(node)));
        }
        self.metrics.arrived += 1;
        self.events.push(SimEvent::FlowArrived {
            flow: id,
            node,
            time: self.time,
        });
        self.queue.push(self.time, QueuedEvent::Decision { flow: key });
    }

    fn handle_decision(&mut self, key: FlowKey) -> Option<DecisionPoint> {
        let Some(f) = self.flows.get(key.0) else {
            return None; // flow already terminated (defensive)
        };
        let id = f.id;
        let node = f.location;
        let expired = f.expired(self.time);
        let done_at_egress = f.fully_processed() && node == f.egress;
        let (service, chain_pos) = (f.service, f.chain_pos);
        if self.churn.as_ref().is_some_and(|cs| !cs.node_up[node.0]) {
            // The head reached a node that is down (forwarded while the
            // link was still alive, or spawned at a dead ingress): it
            // dies on arrival.
            self.drop_flow(key, DropReason::NodeFailure, node);
            return None;
        }
        if let Some(cs) = &mut self.churn {
            if let Some(entry) = cs.places.get_mut(&id) {
                entry.1 = FlowPlace::AtNode(node);
            }
        }
        if expired {
            self.drop_flow(key, DropReason::DeadlineExpired, node);
            return None;
        }
        if done_at_egress {
            self.complete_flow(key, node);
            return None;
        }
        let component = self.config.catalog.component_at(service, chain_pos);
        self.pending_key = Some(key);
        Some(DecisionPoint {
            flow: id,
            node,
            time: self.time,
            component,
        })
    }

    fn complete_flow(&mut self, key: FlowKey, node: NodeId) {
        let f = self.flows.remove(key.0).expect("completing a live flow");
        let e2e = self.time - f.arrival;
        self.metrics.completed += 1;
        self.metrics.e2e_delay_sum += e2e;
        self.events.push(SimEvent::FlowCompleted {
            flow: f.id,
            time: self.time,
            e2e_delay: e2e,
            node,
        });
        if let Some(cs) = &mut self.churn {
            cs.places.remove(&f.id);
            cs.window
                .observe(self.events.last().expect("completion event just pushed"));
            if let Some(r) = cs.window.success_ratio() {
                dosco_obs::registry::set_gauge(dosco_obs::GaugeKind::WindowedSuccessRatio, r);
            }
        }
    }

    fn drop_flow(&mut self, key: FlowKey, reason: DropReason, node: NodeId) {
        let f = self.flows.remove(key.0).expect("dropping a live flow");
        self.metrics.record_drop(reason);
        self.events.push(SimEvent::FlowDropped {
            flow: f.id,
            time: self.time,
            reason,
            node,
        });
        if let Some(cs) = &mut self.churn {
            cs.places.remove(&f.id);
            match reason {
                DropReason::LinkFailure => cs.stats.flows_killed_link += 1,
                DropReason::NodeFailure => cs.stats.flows_killed_node += 1,
                _ => {}
            }
            cs.window
                .observe(self.events.last().expect("drop event just pushed"));
            if let Some(r) = cs.window.success_ratio() {
                dosco_obs::registry::set_gauge(dosco_obs::GaugeKind::WindowedSuccessRatio, r);
            }
        }
        // The drop-cause series feeds the ops /metrics surface; gated so
        // the tracing-off, churn-off hot path stays untouched.
        if self.obs_stream.is_some() || self.churn.is_some() {
            dosco_obs::registry::count(Self::drop_counter(reason), 1);
            if matches!(reason, DropReason::LinkFailure | DropReason::NodeFailure) {
                dosco_obs::registry::count(dosco_obs::CounterKind::ChurnFlowsKilled, 1);
            }
        }
    }

    /// The registry counter backing the `/metrics` drop-cause series.
    fn drop_counter(reason: DropReason) -> dosco_obs::CounterKind {
        match reason {
            DropReason::NodeCapacity => dosco_obs::CounterKind::DropNodeCapacity,
            DropReason::LinkCapacity => dosco_obs::CounterKind::DropLinkCapacity,
            DropReason::DeadlineExpired => dosco_obs::CounterKind::DropDeadlineExpired,
            DropReason::InvalidAction => dosco_obs::CounterKind::DropInvalidAction,
            DropReason::LinkFailure => dosco_obs::CounterKind::DropLinkFailure,
            DropReason::NodeFailure => dosco_obs::CounterKind::DropNodeFailure,
        }
    }

    fn apply_local(&mut self, dp: DecisionPoint, key: FlowKey) {
        let f = self
            .flows
            .get(key.0)
            .expect("pending decision refers to a live flow");
        let Some(component) = dp.component else {
            // Fully processed flow kept at the node: hold one time step
            // (Sec. IV-B2) and ask again.
            self.metrics.holds += 1;
            self.events.push(SimEvent::Held {
                flow: dp.flow,
                node: dp.node,
                time: self.time,
            });
            self.queue.push(
                self.time + self.config.hold_delay,
                QueuedEvent::Decision { flow: key },
            );
            return;
        };
        let comp = self.config.catalog.component(component);
        let demand = comp.resources(f.rate);
        let capacity = self.node_capacity(dp.node);
        if self.node_used[dp.node.0] + demand > capacity + CAP_EPS {
            self.drop_flow(key, DropReason::NodeCapacity, dp.node);
            return;
        }
        let duration = f.duration;
        // Scaling/placement derived from scheduling (Sec. IV-A): ensure an
        // instance exists, starting one (with startup delay) if needed.
        let idx = self.inst_idx(dp.node, component);
        let available_at = match &self.instances[idx] {
            Some(inst) => inst.available_at,
            None => {
                let available_at = self.time + comp.startup_delay;
                self.instances[idx] = Some(Instance {
                    available_at,
                    active: 0,
                    last_release: self.time,
                    timeout: None,
                });
                self.num_instances += 1;
                self.metrics.instances_started += 1;
                self.events.push(SimEvent::InstanceStarted {
                    node: dp.node,
                    component,
                    time: self.time,
                });
                available_at
            }
        };
        let start = self.time.max(available_at);
        let done = start + comp.processing_delay;
        self.node_used[dp.node.0] += demand;
        if let Some(cs) = &mut self.churn {
            if let Some(entry) = cs.places.get_mut(&dp.flow) {
                entry.1 = FlowPlace::Processing(dp.node);
            }
        }
        let inst = self.instances[idx].as_mut().expect("instance just ensured");
        inst.active += 1;
        // The instance is busy again: its outstanding idle-timeout probe
        // (if any) can no longer fire meaningfully — remove it from the
        // queue instead of letting it pop as a dead entry.
        let stale_probe = inst.timeout.take();
        if let Some(probe) = stale_probe {
            self.queue.cancel(probe);
        }
        self.queue.push(
            done,
            QueuedEvent::ProcessingDone {
                flow: key,
                node: dp.node,
                component,
            },
        );
        // Fluid/pipelined model (Sec. III-A): the instance handles the
        // flow's data *rate* while the stream passes through, i.e. for the
        // flow duration δ_f starting at processing start; the processing
        // delay d_c shifts the flow in time but does not multiply the
        // rate-based occupancy.
        let epoch = self.churn.as_ref().map_or(0, |cs| cs.node_epoch[dp.node.0]);
        self.queue.push(
            start + duration,
            QueuedEvent::ReleaseNode {
                node: dp.node,
                component,
                amount: demand,
                epoch,
            },
        );
    }

    fn apply_forward(&mut self, dp: DecisionPoint, key: FlowKey, neighbor_idx: usize) {
        let neighbors = self.config.topology.neighbors(dp.node);
        let Some(&(to, link)) = neighbors.get(neighbor_idx) else {
            // Non-existing neighbor: invalid action, flow dropped with a
            // high penalty (Sec. IV-B2).
            self.drop_flow(key, DropReason::InvalidAction, dp.node);
            return;
        };
        if self.churn.as_ref().is_some_and(|cs| !cs.link_up[link.0]) {
            // The chosen link is down: the forward fails on the spot.
            self.drop_flow(key, DropReason::LinkFailure, dp.node);
            return;
        }
        let f = self
            .flows
            .get(key.0)
            .expect("pending decision refers to a live flow");
        let rate = f.rate;
        let duration = f.duration;
        let (delay, capacity) = (self.link_delay(link), self.link_capacity(link));
        if self.link_used[link.0] + rate > capacity + CAP_EPS {
            self.drop_flow(key, DropReason::LinkCapacity, dp.node);
            return;
        }
        self.flows
            .get_mut(key.0)
            .expect("pending decision refers to a live flow")
            .location = to;
        if let Some(cs) = &mut self.churn {
            if let Some(entry) = cs.places.get_mut(&dp.flow) {
                entry.1 = FlowPlace::OnLink { link, to };
            }
        }
        self.link_used[link.0] += rate;
        self.metrics.forwards += 1;
        self.events.push(SimEvent::Forwarded {
            flow: dp.flow,
            from: dp.node,
            to,
            link,
            link_delay: delay,
            time: self.time,
        });
        // Rate-based occupancy: the link transmits the flow for δ_f; the
        // propagation delay d_l adds latency but not bandwidth usage.
        let epoch = self.churn.as_ref().map_or(0, |cs| cs.link_epoch[link.0]);
        self.queue.push(
            self.time + duration,
            QueuedEvent::ReleaseLink {
                link,
                amount: rate,
                epoch,
            },
        );
        self.queue
            .push(self.time + delay, QueuedEvent::Decision { flow: key });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IngressSpec;
    use crate::coordinator::{AlwaysLocal, RandomCoordinator};
    use crate::service::{Component, Service, ServiceCatalog, ServiceId};
    use dosco_topology::generators;
    use dosco_traffic::{ArrivalPattern, FlowProfile};

    /// A 3-node line (0 - 1 - 2) with one single-component service; ingress
    /// at 0, egress at 2, ample capacities, link delay 1 ms.
    fn line_scenario() -> ScenarioConfig {
        let mut topology = generators::line(3, 1.0, 10.0);
        topology.scale_capacities(10.0, 1.0);
        let catalog = ServiceCatalog::new(
            vec![Component {
                name: "c0".into(),
                processing_delay: 2.0,
                resource_per_rate: 1.0,
                resource_fixed: 0.0,
                startup_delay: 0.0,
                idle_timeout: 5.0,
            }],
            vec![Service {
                name: "s0".into(),
                chain: vec![ComponentId(0)],
            }],
        )
        .unwrap();
        ScenarioConfig {
            topology,
            catalog,
            ingresses: vec![IngressSpec {
                node: NodeId(0),
                pattern: ArrivalPattern::Fixed { interval: 10.0 },
                service: ServiceId(0),
                egress: NodeId(2),
                profile: FlowProfile::new(1.0, 1.0, 50.0),
            }],
            horizon: 100.0,
            hold_delay: 1.0,
            capacity_seed: 0,
        }
    }

    /// Coordinator for the line: process at the ingress, then forward
    /// toward node 2 (neighbor index: node 0 has [1]; node 1 has [0, 2]).
    struct LineForward;

    impl Coordinator for LineForward {
        fn decide(&mut self, _sim: &Simulation, dp: &DecisionPoint) -> Action {
            if dp.component.is_some() {
                Action::Local
            } else if dp.node == NodeId(0) {
                Action::Forward(0)
            } else {
                // At node 1 the second neighbor (index 1) is node 2.
                Action::Forward(1)
            }
        }
    }

    #[test]
    fn flows_complete_on_line() {
        let mut sim = Simulation::new(line_scenario(), 1);
        let m = sim.run(&mut LineForward).clone();
        // Arrivals at t = 10, 20, ..., 100 -> 10 flows. Each needs
        // 2 ms processing + 2 hops x 1 ms = 4 ms e2e, so the flow arriving
        // exactly at the horizon (t=100) is still in flight at the end.
        assert_eq!(m.arrived, 10);
        assert_eq!(m.completed, 9);
        assert_eq!(m.in_flight(), 1);
        assert_eq!(m.dropped_total(), 0);
        assert_eq!(m.success_ratio(), 1.0);
        let avg = m.avg_e2e_delay().unwrap();
        assert!((avg - 4.0).abs() < 1e-9, "avg e2e {avg}");
    }

    #[test]
    fn always_local_expires_flows() {
        let mut cfg = line_scenario();
        cfg.horizon = 200.0;
        let mut sim = Simulation::new(cfg, 1);
        let m = sim.run(&mut AlwaysLocal).clone();
        // Flows are processed at node 0 then held until the 50 ms deadline.
        assert!(m.completed == 0);
        assert!(m.dropped_for(DropReason::DeadlineExpired) > 0);
        assert!(m.holds > 0);
        assert!(m.success_ratio() < 1.0);
    }

    #[test]
    fn node_capacity_drops() {
        let mut cfg = line_scenario();
        // Capacity 1 with rate-1 flows: a second concurrent processing
        // at node 0 must be rejected.
        cfg.topology.scale_capacities(1.0 / 10.0, 1.0);
        // Burst: two ingress specs both arriving at node 0 every 10 ms.
        cfg.ingresses.push(cfg.ingresses[0].clone());
        cfg.horizon = 15.0;
        let mut sim = Simulation::new(cfg, 1);
        let m = sim.run(&mut LineForward).clone();
        // Both flows arrive at t=10; the first processes (uses full cap 1),
        // the second must be dropped by the node-capacity check.
        assert_eq!(m.arrived, 2);
        assert_eq!(m.dropped_for(DropReason::NodeCapacity), 1);
    }

    #[test]
    fn link_capacity_drops() {
        let mut cfg = line_scenario();
        // Link capacity 1: two overlapping flows cannot share a link.
        for l in 0..cfg.topology.num_links() {
            assert_eq!(cfg.topology.link(LinkId(l)).capacity, 10.0);
        }
        cfg.topology.scale_capacities(1.0, 0.1);
        cfg.ingresses.push(cfg.ingresses[0].clone());
        cfg.horizon = 15.0;
        let mut sim = Simulation::new(cfg, 1);
        let m = sim.run(&mut LineForward).clone();
        // Both flows process in parallel (node cap is ample), finish at the
        // same instant, and both try link 0->1: the second is dropped.
        assert_eq!(m.arrived, 2);
        assert_eq!(m.dropped_for(DropReason::LinkCapacity), 1);
        assert_eq!(m.completed, 1);
    }

    #[test]
    fn invalid_action_drops() {
        struct Invalid;
        impl Coordinator for Invalid {
            fn decide(&mut self, _sim: &Simulation, _dp: &DecisionPoint) -> Action {
                Action::Forward(7) // node 0 has one neighbor: invalid
            }
        }
        let mut cfg = line_scenario();
        cfg.horizon = 15.0;
        let mut sim = Simulation::new(cfg, 1);
        let m = sim.run(&mut Invalid).clone();
        assert_eq!(m.arrived, 1);
        assert_eq!(m.dropped_for(DropReason::InvalidAction), 1);
    }

    #[test]
    fn flow_conservation() {
        // Under a random policy every arrived flow either completes, drops,
        // or is still in flight; never duplicated or lost.
        let cfg = ScenarioConfig::paper_base(3).with_horizon(2_000.0);
        let mut sim = Simulation::new(cfg, 3);
        let mut rc = RandomCoordinator::new(4);
        let m = sim.run(&mut rc).clone();
        assert!(m.arrived > 100);
        assert_eq!(
            m.arrived,
            m.completed + m.dropped_total() + sim.live_flows() as u64
        );
    }

    #[test]
    fn resources_return_to_zero_after_quiescence() {
        let mut cfg = line_scenario();
        cfg.horizon = 500.0;
        // One flow only.
        cfg.ingresses[0].pattern = ArrivalPattern::Fixed { interval: 400.0 };
        let mut sim = Simulation::new(cfg, 1);
        sim.run(&mut LineForward);
        for v in sim.topology().node_ids() {
            assert!(sim.node_used(v).abs() < 1e-9);
        }
        for l in sim.topology().link_ids() {
            assert!(sim.link_used(l).abs() < 1e-9);
        }
    }

    /// A flow dropped *after* `apply_local` already scheduled its
    /// `ReleaseNode` must still release exactly its reserved demand at the
    /// scheduled time — neither leaking the reservation (drop cancels
    /// nothing) nor releasing twice.
    #[test]
    fn dropped_flow_releases_reserved_node_capacity_exactly_once() {
        /// Processes every flow at node 0 and records the node's usage at
        /// each fresh (component-bearing) decision point.
        struct Probe {
            samples: Vec<(f64, f64)>,
        }
        impl Coordinator for Probe {
            fn decide(&mut self, sim: &Simulation, dp: &DecisionPoint) -> Action {
                if dp.component.is_some() {
                    self.samples.push((dp.time, sim.node_used(NodeId(0))));
                }
                Action::Local
            }
        }

        let mut cfg = line_scenario();
        cfg.topology.scale_capacities(2.0 / 10.0, 1.0); // node capacity 2.0
        // Flow A: arrives t=10, reserves 1.0 until t=15 (duration 5), but
        // its 1.5 ms deadline expires at the post-processing decision
        // (t=12) -> dropped with the release still queued for t=15.
        cfg.ingresses[0].profile = FlowProfile::new(1.0, 5.0, 1.5);
        // Flow B: arrives t=10 too, reserves 1.0 until t=20 -> at t=17 the
        // node must hold exactly B's demand.
        cfg.ingresses.push(IngressSpec {
            profile: FlowProfile::new(1.0, 10.0, 50.0),
            ..cfg.ingresses[0].clone()
        });
        // Observer flow C: its arrival decision at t=17 samples the node.
        cfg.ingresses.push(IngressSpec {
            pattern: ArrivalPattern::Fixed { interval: 17.0 },
            profile: FlowProfile::new(1.0, 10.0, 50.0),
            ..cfg.ingresses[0].clone()
        });
        cfg.horizon = 19.0;
        let mut sim = Simulation::new(cfg, 1);
        let mut probe = Probe { samples: Vec::new() };
        let m = sim.run(&mut probe).clone();

        assert_eq!(m.arrived, 3);
        assert_eq!(m.dropped_for(DropReason::DeadlineExpired), 1, "flow A");
        let at_17: Vec<f64> = probe
            .samples
            .iter()
            .filter(|(t, _)| *t == 17.0)
            .map(|&(_, used)| used)
            .collect();
        // 2.0 here would mean A's reservation leaked (drop cancelled the
        // release); 0.0 would mean it was released twice (B's share lost).
        assert_eq!(at_17, vec![1.0], "node 0 usage at t=17");
    }

    #[test]
    fn instance_lifecycle_with_timeout() {
        let mut cfg = line_scenario();
        cfg.horizon = 300.0;
        cfg.ingresses[0].pattern = ArrivalPattern::Fixed { interval: 250.0 };
        let mut sim = Simulation::new(cfg, 1);
        sim.run(&mut LineForward);
        let m = sim.metrics();
        // One flow -> one instance started at node 0; idle timeout 5 ms
        // passes long before the horizon -> instance stopped.
        assert_eq!(m.instances_started, 1);
        assert_eq!(m.instances_stopped, 1);
        assert_eq!(sim.num_instances(), 0);
    }

    #[test]
    fn startup_delay_defers_processing() {
        let mut cfg = line_scenario();
        let mut comp = cfg.catalog.components()[0].clone();
        comp.startup_delay = 3.0;
        // Keep the instance warm across the 10 ms inter-arrival gap.
        comp.idle_timeout = 15.0;
        cfg.catalog = ServiceCatalog::new(
            vec![comp],
            vec![Service {
                name: "s0".into(),
                chain: vec![ComponentId(0)],
            }],
        )
        .unwrap();
        cfg.horizon = 30.0;
        let mut sim = Simulation::new(cfg, 1);
        let m = sim.run(&mut LineForward).clone();
        // Arrivals at t = 10, 20, 30; the last is still in flight.
        assert_eq!(m.completed, 2);
        // First flow pays the 3 ms startup: 3 + 2 + 2 = 7 ms; the second
        // reuses the warm instance: 2 + 2 = 4 ms.
        assert!((m.avg_e2e_delay().unwrap() - 5.5).abs() < 1e-9);
    }

    #[test]
    fn deadline_enforced_end_to_end() {
        let mut cfg = line_scenario();
        cfg.ingresses[0].profile = FlowProfile::new(1.0, 1.0, 3.0); // < 4 ms needed
        cfg.horizon = 50.0;
        let mut sim = Simulation::new(cfg, 1);
        let m = sim.run(&mut LineForward).clone();
        assert_eq!(m.completed, 0);
        assert!(m.dropped_for(DropReason::DeadlineExpired) > 0);
    }

    #[test]
    fn step_api_matches_run_api() {
        let run_metrics = {
            let mut sim = Simulation::new(line_scenario(), 1);
            sim.run(&mut LineForward).clone()
        };
        let mut sim = Simulation::new(line_scenario(), 1);
        let mut c = LineForward;
        while let Some(dp) = sim.next_decision() {
            // next_decision is idempotent until apply.
            assert_eq!(sim.next_decision(), Some(dp));
            let a = c.decide(&sim, &dp);
            sim.apply(a);
        }
        assert_eq!(sim.metrics(), &run_metrics);
        assert!(sim.is_finished());
    }

    #[test]
    #[should_panic(expected = "pending decision")]
    fn apply_without_decision_panics() {
        let mut sim = Simulation::new(line_scenario(), 1);
        sim.apply(Action::Local);
    }

    /// Wraps a coordinator and records every event `run` reports.
    struct Recording<C> {
        inner: C,
        events: Vec<SimEvent>,
    }

    impl<C: Coordinator> Coordinator for Recording<C> {
        fn decide(&mut self, sim: &Simulation, dp: &DecisionPoint) -> Action {
            self.inner.decide(sim, dp)
        }
        fn observe(&mut self, _sim: &Simulation, events: &[SimEvent]) {
            self.events.extend_from_slice(events);
        }
    }

    #[test]
    fn events_cover_flow_lifecycle() {
        let mut sim = Simulation::new(line_scenario(), 1);
        let mut rec = Recording {
            inner: LineForward,
            events: Vec::new(),
        };
        sim.run(&mut rec);
        let events = rec.events;
        let arrived = events
            .iter()
            .filter(|e| matches!(e, SimEvent::FlowArrived { .. }))
            .count();
        let completed = events
            .iter()
            .filter(|e| matches!(e, SimEvent::FlowCompleted { .. }))
            .count();
        let traversed = events
            .iter()
            .filter(|e| matches!(e, SimEvent::InstanceTraversed { .. }))
            .count();
        let forwarded = events
            .iter()
            .filter(|e| matches!(e, SimEvent::Forwarded { .. }))
            .count();
        assert_eq!(arrived, 10);
        assert_eq!(completed, 9); // the t=100 arrival is in flight
        assert_eq!(traversed, 9); // one component each
        assert_eq!(forwarded, 18); // two hops each
        // Second drain yields nothing.
        assert!(sim.drain_events().is_empty());
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let cfg = ScenarioConfig::paper_base(2)
                .with_pattern(ArrivalPattern::paper_poisson())
                .with_horizon(1_000.0);
            let mut sim = Simulation::new(cfg, seed);
            let mut rc = RandomCoordinator::new(99);
            sim.run(&mut rc).clone()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    // ------------------------------------------------------------------
    // Substrate churn.
    // ------------------------------------------------------------------

    #[test]
    fn empty_timeline_is_identical_to_plain_new() {
        let cfg = || ScenarioConfig::paper_base(2).with_horizon(1_000.0);
        let run = |sim: &mut Simulation| {
            let mut rec = Recording {
                inner: RandomCoordinator::new(7),
                events: Vec::new(),
            };
            let m = sim.run(&mut rec).clone();
            (m, rec.events)
        };
        let mut plain = Simulation::new(cfg(), 11);
        let mut churned = Simulation::with_churn(cfg(), 11, ChurnTimeline::none());
        assert!(churned.churn_stats().is_none());
        assert_eq!(churned.topo_version(), 0);
        assert_eq!(run(&mut plain), run(&mut churned));
    }

    #[test]
    fn link_down_kills_in_transit_flow() {
        // LineForward: arrival t=10, processed by t=12, forwarded onto
        // link 0 at t=12 (in transit until t=13). Cut the link at t=12.5.
        let mut cfg = line_scenario();
        cfg.horizon = 15.0;
        let timeline =
            ChurnTimeline::none().at(12.5, ChurnAction::LinkDown(LinkId(0)));
        let mut sim = Simulation::with_churn(cfg, 1, timeline);
        let m = sim.run(&mut LineForward).clone();
        assert_eq!(m.arrived, 1);
        assert_eq!(m.completed, 0);
        assert_eq!(m.dropped_for(DropReason::LinkFailure), 1);
        assert_eq!(sim.link_used(LinkId(0)), 0.0, "reservation reclaimed");
        assert!(!sim.is_link_up(LinkId(0)));
        let stats = sim.churn_stats().unwrap();
        assert_eq!(stats.link_downs, 1);
        assert_eq!(stats.flows_killed_link, 1);
        assert_eq!(stats.events_applied, 1);
        assert_eq!(stats.sp_recomputes, 1);
        assert_eq!(sim.topo_version(), 1);
    }

    #[test]
    fn deliver_policy_spares_in_transit_flows() {
        let mut cfg = line_scenario();
        cfg.horizon = 15.0;
        let timeline = ChurnTimeline::none()
            .at(12.5, ChurnAction::LinkDown(LinkId(0)))
            .with_transit(TransitPolicy::Deliver);
        let mut sim = Simulation::with_churn(cfg, 1, timeline);
        let m = sim.run(&mut LineForward).clone();
        // The failure strikes after the in-flight stream clears: the flow
        // still reaches node 1 at t=13 and completes via link 1.
        assert_eq!(m.completed, 1);
        assert_eq!(m.dropped_total(), 0);
        assert_eq!(sim.churn_stats().unwrap().flows_killed_link, 0);
    }

    #[test]
    fn forward_onto_dead_link_drops_at_the_node() {
        let mut cfg = line_scenario();
        cfg.horizon = 15.0;
        // Link 0 is already down when the flow tries to leave node 0.
        let timeline = ChurnTimeline::none().at(5.0, ChurnAction::LinkDown(LinkId(0)));
        let mut sim = Simulation::with_churn(cfg, 1, timeline);
        let m = sim.run(&mut LineForward).clone();
        assert_eq!(m.dropped_for(DropReason::LinkFailure), 1);
        assert_eq!(m.completed, 0);
    }

    #[test]
    fn node_down_kills_flows_and_instances() {
        let mut cfg = line_scenario();
        cfg.horizon = 25.0;
        let timeline = ChurnTimeline::none().at(11.0, ChurnAction::NodeDown(NodeId(0)));
        let mut sim = Simulation::with_churn(cfg, 1, timeline);
        let m = sim.run(&mut LineForward).clone();
        // Flow 1 (t=10) is processing at node 0 when it dies at t=11;
        // flow 2 (t=20) arrives at the dead ingress and dies on entry.
        assert_eq!(m.arrived, 2);
        assert_eq!(m.dropped_for(DropReason::NodeFailure), 2);
        assert_eq!(m.completed, 0);
        assert_eq!(sim.node_used(NodeId(0)), 0.0, "capacity reclaimed");
        assert_eq!(sim.num_instances(), 0);
        // The lost instance counts as stopped: conservation holds.
        assert_eq!(m.instances_started, 1);
        assert_eq!(m.instances_stopped, 1);
        let stats = sim.churn_stats().unwrap();
        assert_eq!(stats.flows_killed_node, 2);
        assert_eq!(stats.instances_lost, 1);
        assert!(!sim.is_node_up(NodeId(0)));
    }

    #[test]
    fn repair_restores_service() {
        let mut cfg = line_scenario();
        cfg.horizon = 25.0;
        let timeline = ChurnTimeline::none()
            .at(5.0, ChurnAction::NodeDown(NodeId(0)))
            .at(15.0, ChurnAction::NodeUp(NodeId(0)));
        let mut sim = Simulation::with_churn(cfg, 1, timeline);
        let m = sim.run(&mut LineForward).clone();
        // Flow 1 (t=10) dies at the dead ingress; flow 2 (t=20) completes
        // on the repaired substrate.
        assert_eq!(m.dropped_for(DropReason::NodeFailure), 1);
        assert_eq!(m.completed, 1);
        assert!(sim.is_node_up(NodeId(0)));
        assert_eq!(sim.node_capacity(NodeId(0)), 10.0, "nominal restored");
        assert_eq!(sim.windowed_success_ratio(), Some(0.5));
    }

    #[test]
    fn degrades_enforce_effective_capacity() {
        // Link degraded to zero capacity: the forward fails the admission
        // check (LinkCapacity, not LinkFailure — the link is up).
        let mut cfg = line_scenario();
        cfg.horizon = 15.0;
        let timeline = ChurnTimeline::none().at(
            5.0,
            ChurnAction::DegradeLinkCapacity {
                link: LinkId(0),
                factor: 0.0,
            },
        );
        let mut sim = Simulation::with_churn(cfg, 1, timeline);
        let m = sim.run(&mut LineForward).clone();
        assert_eq!(m.dropped_for(DropReason::LinkCapacity), 1);
        assert_eq!(sim.link_capacity(LinkId(0)), 0.0);
        assert!(sim.is_link_up(LinkId(0)));
        assert_eq!(sim.churn_stats().unwrap().sp_recomputes, 0, "capacity-only");

        // Node degraded below the flow demand: NodeCapacity drop.
        let mut cfg = line_scenario();
        cfg.horizon = 15.0;
        let timeline = ChurnTimeline::none().at(
            5.0,
            ChurnAction::DegradeNodeCapacity {
                node: NodeId(0),
                factor: 0.05,
            },
        );
        let mut sim = Simulation::with_churn(cfg, 1, timeline);
        let m = sim.run(&mut LineForward).clone();
        assert_eq!(m.dropped_for(DropReason::NodeCapacity), 1);
        assert!((sim.node_capacity(NodeId(0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn delay_spike_updates_paths_and_forwarding() {
        let mut cfg = line_scenario();
        cfg.horizon = 20.0;
        let timeline = ChurnTimeline::none().at(
            1.0,
            ChurnAction::DelaySpike {
                link: LinkId(0),
                factor: 5.0,
            },
        );
        let mut sim = Simulation::with_churn(cfg, 1, timeline);
        let m = sim.run(&mut LineForward).clone();
        assert_eq!(sim.link_delay(LinkId(0)), 5.0);
        // Shortest paths were recomputed with the spiked delay.
        assert_eq!(sim.shortest_paths().delay(NodeId(0), NodeId(2)), 6.0);
        // e2e = 2 ms processing + 5 ms spiked hop + 1 ms second hop.
        assert_eq!(m.completed, 1);
        assert!((m.avg_e2e_delay().unwrap() - 8.0).abs() < 1e-9);
        assert_eq!(sim.churn_stats().unwrap().sp_recomputes, 1);
    }

    /// A resource release scheduled *before* a fault must not fire after
    /// the fault reclaimed that capacity wholesale (the epoch guard):
    /// otherwise a post-repair reservation would be silently released.
    #[test]
    fn stale_release_is_skipped_across_a_down_up_cycle() {
        struct Probe {
            samples: Vec<(f64, f64)>,
        }
        impl Coordinator for Probe {
            fn decide(&mut self, sim: &Simulation, dp: &DecisionPoint) -> Action {
                if dp.component.is_some() {
                    self.samples.push((dp.time, sim.node_used(NodeId(0))));
                }
                Action::Local
            }
        }

        let mut cfg = line_scenario();
        cfg.topology.scale_capacities(2.0 / 10.0, 1.0); // node capacity 2.0
        // Flow A: arrives t=10, reserves 1.0 with release queued for t=15.
        cfg.ingresses[0].profile = FlowProfile::new(1.0, 5.0, 50.0);
        // Flow B: arrives t=13 (after the repair), reserves 1.0 until t=23.
        cfg.ingresses.push(IngressSpec {
            pattern: ArrivalPattern::Fixed { interval: 13.0 },
            profile: FlowProfile::new(1.0, 10.0, 50.0),
            ..cfg.ingresses[0].clone()
        });
        // Observer flow C: its arrival decision at t=17 samples the node.
        cfg.ingresses.push(IngressSpec {
            pattern: ArrivalPattern::Fixed { interval: 17.0 },
            profile: FlowProfile::new(1.0, 10.0, 50.0),
            ..cfg.ingresses[0].clone()
        });
        cfg.horizon = 19.0;
        // Node 0 fails at t=11 (killing A, reclaiming its reservation) and
        // is repaired at t=12.
        let timeline = ChurnTimeline::none()
            .at(11.0, ChurnAction::NodeDown(NodeId(0)))
            .at(12.0, ChurnAction::NodeUp(NodeId(0)));
        let mut sim = Simulation::with_churn(cfg, 1, timeline);
        let mut probe = Probe { samples: Vec::new() };
        let m = sim.run(&mut probe).clone();

        assert_eq!(m.dropped_for(DropReason::NodeFailure), 1, "flow A");
        let at_17: Vec<f64> = probe
            .samples
            .iter()
            .filter(|(t, _)| *t == 17.0)
            .map(|&(_, used)| used)
            .collect();
        // 0.0 here would mean A's stale release (queued for t=15, epoch 0)
        // fired after the fault already reclaimed its reservation —
        // stealing B's live share.
        assert_eq!(at_17, vec![1.0], "node 0 usage at t=17");
    }

    #[test]
    fn churn_run_is_deterministic_and_conserves_flows() {
        let timeline = || {
            ChurnTimeline::new(vec![
                (150.0, ChurnAction::LinkDown(LinkId(3))),
                (220.0, ChurnAction::NodeDown(NodeId(5))),
                (300.0, ChurnAction::LinkUp(LinkId(3))),
                (
                    380.0,
                    ChurnAction::DegradeNodeCapacity {
                        node: NodeId(2),
                        factor: 0.3,
                    },
                ),
                (420.0, ChurnAction::NodeUp(NodeId(5))),
                (
                    500.0,
                    ChurnAction::DelaySpike {
                        link: LinkId(1),
                        factor: 4.0,
                    },
                ),
            ])
        };
        let run = || {
            let cfg = ScenarioConfig::paper_base(3).with_horizon(1_500.0);
            let mut sim = Simulation::with_churn(cfg, 9, timeline());
            let mut rc = RandomCoordinator::new(4);
            let m = sim.run(&mut rc).clone();
            let stats = *sim.churn_stats().unwrap();
            // Flow conservation through every fault and repair.
            assert_eq!(
                m.arrived,
                m.completed + m.dropped_total() + sim.live_flows() as u64
            );
            // Instance conservation: lost instances count as stopped.
            assert_eq!(
                m.instances_started,
                m.instances_stopped + sim.num_instances() as u64
            );
            (m, stats)
        };
        let (m1, s1) = run();
        let (m2, s2) = run();
        assert_eq!(m1, m2, "same seed + same timeline ⇒ exact-equal metrics");
        assert_eq!(s1, s2);
        assert_eq!(s1.events_applied, 6);
        assert_eq!(s1.sp_recomputes, 5, "degrade does not recompute");
        assert!(m1.arrived > 100);
    }
}
