//! The discrete-event simulation engine.

use crate::config::ScenarioConfig;
use crate::coordinator::{Action, Coordinator, DecisionPoint};
use crate::event::{DropReason, QueuedEvent, SimEvent};
use crate::flow::{Flow, FlowId, FlowKey};
use crate::metrics::Metrics;
use crate::queue::{EventKey, EventQueue};
use crate::service::ComponentId;
use crate::slab::Slab;
use dosco_topology::{LinkId, NodeId, ShortestPaths};
use dosco_traffic::ArrivalProcess;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Float tolerance for capacity admission checks.
const CAP_EPS: f64 = 1e-9;

/// A placed component instance (`x_{c,v} = 1`).
#[derive(Debug, Clone, PartialEq)]
struct Instance {
    /// When the instance finishes starting up and can begin processing.
    available_at: f64,
    /// Flows currently processing (or still transmitting) at the instance.
    active: usize,
    /// Last time the instance became idle (for the idle timeout).
    last_release: f64,
    /// The outstanding idle-timeout probe, cancelled when the instance
    /// becomes active again. At most one probe is ever outstanding.
    timeout: Option<EventKey>,
}

/// The discrete-event simulator. See the [crate docs](crate) for the model.
///
/// Drive it either with [`Simulation::run`] and a [`Coordinator`], or
/// step-wise with [`Simulation::next_decision`] / [`Simulation::apply`].
#[derive(Debug)]
pub struct Simulation {
    config: ScenarioConfig,
    sp: ShortestPaths,
    network_degree: usize,
    diameter: f64,
    time: f64,
    queue: EventQueue<QueuedEvent>,
    rng: StdRng,
    arrivals: Vec<Box<dyn ArrivalProcess>>,
    /// Live flows in a generational slab: freed slots are recycled, so the
    /// footprint is the concurrent high-water mark, not the arrival count.
    flows: Slab<Flow>,
    next_flow_id: u64,
    node_used: Vec<f64>,
    link_used: Vec<f64>,
    /// Dense NodeId-major instance table (`node.0 * num_components + c.0`).
    instances: Vec<Option<Instance>>,
    num_components: usize,
    num_instances: usize,
    pending: Option<DecisionPoint>,
    /// Slab handle of the pending decision's flow, kept alongside
    /// [`Simulation::pending`] so `flow(dp.flow)` on the decision hot path
    /// resolves without hashing or scanning.
    pending_key: Option<FlowKey>,
    /// Events emitted since the last drain. Per-step draining via
    /// [`Simulation::drain_events_into`] recycles this buffer, so memory
    /// does not grow with episode length.
    events: Vec<SimEvent>,
    metrics: Metrics,
    finished: bool,
    /// Trace stream for this episode; `None` when tracing is disabled at
    /// construction time, so the per-decision hot path is a single
    /// `is_none` check.
    obs_stream: Option<dosco_obs::Stream>,
    /// Decisions between mid-episode trace samples.
    obs_stride: u64,
}

impl Simulation {
    /// Creates a simulation for `config`, seeding all stochastic traffic
    /// with `seed`. Shortest paths, the network degree `Δ_G`, and the
    /// delay diameter `D_G` are precomputed here (Sec. IV-B1d).
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`ScenarioConfig::validate`].
    pub fn new(config: ScenarioConfig, seed: u64) -> Self {
        config
            .validate()
            .expect("scenario configuration must be valid");
        let sp = ShortestPaths::compute(&config.topology);
        let network_degree = config.topology.network_degree();
        let diameter = sp.diameter();
        let arrivals: Vec<Box<dyn ArrivalProcess>> =
            config.ingresses.iter().map(|i| i.pattern.build()).collect();
        let node_used = vec![0.0; config.topology.num_nodes()];
        let link_used = vec![0.0; config.topology.num_links()];
        let num_components = config.catalog.components().len();
        let instances = vec![None; config.topology.num_nodes() * num_components];
        let mut sim = Simulation {
            config,
            sp,
            network_degree,
            diameter,
            time: 0.0,
            queue: EventQueue::new(),
            rng: StdRng::seed_from_u64(seed),
            arrivals,
            flows: Slab::new(),
            next_flow_id: 0,
            node_used,
            link_used,
            instances,
            num_components,
            num_instances: 0,
            pending: None,
            pending_key: None,
            events: Vec::new(),
            metrics: Metrics::new(),
            finished: false,
            obs_stream: dosco_obs::trace_enabled().then(|| dosco_obs::Stream::sim(seed)),
            obs_stride: dosco_obs::sample_stride(),
        };
        for idx in 0..sim.arrivals.len() {
            sim.schedule_next_arrival(idx, 0.0);
        }
        if let Some(stream) = sim.obs_stream {
            dosco_obs::emit(stream, || dosco_obs::Event::EpisodeStart {
                seed,
                horizon: sim.config.horizon,
                nodes: sim.config.topology.num_nodes() as u64,
                links: sim.config.topology.num_links() as u64,
                ingresses: sim.config.ingresses.len() as u64,
            });
        }
        sim
    }

    // ------------------------------------------------------------------
    // Read-only accessors (the basis for local observations, Sec. IV-B1).
    // ------------------------------------------------------------------

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The scenario configuration.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// The substrate topology.
    pub fn topology(&self) -> &dosco_topology::Topology {
        &self.config.topology
    }

    /// The service catalog.
    pub fn catalog(&self) -> &crate::service::ServiceCatalog {
        &self.config.catalog
    }

    /// Precomputed all-pairs shortest path delays.
    pub fn shortest_paths(&self) -> &ShortestPaths {
        &self.sp
    }

    /// The network degree `Δ_G` (max neighbors per node).
    pub fn network_degree(&self) -> usize {
        self.network_degree
    }

    /// The network diameter `D_G` in path delay, used to normalize shaping
    /// penalties (Sec. IV-B3).
    pub fn diameter(&self) -> f64 {
        self.diameter
    }

    /// Compute resources currently in use at node `v` (`r_v(t)`).
    pub fn node_used(&self, v: NodeId) -> f64 {
        self.node_used[v.0]
    }

    /// Free compute resources at node `v` (`cap_v − r_v(t)`).
    pub fn node_free(&self, v: NodeId) -> f64 {
        self.config.topology.node(v).capacity - self.node_used[v.0]
    }

    /// Data rate currently reserved on link `l` (`r_l(t)`).
    pub fn link_used(&self, l: LinkId) -> f64 {
        self.link_used[l.0]
    }

    /// Free data rate on link `l` (`cap_l − r_l(t)`).
    pub fn link_free(&self, l: LinkId) -> f64 {
        self.config.topology.link(l).capacity - self.link_used[l.0]
    }

    /// Dense index of `(v, c)` in the NodeId-major instance table.
    #[inline]
    fn inst_idx(&self, v: NodeId, c: ComponentId) -> usize {
        v.0 * self.num_components + c.0
    }

    /// Whether an instance of component `c` is placed at node `v`
    /// (`x_{c,v}(t)`, Sec. IV-B1e).
    pub fn has_instance(&self, v: NodeId, c: ComponentId) -> bool {
        self.instances[self.inst_idx(v, c)].is_some()
    }

    /// Number of placed instances (for scaling diagnostics).
    pub fn num_instances(&self) -> usize {
        self.num_instances
    }

    /// The live flow `f`, if it has neither completed nor been dropped.
    ///
    /// The pending decision's flow — the only flow observation adapters
    /// and coordinators query — resolves in O(1) via the cached slab
    /// handle; any other id falls back to a scan over live flows
    /// (diagnostics only).
    pub fn flow(&self, f: FlowId) -> Option<&Flow> {
        if let (Some(dp), Some(key)) = (&self.pending, self.pending_key) {
            if dp.flow == f {
                return self.flows.get(key.0);
            }
        }
        self.flows.iter().find(|fl| fl.id == f)
    }

    /// Number of flows currently in the network.
    pub fn live_flows(&self) -> usize {
        self.flows.len()
    }

    /// Peak concurrent live flows over the episode (slab high-water mark;
    /// the resident-memory proxy for flow storage).
    pub fn peak_live_flows(&self) -> usize {
        self.flows.high_water()
    }

    /// Flow slab slots ever allocated (live + recycled). Flat over time in
    /// steady state: churn reuses slots instead of growing the arena.
    pub fn flow_slab_capacity(&self) -> usize {
        self.flows.capacity()
    }

    /// Peak concurrent scheduled events over the episode.
    pub fn peak_queued_events(&self) -> usize {
        self.queue.high_water()
    }

    /// Event-queue slots ever allocated (live + recycled).
    pub fn event_slab_capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Metrics collected so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Whether the episode reached its horizon (no further decisions).
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Number of internally scheduled future events (diagnostics; useful
    /// when benchmarking simulator throughput).
    pub fn queued_events(&self) -> usize {
        self.queue.len()
    }

    /// Removes and returns all events emitted since the last drain.
    ///
    /// Allocates a fresh `Vec` per call; steady-state loops should prefer
    /// [`Simulation::drain_events_into`], which recycles one buffer.
    pub fn drain_events(&mut self) -> Vec<SimEvent> {
        std::mem::take(&mut self.events)
    }

    /// Moves all events emitted since the last drain into `out`
    /// (clearing it first), handing the simulator back `out`'s old
    /// allocation. Draining every step therefore ping-pongs two buffers
    /// and never allocates once they reach the per-step event high-water
    /// mark.
    pub fn drain_events_into(&mut self, out: &mut Vec<SimEvent>) {
        out.clear();
        std::mem::swap(&mut self.events, out);
    }

    /// The resource demand `r_{c_f}(λ_f)` of flow `f`'s requested
    /// component, or 0.0 if the flow is fully processed (Sec. IV-B1c).
    pub fn requested_resources(&self, f: FlowId) -> f64 {
        let Some(flow) = self.flow(f) else {
            return 0.0;
        };
        match self.config.catalog.component_at(flow.service, flow.chain_pos) {
            Some(c) => self.config.catalog.component(c).resources(flow.rate),
            None => 0.0,
        }
    }

    // ------------------------------------------------------------------
    // Stepping.
    // ------------------------------------------------------------------

    /// Advances the simulation to the next point where a coordinator must
    /// act. Returns `None` once the horizon is reached (or no events
    /// remain); terminal bookkeeping (success/expiry) happens internally.
    ///
    /// Calling this again without [`Simulation::apply`] returns the same
    /// pending decision.
    ///
    /// The `next_decision`/`apply` pair is the external integration
    /// point: [`Simulation::run`] drives it with an in-process
    /// [`Coordinator`], while the `dosco_serve` fabric holds the pending
    /// decision open across a remote batched inference round trip before
    /// applying — the idempotent pending state is what makes that split
    /// safe.
    pub fn next_decision(&mut self) -> Option<DecisionPoint> {
        if let Some(dp) = self.pending {
            return Some(dp);
        }
        if self.finished {
            return None;
        }
        while let Some(t) = self.queue.peek_time() {
            if t > self.config.horizon {
                break;
            }
            let (t, ev) = self.queue.pop().expect("peeked event exists");
            self.time = t;
            if let Some(dp) = self.handle(ev) {
                self.pending = Some(dp);
                return Some(dp);
            }
        }
        self.time = self.config.horizon;
        self.finished = true;
        self.emit_episode_end();
        None
    }

    /// Applies the coordinator's action to the pending decision.
    ///
    /// # Panics
    ///
    /// Panics if there is no pending decision (i.e.
    /// [`Simulation::next_decision`] was not called, or returned `None`).
    pub fn apply(&mut self, action: Action) {
        let dp = self
            .pending
            .take()
            .expect("apply() requires a pending decision from next_decision()");
        let key = self
            .pending_key
            .take()
            .expect("pending key accompanies the pending decision");
        self.metrics.decisions += 1;
        match action {
            Action::Local => self.apply_local(dp, key),
            Action::Forward(i) => self.apply_forward(dp, key, i),
        }
        if self.obs_stream.is_some() && self.metrics.decisions.is_multiple_of(self.obs_stride) {
            self.emit_sample();
        }
    }

    /// Runs the full episode under `coordinator`, returning final metrics.
    ///
    /// Events are streamed to the coordinator per decision through one
    /// recycled buffer, so the episode runs allocation-free in steady
    /// state regardless of length.
    pub fn run<C: Coordinator + ?Sized>(&mut self, coordinator: &mut C) -> &Metrics {
        let mut events = Vec::new();
        loop {
            self.drain_events_into(&mut events);
            if !events.is_empty() {
                coordinator.observe(self, &events);
            }
            let Some(dp) = self.next_decision() else {
                break;
            };
            let action = coordinator.decide(self, &dp);
            self.apply(action);
        }
        self.drain_events_into(&mut events);
        if !events.is_empty() {
            coordinator.observe(self, &events);
        }
        &self.metrics
    }

    // ------------------------------------------------------------------
    // Observability (dosco_obs). All emitters are gated on `obs_stream`,
    // set once at construction: with tracing disabled the only cost on
    // the decision path is one `is_none` check.
    // ------------------------------------------------------------------

    /// Mean and max utilization `used_i / cap_i` over a resource vector
    /// and its id-ordered capacities (zero-capacity resources count as 0).
    fn utilization(used: &[f64], caps: impl Iterator<Item = f64>) -> (f64, f64) {
        if used.is_empty() {
            return (0.0, 0.0);
        }
        let (mut sum, mut max) = (0.0, 0.0f64);
        for (&u, c) in used.iter().zip(caps) {
            let util = if c > 0.0 { u / c } else { 0.0 };
            sum += util;
            max = max.max(util);
        }
        (sum / used.len() as f64, max)
    }

    /// Emits one mid-episode [`dosco_obs::Event::EpisodeSample`] and feeds
    /// the utilization/success metrics into the global registry.
    fn emit_sample(&self) {
        let Some(stream) = self.obs_stream else {
            return;
        };
        let (node_util_mean, node_util_max) =
            Self::utilization(&self.node_used, self.config.topology.node_capacities());
        let (link_util_mean, link_util_max) =
            Self::utilization(&self.link_used, self.config.topology.link_capacities());
        let m = &self.metrics;
        dosco_obs::registry::count(dosco_obs::CounterKind::DecisionSamples, 1);
        if let Some(r) = m.success_ratio_opt() {
            dosco_obs::registry::set_gauge(dosco_obs::GaugeKind::LastSuccessRatio, r);
        }
        dosco_obs::registry::set_gauge(dosco_obs::GaugeKind::LastInFlight, m.in_flight() as f64);
        dosco_obs::registry::max_gauge(dosco_obs::GaugeKind::PeakNodeUtil, node_util_max);
        dosco_obs::registry::max_gauge(dosco_obs::GaugeKind::PeakLinkUtil, link_util_max);
        dosco_obs::registry::observe(dosco_obs::HistKind::NodeUtil, node_util_max);
        dosco_obs::registry::observe(dosco_obs::HistKind::LinkUtil, link_util_max);
        dosco_obs::emit(stream, || dosco_obs::Event::EpisodeSample {
            time: self.time,
            decisions: m.decisions,
            arrived: m.arrived,
            completed: m.completed,
            dropped: m.dropped_total(),
            in_flight: m.in_flight(),
            success_ratio: m.success_ratio_opt(),
            node_util_mean,
            node_util_max,
            link_util_mean,
            link_util_max,
            instances: self.num_instances as u64,
        });
    }

    /// Emits the final [`dosco_obs::Event::EpisodeEnd`] when the horizon
    /// is reached.
    fn emit_episode_end(&self) {
        let Some(stream) = self.obs_stream else {
            return;
        };
        dosco_obs::registry::count(dosco_obs::CounterKind::EpisodesTraced, 1);
        let m = &self.metrics;
        dosco_obs::emit(stream, || dosco_obs::Event::EpisodeEnd {
            time: self.time,
            arrived: m.arrived,
            completed: m.completed,
            dropped: m.dropped_total(),
            in_flight: m.in_flight(),
            success_ratio: m.success_ratio_opt(),
            avg_e2e_delay: m.avg_e2e_delay(),
            decisions: m.decisions,
            instances_started: m.instances_started,
            instances_stopped: m.instances_stopped,
        });
    }

    // ------------------------------------------------------------------
    // Event handling.
    // ------------------------------------------------------------------

    fn schedule_next_arrival(&mut self, idx: usize, now: f64) {
        let t = self.arrivals[idx].next_arrival(now, &mut self.rng);
        if t.is_finite() && t <= self.config.horizon {
            self.queue.push(t, QueuedEvent::Arrival { ingress_idx: idx });
        }
    }

    /// Handles one internal event; returns a decision point if the
    /// coordinator must act now.
    fn handle(&mut self, ev: QueuedEvent) -> Option<DecisionPoint> {
        match ev {
            QueuedEvent::Arrival { ingress_idx } => {
                self.spawn_flow(ingress_idx);
                self.schedule_next_arrival(ingress_idx, self.time);
                None
            }
            QueuedEvent::Decision { flow } => self.handle_decision(flow),
            QueuedEvent::ProcessingDone {
                flow,
                node,
                component,
            } => {
                if let Some(f) = self.flows.get_mut(flow.0) {
                    f.chain_pos += 1;
                    let id = f.id;
                    let service_len = f.chain_len;
                    self.events.push(SimEvent::InstanceTraversed {
                        flow: id,
                        node,
                        component,
                        service_len,
                        time: self.time,
                    });
                    self.metrics.processings += 1;
                    self.queue.push(self.time, QueuedEvent::Decision { flow });
                }
                None
            }
            QueuedEvent::ReleaseNode {
                node,
                component,
                amount,
            } => {
                self.node_used[node.0] = (self.node_used[node.0] - amount).max(0.0);
                let idx = self.inst_idx(node, component);
                let went_idle = self.instances[idx].as_mut().is_some_and(|inst| {
                    inst.active = inst.active.saturating_sub(1);
                    if inst.active == 0 {
                        inst.last_release = self.time;
                        true
                    } else {
                        false
                    }
                });
                if went_idle {
                    let timeout = self.config.catalog.component(component).idle_timeout;
                    let probe = self.queue.push(
                        self.time + timeout,
                        QueuedEvent::InstanceTimeout { node, component },
                    );
                    let inst = self.instances[idx].as_mut().expect("instance went idle");
                    debug_assert!(inst.timeout.is_none(), "one probe per instance");
                    inst.timeout = Some(probe);
                }
                None
            }
            QueuedEvent::ReleaseLink { link, amount } => {
                self.link_used[link.0] = (self.link_used[link.0] - amount).max(0.0);
                None
            }
            QueuedEvent::InstanceTimeout { node, component } => {
                // A probe only fires if it was never cancelled, i.e. the
                // instance stayed idle for its full timeout; the guard is
                // kept for defense in depth (and matches the lazy-check
                // semantics of the pre-cancellation core exactly).
                let idx = self.inst_idx(node, component);
                let timeout = self.config.catalog.component(component).idle_timeout;
                let remove = self.instances[idx].as_ref().is_some_and(|inst| {
                    inst.active == 0 && self.time + CAP_EPS >= inst.last_release + timeout
                });
                if remove {
                    self.instances[idx] = None;
                    self.num_instances -= 1;
                    self.metrics.instances_stopped += 1;
                    self.events.push(SimEvent::InstanceStopped {
                        node,
                        component,
                        time: self.time,
                    });
                }
                None
            }
        }
    }

    fn spawn_flow(&mut self, ingress_idx: usize) {
        let spec = &self.config.ingresses[ingress_idx];
        let id = FlowId(self.next_flow_id);
        self.next_flow_id += 1;
        let chain_len = self.config.catalog.service(spec.service).len();
        let node = spec.node;
        let flow = Flow {
            id,
            service: spec.service,
            ingress: spec.node,
            egress: spec.egress,
            rate: spec.profile.rate,
            arrival: self.time,
            duration: spec.profile.duration,
            deadline: spec.profile.deadline,
            chain_pos: 0,
            chain_len,
            location: spec.node,
        };
        let key = FlowKey(self.flows.insert(flow));
        self.metrics.arrived += 1;
        self.events.push(SimEvent::FlowArrived {
            flow: id,
            node,
            time: self.time,
        });
        self.queue.push(self.time, QueuedEvent::Decision { flow: key });
    }

    fn handle_decision(&mut self, key: FlowKey) -> Option<DecisionPoint> {
        let Some(f) = self.flows.get(key.0) else {
            return None; // flow already terminated (defensive)
        };
        let id = f.id;
        let node = f.location;
        if f.expired(self.time) {
            self.drop_flow(key, DropReason::DeadlineExpired, node);
            return None;
        }
        if f.fully_processed() && node == f.egress {
            self.complete_flow(key, node);
            return None;
        }
        let component = self.config.catalog.component_at(f.service, f.chain_pos);
        self.pending_key = Some(key);
        Some(DecisionPoint {
            flow: id,
            node,
            time: self.time,
            component,
        })
    }

    fn complete_flow(&mut self, key: FlowKey, node: NodeId) {
        let f = self.flows.remove(key.0).expect("completing a live flow");
        let e2e = self.time - f.arrival;
        self.metrics.completed += 1;
        self.metrics.e2e_delay_sum += e2e;
        self.events.push(SimEvent::FlowCompleted {
            flow: f.id,
            time: self.time,
            e2e_delay: e2e,
            node,
        });
    }

    fn drop_flow(&mut self, key: FlowKey, reason: DropReason, node: NodeId) {
        let f = self.flows.remove(key.0).expect("dropping a live flow");
        self.metrics.record_drop(reason);
        self.events.push(SimEvent::FlowDropped {
            flow: f.id,
            time: self.time,
            reason,
            node,
        });
    }

    fn apply_local(&mut self, dp: DecisionPoint, key: FlowKey) {
        let f = self
            .flows
            .get(key.0)
            .expect("pending decision refers to a live flow");
        let Some(component) = dp.component else {
            // Fully processed flow kept at the node: hold one time step
            // (Sec. IV-B2) and ask again.
            self.metrics.holds += 1;
            self.events.push(SimEvent::Held {
                flow: dp.flow,
                node: dp.node,
                time: self.time,
            });
            self.queue.push(
                self.time + self.config.hold_delay,
                QueuedEvent::Decision { flow: key },
            );
            return;
        };
        let comp = self.config.catalog.component(component);
        let demand = comp.resources(f.rate);
        let capacity = self.config.topology.node(dp.node).capacity;
        if self.node_used[dp.node.0] + demand > capacity + CAP_EPS {
            self.drop_flow(key, DropReason::NodeCapacity, dp.node);
            return;
        }
        let duration = f.duration;
        // Scaling/placement derived from scheduling (Sec. IV-A): ensure an
        // instance exists, starting one (with startup delay) if needed.
        let idx = self.inst_idx(dp.node, component);
        let available_at = match &self.instances[idx] {
            Some(inst) => inst.available_at,
            None => {
                let available_at = self.time + comp.startup_delay;
                self.instances[idx] = Some(Instance {
                    available_at,
                    active: 0,
                    last_release: self.time,
                    timeout: None,
                });
                self.num_instances += 1;
                self.metrics.instances_started += 1;
                self.events.push(SimEvent::InstanceStarted {
                    node: dp.node,
                    component,
                    time: self.time,
                });
                available_at
            }
        };
        let start = self.time.max(available_at);
        let done = start + comp.processing_delay;
        self.node_used[dp.node.0] += demand;
        let inst = self.instances[idx].as_mut().expect("instance just ensured");
        inst.active += 1;
        // The instance is busy again: its outstanding idle-timeout probe
        // (if any) can no longer fire meaningfully — remove it from the
        // queue instead of letting it pop as a dead entry.
        let stale_probe = inst.timeout.take();
        if let Some(probe) = stale_probe {
            self.queue.cancel(probe);
        }
        self.queue.push(
            done,
            QueuedEvent::ProcessingDone {
                flow: key,
                node: dp.node,
                component,
            },
        );
        // Fluid/pipelined model (Sec. III-A): the instance handles the
        // flow's data *rate* while the stream passes through, i.e. for the
        // flow duration δ_f starting at processing start; the processing
        // delay d_c shifts the flow in time but does not multiply the
        // rate-based occupancy.
        self.queue.push(
            start + duration,
            QueuedEvent::ReleaseNode {
                node: dp.node,
                component,
                amount: demand,
            },
        );
    }

    fn apply_forward(&mut self, dp: DecisionPoint, key: FlowKey, neighbor_idx: usize) {
        let neighbors = self.config.topology.neighbors(dp.node);
        let Some(&(to, link)) = neighbors.get(neighbor_idx) else {
            // Non-existing neighbor: invalid action, flow dropped with a
            // high penalty (Sec. IV-B2).
            self.drop_flow(key, DropReason::InvalidAction, dp.node);
            return;
        };
        let f = self
            .flows
            .get(key.0)
            .expect("pending decision refers to a live flow");
        let rate = f.rate;
        let duration = f.duration;
        let l = self.config.topology.link(link);
        let (delay, capacity) = (l.delay, l.capacity);
        if self.link_used[link.0] + rate > capacity + CAP_EPS {
            self.drop_flow(key, DropReason::LinkCapacity, dp.node);
            return;
        }
        self.flows
            .get_mut(key.0)
            .expect("pending decision refers to a live flow")
            .location = to;
        self.link_used[link.0] += rate;
        self.metrics.forwards += 1;
        self.events.push(SimEvent::Forwarded {
            flow: dp.flow,
            from: dp.node,
            to,
            link,
            link_delay: delay,
            time: self.time,
        });
        // Rate-based occupancy: the link transmits the flow for δ_f; the
        // propagation delay d_l adds latency but not bandwidth usage.
        self.queue.push(
            self.time + duration,
            QueuedEvent::ReleaseLink { link, amount: rate },
        );
        self.queue
            .push(self.time + delay, QueuedEvent::Decision { flow: key });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IngressSpec;
    use crate::coordinator::{AlwaysLocal, RandomCoordinator};
    use crate::service::{Component, Service, ServiceCatalog, ServiceId};
    use dosco_topology::generators;
    use dosco_traffic::{ArrivalPattern, FlowProfile};

    /// A 3-node line (0 - 1 - 2) with one single-component service; ingress
    /// at 0, egress at 2, ample capacities, link delay 1 ms.
    fn line_scenario() -> ScenarioConfig {
        let mut topology = generators::line(3, 1.0, 10.0);
        topology.scale_capacities(10.0, 1.0);
        let catalog = ServiceCatalog::new(
            vec![Component {
                name: "c0".into(),
                processing_delay: 2.0,
                resource_per_rate: 1.0,
                resource_fixed: 0.0,
                startup_delay: 0.0,
                idle_timeout: 5.0,
            }],
            vec![Service {
                name: "s0".into(),
                chain: vec![ComponentId(0)],
            }],
        )
        .unwrap();
        ScenarioConfig {
            topology,
            catalog,
            ingresses: vec![IngressSpec {
                node: NodeId(0),
                pattern: ArrivalPattern::Fixed { interval: 10.0 },
                service: ServiceId(0),
                egress: NodeId(2),
                profile: FlowProfile::new(1.0, 1.0, 50.0),
            }],
            horizon: 100.0,
            hold_delay: 1.0,
            capacity_seed: 0,
        }
    }

    /// Coordinator for the line: process at the ingress, then forward
    /// toward node 2 (neighbor index: node 0 has [1]; node 1 has [0, 2]).
    struct LineForward;

    impl Coordinator for LineForward {
        fn decide(&mut self, _sim: &Simulation, dp: &DecisionPoint) -> Action {
            if dp.component.is_some() {
                Action::Local
            } else if dp.node == NodeId(0) {
                Action::Forward(0)
            } else {
                // At node 1 the second neighbor (index 1) is node 2.
                Action::Forward(1)
            }
        }
    }

    #[test]
    fn flows_complete_on_line() {
        let mut sim = Simulation::new(line_scenario(), 1);
        let m = sim.run(&mut LineForward).clone();
        // Arrivals at t = 10, 20, ..., 100 -> 10 flows. Each needs
        // 2 ms processing + 2 hops x 1 ms = 4 ms e2e, so the flow arriving
        // exactly at the horizon (t=100) is still in flight at the end.
        assert_eq!(m.arrived, 10);
        assert_eq!(m.completed, 9);
        assert_eq!(m.in_flight(), 1);
        assert_eq!(m.dropped_total(), 0);
        assert_eq!(m.success_ratio(), 1.0);
        let avg = m.avg_e2e_delay().unwrap();
        assert!((avg - 4.0).abs() < 1e-9, "avg e2e {avg}");
    }

    #[test]
    fn always_local_expires_flows() {
        let mut cfg = line_scenario();
        cfg.horizon = 200.0;
        let mut sim = Simulation::new(cfg, 1);
        let m = sim.run(&mut AlwaysLocal).clone();
        // Flows are processed at node 0 then held until the 50 ms deadline.
        assert!(m.completed == 0);
        assert!(m.dropped_for(DropReason::DeadlineExpired) > 0);
        assert!(m.holds > 0);
        assert!(m.success_ratio() < 1.0);
    }

    #[test]
    fn node_capacity_drops() {
        let mut cfg = line_scenario();
        // Capacity 1 with rate-1 flows: a second concurrent processing
        // at node 0 must be rejected.
        cfg.topology.scale_capacities(1.0 / 10.0, 1.0);
        // Burst: two ingress specs both arriving at node 0 every 10 ms.
        cfg.ingresses.push(cfg.ingresses[0].clone());
        cfg.horizon = 15.0;
        let mut sim = Simulation::new(cfg, 1);
        let m = sim.run(&mut LineForward).clone();
        // Both flows arrive at t=10; the first processes (uses full cap 1),
        // the second must be dropped by the node-capacity check.
        assert_eq!(m.arrived, 2);
        assert_eq!(m.dropped_for(DropReason::NodeCapacity), 1);
    }

    #[test]
    fn link_capacity_drops() {
        let mut cfg = line_scenario();
        // Link capacity 1: two overlapping flows cannot share a link.
        for l in 0..cfg.topology.num_links() {
            assert_eq!(cfg.topology.link(LinkId(l)).capacity, 10.0);
        }
        cfg.topology.scale_capacities(1.0, 0.1);
        cfg.ingresses.push(cfg.ingresses[0].clone());
        cfg.horizon = 15.0;
        let mut sim = Simulation::new(cfg, 1);
        let m = sim.run(&mut LineForward).clone();
        // Both flows process in parallel (node cap is ample), finish at the
        // same instant, and both try link 0->1: the second is dropped.
        assert_eq!(m.arrived, 2);
        assert_eq!(m.dropped_for(DropReason::LinkCapacity), 1);
        assert_eq!(m.completed, 1);
    }

    #[test]
    fn invalid_action_drops() {
        struct Invalid;
        impl Coordinator for Invalid {
            fn decide(&mut self, _sim: &Simulation, _dp: &DecisionPoint) -> Action {
                Action::Forward(7) // node 0 has one neighbor: invalid
            }
        }
        let mut cfg = line_scenario();
        cfg.horizon = 15.0;
        let mut sim = Simulation::new(cfg, 1);
        let m = sim.run(&mut Invalid).clone();
        assert_eq!(m.arrived, 1);
        assert_eq!(m.dropped_for(DropReason::InvalidAction), 1);
    }

    #[test]
    fn flow_conservation() {
        // Under a random policy every arrived flow either completes, drops,
        // or is still in flight; never duplicated or lost.
        let cfg = ScenarioConfig::paper_base(3).with_horizon(2_000.0);
        let mut sim = Simulation::new(cfg, 3);
        let mut rc = RandomCoordinator::new(4);
        let m = sim.run(&mut rc).clone();
        assert!(m.arrived > 100);
        assert_eq!(
            m.arrived,
            m.completed + m.dropped_total() + sim.live_flows() as u64
        );
    }

    #[test]
    fn resources_return_to_zero_after_quiescence() {
        let mut cfg = line_scenario();
        cfg.horizon = 500.0;
        // One flow only.
        cfg.ingresses[0].pattern = ArrivalPattern::Fixed { interval: 400.0 };
        let mut sim = Simulation::new(cfg, 1);
        sim.run(&mut LineForward);
        for v in sim.topology().node_ids() {
            assert!(sim.node_used(v).abs() < 1e-9);
        }
        for l in sim.topology().link_ids() {
            assert!(sim.link_used(l).abs() < 1e-9);
        }
    }

    /// A flow dropped *after* `apply_local` already scheduled its
    /// `ReleaseNode` must still release exactly its reserved demand at the
    /// scheduled time — neither leaking the reservation (drop cancels
    /// nothing) nor releasing twice.
    #[test]
    fn dropped_flow_releases_reserved_node_capacity_exactly_once() {
        /// Processes every flow at node 0 and records the node's usage at
        /// each fresh (component-bearing) decision point.
        struct Probe {
            samples: Vec<(f64, f64)>,
        }
        impl Coordinator for Probe {
            fn decide(&mut self, sim: &Simulation, dp: &DecisionPoint) -> Action {
                if dp.component.is_some() {
                    self.samples.push((dp.time, sim.node_used(NodeId(0))));
                }
                Action::Local
            }
        }

        let mut cfg = line_scenario();
        cfg.topology.scale_capacities(2.0 / 10.0, 1.0); // node capacity 2.0
        // Flow A: arrives t=10, reserves 1.0 until t=15 (duration 5), but
        // its 1.5 ms deadline expires at the post-processing decision
        // (t=12) -> dropped with the release still queued for t=15.
        cfg.ingresses[0].profile = FlowProfile::new(1.0, 5.0, 1.5);
        // Flow B: arrives t=10 too, reserves 1.0 until t=20 -> at t=17 the
        // node must hold exactly B's demand.
        cfg.ingresses.push(IngressSpec {
            profile: FlowProfile::new(1.0, 10.0, 50.0),
            ..cfg.ingresses[0].clone()
        });
        // Observer flow C: its arrival decision at t=17 samples the node.
        cfg.ingresses.push(IngressSpec {
            pattern: ArrivalPattern::Fixed { interval: 17.0 },
            profile: FlowProfile::new(1.0, 10.0, 50.0),
            ..cfg.ingresses[0].clone()
        });
        cfg.horizon = 19.0;
        let mut sim = Simulation::new(cfg, 1);
        let mut probe = Probe { samples: Vec::new() };
        let m = sim.run(&mut probe).clone();

        assert_eq!(m.arrived, 3);
        assert_eq!(m.dropped_for(DropReason::DeadlineExpired), 1, "flow A");
        let at_17: Vec<f64> = probe
            .samples
            .iter()
            .filter(|(t, _)| *t == 17.0)
            .map(|&(_, used)| used)
            .collect();
        // 2.0 here would mean A's reservation leaked (drop cancelled the
        // release); 0.0 would mean it was released twice (B's share lost).
        assert_eq!(at_17, vec![1.0], "node 0 usage at t=17");
    }

    #[test]
    fn instance_lifecycle_with_timeout() {
        let mut cfg = line_scenario();
        cfg.horizon = 300.0;
        cfg.ingresses[0].pattern = ArrivalPattern::Fixed { interval: 250.0 };
        let mut sim = Simulation::new(cfg, 1);
        sim.run(&mut LineForward);
        let m = sim.metrics();
        // One flow -> one instance started at node 0; idle timeout 5 ms
        // passes long before the horizon -> instance stopped.
        assert_eq!(m.instances_started, 1);
        assert_eq!(m.instances_stopped, 1);
        assert_eq!(sim.num_instances(), 0);
    }

    #[test]
    fn startup_delay_defers_processing() {
        let mut cfg = line_scenario();
        let mut comp = cfg.catalog.components()[0].clone();
        comp.startup_delay = 3.0;
        // Keep the instance warm across the 10 ms inter-arrival gap.
        comp.idle_timeout = 15.0;
        cfg.catalog = ServiceCatalog::new(
            vec![comp],
            vec![Service {
                name: "s0".into(),
                chain: vec![ComponentId(0)],
            }],
        )
        .unwrap();
        cfg.horizon = 30.0;
        let mut sim = Simulation::new(cfg, 1);
        let m = sim.run(&mut LineForward).clone();
        // Arrivals at t = 10, 20, 30; the last is still in flight.
        assert_eq!(m.completed, 2);
        // First flow pays the 3 ms startup: 3 + 2 + 2 = 7 ms; the second
        // reuses the warm instance: 2 + 2 = 4 ms.
        assert!((m.avg_e2e_delay().unwrap() - 5.5).abs() < 1e-9);
    }

    #[test]
    fn deadline_enforced_end_to_end() {
        let mut cfg = line_scenario();
        cfg.ingresses[0].profile = FlowProfile::new(1.0, 1.0, 3.0); // < 4 ms needed
        cfg.horizon = 50.0;
        let mut sim = Simulation::new(cfg, 1);
        let m = sim.run(&mut LineForward).clone();
        assert_eq!(m.completed, 0);
        assert!(m.dropped_for(DropReason::DeadlineExpired) > 0);
    }

    #[test]
    fn step_api_matches_run_api() {
        let run_metrics = {
            let mut sim = Simulation::new(line_scenario(), 1);
            sim.run(&mut LineForward).clone()
        };
        let mut sim = Simulation::new(line_scenario(), 1);
        let mut c = LineForward;
        while let Some(dp) = sim.next_decision() {
            // next_decision is idempotent until apply.
            assert_eq!(sim.next_decision(), Some(dp));
            let a = c.decide(&sim, &dp);
            sim.apply(a);
        }
        assert_eq!(sim.metrics(), &run_metrics);
        assert!(sim.is_finished());
    }

    #[test]
    #[should_panic(expected = "pending decision")]
    fn apply_without_decision_panics() {
        let mut sim = Simulation::new(line_scenario(), 1);
        sim.apply(Action::Local);
    }

    /// Wraps a coordinator and records every event `run` reports.
    struct Recording<C> {
        inner: C,
        events: Vec<SimEvent>,
    }

    impl<C: Coordinator> Coordinator for Recording<C> {
        fn decide(&mut self, sim: &Simulation, dp: &DecisionPoint) -> Action {
            self.inner.decide(sim, dp)
        }
        fn observe(&mut self, _sim: &Simulation, events: &[SimEvent]) {
            self.events.extend_from_slice(events);
        }
    }

    #[test]
    fn events_cover_flow_lifecycle() {
        let mut sim = Simulation::new(line_scenario(), 1);
        let mut rec = Recording {
            inner: LineForward,
            events: Vec::new(),
        };
        sim.run(&mut rec);
        let events = rec.events;
        let arrived = events
            .iter()
            .filter(|e| matches!(e, SimEvent::FlowArrived { .. }))
            .count();
        let completed = events
            .iter()
            .filter(|e| matches!(e, SimEvent::FlowCompleted { .. }))
            .count();
        let traversed = events
            .iter()
            .filter(|e| matches!(e, SimEvent::InstanceTraversed { .. }))
            .count();
        let forwarded = events
            .iter()
            .filter(|e| matches!(e, SimEvent::Forwarded { .. }))
            .count();
        assert_eq!(arrived, 10);
        assert_eq!(completed, 9); // the t=100 arrival is in flight
        assert_eq!(traversed, 9); // one component each
        assert_eq!(forwarded, 18); // two hops each
        // Second drain yields nothing.
        assert!(sim.drain_events().is_empty());
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let cfg = ScenarioConfig::paper_base(2)
                .with_pattern(ArrivalPattern::paper_poisson())
                .with_horizon(1_000.0);
            let mut sim = Simulation::new(cfg, seed);
            let mut rc = RandomCoordinator::new(99);
            sim.run(&mut rc).clone()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
