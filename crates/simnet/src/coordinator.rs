//! The decision interface between the simulator and coordination policies.

use crate::flow::FlowId;
use crate::service::ComponentId;
use crate::sim::Simulation;
use dosco_topology::NodeId;
use serde::{Deserialize, Serialize};

/// A coordination action for one flow at one node (Sec. IV-B2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Action {
    /// Process the flow locally (`a = 0`); for fully processed flows this
    /// holds the flow at the node for one time step.
    Local,
    /// Forward the flow to the node's `i`-th neighbor (`a = i + 1`), with
    /// `i` 0-based. Indices at or beyond the node's degree are *invalid*
    /// and drop the flow with a penalty.
    Forward(usize),
}

impl Action {
    /// Decodes the paper's integer action `a ∈ {0, 1, …, Δ_G}`:
    /// 0 → [`Action::Local`], `a` → [`Action::Forward`]`(a - 1)`.
    pub fn from_index(a: usize) -> Self {
        if a == 0 {
            Action::Local
        } else {
            Action::Forward(a - 1)
        }
    }

    /// Encodes back to the integer action space.
    pub fn to_index(self) -> usize {
        match self {
            Action::Local => 0,
            Action::Forward(i) => i + 1,
        }
    }
}

/// A pending coordination decision: flow `f`'s head is at node `v` at time
/// `t`, requesting component `c_f` (or `None` when fully processed), and
/// the coordinator must choose an [`Action`].
///
/// All richer context (utilizations, instances, shortest paths) is read
/// from the [`Simulation`] accessors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionPoint {
    /// The flow needing a decision.
    pub flow: FlowId,
    /// The node where the flow's head is.
    pub node: NodeId,
    /// Current simulation time.
    pub time: f64,
    /// The requested component `c_f`, or `None` if fully processed.
    pub component: Option<ComponentId>,
}

/// A coordination policy: answers every [`DecisionPoint`] with an
/// [`Action`]. Implemented by the distributed DRL agents, the heuristics,
/// and the centralized baseline.
pub trait Coordinator {
    /// Chooses the action for a pending decision. `sim` provides read-only
    /// access to all locally observable state.
    fn decide(&mut self, sim: &Simulation, dp: &DecisionPoint) -> Action;

    /// Notification hook invoked with the events generated since the last
    /// decision (before `decide`). Default: ignore.
    fn observe(&mut self, _sim: &Simulation, _events: &[crate::event::SimEvent]) {}
}

/// Wraps any coordinator and records every [`SimEvent`](crate::SimEvent)
/// the simulator streams to it, in order. [`Simulation::run`] drains the
/// event buffer into the coordinator's `observe` hook, so a full-episode
/// event trace (for resilience reports or journey reconstruction) needs a
/// recording wrapper like this one.
#[derive(Debug, Clone, Default)]
pub struct EventLog<C> {
    inner: C,
    events: Vec<crate::event::SimEvent>,
}

impl<C> EventLog<C> {
    /// Wraps `inner`, starting with an empty log.
    pub fn new(inner: C) -> Self {
        EventLog {
            inner,
            events: Vec::new(),
        }
    }

    /// All events recorded so far, in emission order.
    pub fn events(&self) -> &[crate::event::SimEvent] {
        &self.events
    }

    /// Consumes the wrapper, returning the recorded events.
    pub fn into_events(self) -> Vec<crate::event::SimEvent> {
        self.events
    }

    /// The wrapped coordinator.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: Coordinator> Coordinator for EventLog<C> {
    fn decide(&mut self, sim: &Simulation, dp: &DecisionPoint) -> Action {
        self.inner.decide(sim, dp)
    }

    fn observe(&mut self, sim: &Simulation, events: &[crate::event::SimEvent]) {
        self.events.extend_from_slice(events);
        self.inner.observe(sim, events);
    }
}

/// Trivial coordinator processing every flow locally and holding processed
/// flows forever. Useful for tests: flows complete only if ingress ==
/// egress; otherwise they expire.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysLocal;

impl Coordinator for AlwaysLocal {
    fn decide(&mut self, _sim: &Simulation, _dp: &DecisionPoint) -> Action {
        Action::Local
    }
}

/// Uniform-random coordinator over the full action space `{0..Δ_G}`
/// (including invalid actions). This is the behavior of an untrained DRL
/// policy and a useful lower bound in tests.
#[derive(Debug)]
pub struct RandomCoordinator {
    rng: rand::rngs::StdRng,
}

impl RandomCoordinator {
    /// Creates a random coordinator with the given seed.
    pub fn new(seed: u64) -> Self {
        RandomCoordinator {
            rng: <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed),
        }
    }
}

impl Coordinator for RandomCoordinator {
    fn decide(&mut self, sim: &Simulation, _dp: &DecisionPoint) -> Action {
        use rand::Rng;
        let a = self.rng.gen_range(0..=sim.network_degree());
        Action::from_index(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_index_round_trip() {
        assert_eq!(Action::from_index(0), Action::Local);
        assert_eq!(Action::from_index(1), Action::Forward(0));
        assert_eq!(Action::from_index(4), Action::Forward(3));
        for a in 0..6 {
            assert_eq!(Action::from_index(a).to_index(), a);
        }
    }

    #[test]
    fn action_serde() {
        let a = Action::Forward(2);
        let json = serde_json::to_string(&a).unwrap();
        assert_eq!(serde_json::from_str::<Action>(&json).unwrap(), a);
    }
}
