//! The indexed, cancellable event queue behind the simulator's scheduler.
//!
//! A classic `BinaryHeap` forces *lazy* cancellation: obsolete entries
//! (idle-timeout probes whose instance woke up, deadline watchdogs for
//! flows that already terminated, churn events for links that changed
//! again) stay in the heap until popped and re-validated, so the queue
//! carries its dead-event population and every pop pays for history.
//!
//! [`EventQueue`] is an index-based binary min-heap over slab-allocated
//! entries: [`EventQueue::push`] returns an [`EventKey`] handle, and
//! [`EventQueue::cancel`] removes the entry in O(log n) — stale handles
//! (already popped or cancelled) are rejected in O(1) by a generation
//! compare. Pop order is the deterministic contract the whole system
//! rests on: strictly time-ascending, FIFO among equal timestamps
//! (insertion sequence breaks ties), regardless of cancellations.
//!
//! Entries live in recycled slots, so steady-state operation allocates
//! nothing and the footprint is the concurrent high-water mark.

use std::cmp::Ordering;
use std::fmt;

/// Handle to one scheduled event, returned by [`EventQueue::push`].
/// Becomes stale as soon as the event is popped or cancelled; stale
/// handles are rejected by [`EventQueue::cancel`] in O(1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventKey {
    slot: u32,
    generation: u32,
}

impl fmt::Display for EventKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}v{}", self.slot, self.generation)
    }
}

/// Marker for "not currently in the heap".
const NO_POS: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Slot<E> {
    generation: u32,
    /// Position in `heap`, or [`NO_POS`] when free.
    pos: u32,
    time: f64,
    seq: u64,
    event: Option<E>,
}

/// Deterministic time-ordered event queue with O(log n) cancellation.
///
/// Total order: `(time, seq)` with `seq` the per-queue insertion counter —
/// unique, so ordering is strict and any two correct heaps pop the exact
/// same sequence. `time` must never be NaN (construction asserts).
#[derive(Debug, Clone, Default)]
pub struct EventQueue<E> {
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    /// Binary min-heap of slot indices, ordered by `(time, seq)`.
    heap: Vec<u32>,
    seq: u64,
    high_water: usize,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            slots: Vec::new(),
            free: Vec::new(),
            heap: Vec::new(),
            seq: 0,
            high_water: 0,
        }
    }

    /// Schedules `event` at absolute time `time`; the returned handle
    /// can cancel it until it pops.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN, or on more than `u32::MAX` live entries.
    pub fn push(&mut self, time: f64, event: E) -> EventKey {
        assert!(!time.is_nan(), "simulation time must not be NaN");
        let seq = self.seq;
        self.seq += 1;
        let pos = u32::try_from(self.heap.len()).expect("event queue exceeds u32::MAX entries");
        let slot = match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                debug_assert!(s.event.is_none(), "free-list slot must be empty");
                s.pos = pos;
                s.time = time;
                s.seq = seq;
                s.event = Some(event);
                slot
            }
            None => {
                let slot =
                    u32::try_from(self.slots.len()).expect("event queue exceeds u32::MAX slots");
                self.slots.push(Slot {
                    generation: 0,
                    pos,
                    time,
                    seq,
                    event: Some(event),
                });
                slot
            }
        };
        self.heap.push(slot);
        self.sift_up(pos as usize);
        self.high_water = self.high_water.max(self.heap.len());
        EventKey {
            slot,
            generation: self.slots[slot as usize].generation,
        }
    }

    /// Pops the earliest event (FIFO among equal times), invalidating its
    /// handle.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let &slot = self.heap.first()?;
        self.remove_heap_index(0);
        let s = &mut self.slots[slot as usize];
        let time = s.time;
        let event = s.event.take().expect("heap slot holds an event");
        Some((time, event))
    }

    /// Cancels a scheduled event, removing it from the queue in O(log n).
    /// Returns the event, or `None` if the handle is stale (the event
    /// already popped or was cancelled) — an O(1) generation compare.
    pub fn cancel(&mut self, key: EventKey) -> Option<E> {
        let s = self.slots.get(key.slot as usize)?;
        if s.generation != key.generation || s.event.is_none() {
            return None;
        }
        let pos = s.pos as usize;
        debug_assert_eq!(self.heap[pos], key.slot);
        self.remove_heap_index(pos);
        self.slots[key.slot as usize].event.take()
    }

    /// The time of the earliest scheduled event.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.first().map(|&s| self.slots[s as usize].time)
    }

    /// Scheduled events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Peak concurrent scheduled events over the queue's lifetime.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Slots ever allocated (live + free): the resident-memory proxy.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Strict `(time, seq)` order between two slots.
    #[inline]
    fn less(&self, a: u32, b: u32) -> bool {
        let (sa, sb) = (&self.slots[a as usize], &self.slots[b as usize]);
        match sa.time.partial_cmp(&sb.time).expect("times are never NaN") {
            Ordering::Less => true,
            Ordering::Greater => false,
            Ordering::Equal => sa.seq < sb.seq,
        }
    }

    /// Detaches the heap entry at `pos`: swap-removes it, restores the
    /// heap property, bumps the slot's generation, and frees the slot.
    /// The caller still owns the slot's `event` (not yet taken).
    fn remove_heap_index(&mut self, pos: usize) {
        let slot = self.heap[pos];
        let last = self.heap.len() - 1;
        self.heap.swap(pos, last);
        self.heap.pop();
        if pos <= last && pos < self.heap.len() {
            let moved = self.heap[pos];
            self.slots[moved as usize].pos = pos as u32;
            // The displaced entry may need to move either direction.
            self.sift_down(pos);
            let p = self.slots[moved as usize].pos as usize;
            if p == pos {
                self.sift_up(pos);
            }
        }
        let s = &mut self.slots[slot as usize];
        s.pos = NO_POS;
        s.generation = s.generation.wrapping_add(1);
        self.free.push(slot);
    }

    fn sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if !self.less(self.heap[pos], self.heap[parent]) {
                break;
            }
            self.heap.swap(pos, parent);
            self.slots[self.heap[pos] as usize].pos = pos as u32;
            pos = parent;
        }
        self.slots[self.heap[pos] as usize].pos = pos as u32;
    }

    fn sift_down(&mut self, mut pos: usize) {
        loop {
            let (l, r) = (2 * pos + 1, 2 * pos + 2);
            let mut smallest = pos;
            if l < self.heap.len() && self.less(self.heap[l], self.heap[smallest]) {
                smallest = l;
            }
            if r < self.heap.len() && self.less(self.heap[r], self.heap[smallest]) {
                smallest = r;
            }
            if smallest == pos {
                break;
            }
            self.heap.swap(pos, smallest);
            self.slots[self.heap[pos] as usize].pos = pos as u32;
            pos = smallest;
        }
        self.slots[self.heap[pos] as usize].pos = pos as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, 3u32);
        q.push(1.0, 1);
        q.push(2.0, 2);
        let order: Vec<f64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..5u32 {
            q.push(5.0, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(2.5, 0u32);
        q.push(1.5, 1);
        assert_eq!(q.peek_time(), Some(1.5));
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.peek_time(), Some(2.5));
        q.pop();
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan_time() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, 0u32);
    }

    #[test]
    fn cancel_removes_and_stale_handles_miss() {
        let mut q = EventQueue::new();
        let a = q.push(1.0, "a");
        let b = q.push(2.0, "b");
        let c = q.push(3.0, "c");
        assert_eq!(q.cancel(b), Some("b"));
        assert_eq!(q.cancel(b), None, "double-cancel must miss");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.cancel(a), None, "popped handle must miss");
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.cancel(c), None);
        assert!(q.is_empty());
    }

    #[test]
    fn cancelled_slot_reuse_does_not_alias() {
        let mut q = EventQueue::new();
        let a = q.push(5.0, "old");
        q.cancel(a);
        let b = q.push(1.0, "new"); // reuses the freed slot
        assert_eq!(q.cancel(a), None, "stale key must not cancel the new event");
        assert_eq!(q.pop(), Some((1.0, "new")));
        assert_eq!(q.cancel(b), None);
    }

    #[test]
    fn high_water_and_capacity_track_peaks() {
        let mut q = EventQueue::new();
        let keys: Vec<_> = (0..8).map(|i| q.push(i as f64, i)).collect();
        for k in &keys[..6] {
            q.cancel(*k);
        }
        for i in 0..4 {
            q.push(100.0 + i as f64, i);
        }
        assert_eq!(q.len(), 6);
        assert_eq!(q.high_water(), 8);
        assert_eq!(q.capacity(), 8, "churn must reuse slots");
    }

    /// Reference model: a Vec kept sorted by `(time, seq)`, with
    /// cancellation by linear removal.
    #[derive(Default)]
    struct NaiveQueue {
        entries: Vec<(f64, u64, u32)>, // (time, seq, payload)
        seq: u64,
    }

    impl NaiveQueue {
        fn push(&mut self, time: f64, payload: u32) -> u64 {
            let seq = self.seq;
            self.seq += 1;
            self.entries.push((time, seq, payload));
            seq
        }
        fn pop(&mut self) -> Option<(f64, u32)> {
            let best = self
                .entries
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1))
                })?
                .0;
            let (t, _, p) = self.entries.remove(best);
            Some((t, p))
        }
        fn cancel(&mut self, seq: u64) -> Option<u32> {
            let i = self.entries.iter().position(|e| e.1 == seq)?;
            Some(self.entries.remove(i).2)
        }
    }

    /// One scripted operation on both queues.
    #[derive(Debug, Clone)]
    enum Op {
        /// Push at `base + jitter` (coarse times force equal-time ties).
        Push { time: u8 },
        Pop,
        /// Cancel the `n`-th oldest still-tracked handle.
        Cancel { n: u8 },
    }

    fn ops() -> impl Strategy<Value = Vec<Op>> {
        // Push listed twice: bias toward growth so scripts exercise deep
        // heaps, not just empty-queue churn.
        prop::collection::vec(
            prop_oneof![
                (0u8..16).prop_map(|time| Op::Push { time }),
                (0u8..16).prop_map(|time| Op::Push { time }),
                Just(Op::Pop),
                (0u8..8).prop_map(|n| Op::Cancel { n }),
            ],
            1..200,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The indexed heap and the naive sorted-Vec model agree on every
        /// pop (time AND payload — i.e. FIFO among equal times) and every
        /// cancel across arbitrary push/pop/cancel interleavings.
        #[test]
        fn matches_naive_model(script in ops()) {
            let mut q = EventQueue::new();
            let mut model = NaiveQueue::default();
            // Handles issued and not yet known-dead, oldest first.
            let mut handles: Vec<(EventKey, u64)> = Vec::new();
            let mut payload = 0u32;
            for op in script {
                match op {
                    Op::Push { time } => {
                        // Coarse grid: plenty of equal-time collisions.
                        let t = f64::from(time) * 0.5;
                        let k = q.push(t, payload);
                        let s = model.push(t, payload);
                        handles.push((k, s));
                        payload += 1;
                    }
                    Op::Pop => {
                        prop_assert_eq!(q.pop(), model.pop());
                    }
                    Op::Cancel { n } => {
                        if handles.is_empty() { continue; }
                        let (k, s) = handles[n as usize % handles.len()];
                        prop_assert_eq!(q.cancel(k), model.cancel(s));
                    }
                }
                prop_assert_eq!(q.len(), model.entries.len());
                prop_assert_eq!(q.is_empty(), model.entries.is_empty());
                let model_peek = model
                    .entries
                    .iter()
                    .map(|e| e.0)
                    .fold(f64::INFINITY, f64::min);
                if let Some(t) = q.peek_time() {
                    prop_assert_eq!(t, model_peek);
                }
            }
            // Drain both: the full remaining pop order must agree.
            loop {
                let (a, b) = (q.pop(), model.pop());
                prop_assert_eq!(a, b);
                if a.is_none() { break; }
            }
        }
    }
}
